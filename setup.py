"""Legacy shim so editable installs work offline (no `wheel` package).

All metadata lives in pyproject.toml; this file only enables
``python setup.py develop`` / ``pip install -e .`` on environments whose
setuptools predates bundled bdist_wheel support.
"""

from setuptools import setup

setup()
