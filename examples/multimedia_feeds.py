#!/usr/bin/env python3
"""Beyond audio: mixed-media ladders and per-feed round cadences.

The paper's framework is media-agnostic (Section I: thumbnails, video
previews, scalable encodings) and its round-based model tunes round length
per feed (Section II: friend feeds every few minutes, artist/playlist
updates every few hours).  This example exercises both extensions:

* a :class:`LadderRegistry` serving *different* presentation ladders per
  content kind -- audio previews for friend feeds, cover-art thumbnails
  for album releases, video teasers for playlist updates;
* a :class:`MultiFeedScheduler` running friend feeds on a 5-minute cadence
  while album/playlist items batch up on an hourly cadence.

Usage:  python examples/multimedia_feeds.py
"""

import random

from repro.core.budgets import DataBudget, EnergyBudget
from repro.core.content import ContentItem, ContentKind
from repro.core.media import (
    LadderRegistry,
    build_image_ladder,
    build_video_ladder,
)
from repro.core.multifeed import FeedCadences, MultiFeedScheduler
from repro.core.presentations import build_audio_ladder
from repro.runtime import RoundLoop
from repro.runtime import registry as policy_registry
from repro.sim.battery import BatterySample, BatteryTrace
from repro.sim.device import MobileDevice
from repro.sim.network import CellularOnlyNetwork

BASE = 300.0  # 5-minute base rounds


def build_registry() -> LadderRegistry:
    registry = LadderRegistry()
    registry.register(ContentKind.FRIEND_FEED, build_audio_ladder)
    registry.register(ContentKind.ALBUM_RELEASE, build_image_ladder)
    registry.register(ContentKind.PLAYLIST_UPDATE, build_video_ladder)
    return registry


def main() -> None:
    registry = build_registry()
    print("Per-kind presentation ladders:")
    for kind in ContentKind:
        ladder = registry.ladder_for(kind)
        top = ladder[ladder.max_level]
        print(f"  {kind.value:<16} {len(ladder) - 1} levels, richest: "
              f"{top.description} ({top.size_bytes / 1000:.0f} KB)")

    device = MobileDevice(
        user_id=1,
        network=CellularOnlyNetwork(),
        battery=BatteryTrace([BatterySample(0.0, 0.9, charging=False)]),
    )
    # "richnote" resolves through the policy registry; the policy reads
    # kappa from the loop's energy budget when no explicit config is given.
    inner = RoundLoop(
        device=device,
        data_budget=DataBudget(theta_bytes=60_000.0),  # 60 KB / 5 min
        energy_budget=EnergyBudget(kappa_joules=250.0),
        policy=policy_registry.create("richnote"),
    )
    cadences = FeedCadences(
        base_period=BASE,
        periods={
            ContentKind.FRIEND_FEED: BASE,  # every 5 minutes
            ContentKind.ALBUM_RELEASE: 12 * BASE,  # hourly
            ContentKind.PLAYLIST_UPDATE: 12 * BASE,  # hourly
        },
    )
    scheduler = MultiFeedScheduler(inner, cadences)

    rng = random.Random(3)
    item_id = 0
    print("\nOne simulated hour, 5-minute rounds "
          "(albums/playlists release on the hour):")
    for tick in range(1, 13):
        now = tick * BASE
        # Friend listens arrive continuously...
        for _ in range(rng.randint(0, 2)):
            scheduler.enqueue(ContentItem(
                item_id=(item_id := item_id + 1),
                user_id=1,
                kind=ContentKind.FRIEND_FEED,
                created_at=now - rng.uniform(0, BASE),
                ladder=registry.ladder_for(ContentKind.FRIEND_FEED),
                content_utility=rng.uniform(0.2, 0.9),
            ))
        # ...while an album and a playlist event trickle in mid-hour.
        if tick == 4:
            scheduler.enqueue(ContentItem(
                item_id=(item_id := item_id + 1),
                user_id=1,
                kind=ContentKind.ALBUM_RELEASE,
                created_at=now,
                ladder=registry.ladder_for(ContentKind.ALBUM_RELEASE),
                content_utility=0.8,
            ))
        if tick == 7:
            scheduler.enqueue(ContentItem(
                item_id=(item_id := item_id + 1),
                user_id=1,
                kind=ContentKind.PLAYLIST_UPDATE,
                created_at=now,
                ladder=registry.ladder_for(ContentKind.PLAYLIST_UPDATE),
                content_utility=0.7,
            ))
        result = scheduler.run_round(now)
        if result.deliveries:
            parts = ", ".join(
                f"{d.item.kind.value}#{d.item.item_id}@L{d.level}"
                f"({d.size_bytes / 1000:.1f}KB)"
                for d in result.deliveries
            )
            print(f"  t={now / 60:>4.0f}min  {parts}")
    held = sum(scheduler.buffered(kind) for kind in ContentKind)
    print(f"\nStill buffered for the next hourly release: {held} item(s)")
    print("Friend feeds flowed every 5 minutes; the album and playlist")
    print("items were held and delivered together at the hour boundary.")


if __name__ == "__main__":
    main()
