#!/usr/bin/env python3
"""The presentation-utility pipeline of Section V-B (Figure 2), end to end.

1. Run the attribute-grid survey (4 sampling rates x 5 durations, rated
   0-5) and prune dominated combinations with the skyline -- only the
   "useful" presentations survive (Fig. 2a).
2. Run the 80-user duration-stop survey, turn stop points into a utility
   CDF, and fit the logarithmic (Eq. 8) and polynomial (Eq. 9) families
   (Fig. 2b).
3. Build the presentation ladder the scheduler actually uses from the
   *fitted* curve, and show the per-level sizes/utilities.

Usage:  python examples/presentation_survey.py
"""

from repro.core.presentations import AudioPresentationSpec, build_audio_ladder
from repro.survey.fitting import evaluate_logarithmic, select_best_fit
from repro.survey.pareto import pareto_frontier
from repro.survey.synthesis import (
    ratings_to_candidates,
    synthesize_duration_survey,
    synthesize_presentation_survey,
)


def main() -> None:
    print("== Survey 1: attribute grid (Fig. 2a) ==")
    ratings = synthesize_presentation_survey(n_respondents=120, seed=42)
    frontier = pareto_frontier(ratings_to_candidates(ratings))
    print(f"{len(ratings)} candidate presentations, "
          f"{len(frontier)} useful after skyline pruning:")
    for candidate in frontier:
        rate, duration = candidate.attributes
        print(f"  {rate:>2} kHz x {duration:>4.0f} s   "
              f"{candidate.size_bytes / 1000:>8.0f} KB   "
              f"rating {candidate.utility:.2f}/5")

    print("\n== Survey 2: preferred preview duration (Fig. 2b) ==")
    survey = synthesize_duration_survey(n_respondents=80, seed=42)
    probes = [5.0, 10.0, 15.0, 20.0, 25.0, 30.0, 35.0, 39.0]
    utilities = [max(u, 1e-6) for u in survey.utilities_at(probes)]
    for duration, utility in zip(probes, utilities):
        print(f"  util({duration:>4.0f}s) = {utility:.2f}")
    best, other = select_best_fit(probes, utilities)
    print(f"\n  best fit:  {best}")
    print(f"  runner-up: {other}")
    print("  paper:     logarithmic(-0.397, 0.352) wins")

    print("\n== The ladder the scheduler uses ==")
    a, b = best.params
    spec = AudioPresentationSpec(
        duration_utility=lambda d: max(0.0, evaluate_logarithmic((a, b), d))
    )
    ladder = build_audio_ladder(spec)
    for presentation in ladder:
        print(f"  L{presentation.level}  {presentation.description:<28}"
              f"{presentation.size_bytes:>9,} B   "
              f"U_p = {presentation.utility:.3f}")
    print(
        "\nThe survey-fitted curve feeds straight into the ladder: each"
        "\nd-second preview is 20 KB/s at Spotify's 160 kbps bitrate, and"
        "\nutilities are normalized so the richest level scores 1.0."
    )


if __name__ == "__main__":
    main()
