#!/usr/bin/env python3
"""The deployed composition, live: publications -> broker -> schedulers.

Unlike the figure benchmarks (which replay pre-labelled traces, as the
paper's evaluation does), this example runs the whole system forward in
simulated time:

* a synthetic world (catalog + social graph) produces publications;
* the topic broker matches and batches them per round -- optionally behind
  the broker-side *satisfied-subscribers* capacity selector (the real-time
  overload control of Setty et al., INFOCOM'14, which Section II cites as
  the state of the art RichNote improves on);
* a content-utility Random Forest trained on *yesterday's* logs scores
  each notification online;
* every user's RichNote scheduler selects presentation levels and delivers
  under its own data plan, battery and connectivity.

The run is repeated with a tight broker capacity to show the two layers
interacting: upstream drops trade user-side delivery for broker load.

Usage:  python examples/live_system.py
"""

from repro.experiments.config import ExperimentConfig
from repro.experiments.system import SystemConfig, SystemSimulation
from repro.trace.entities import CatalogConfig, generate_catalog
from repro.trace.generator import TraceConfig
from repro.trace.socialgraph import SocialGraphConfig, generate_social_graph

N_USERS = 20


def run_once(catalog, graph, trace_config, broker_capacity):
    simulation = SystemSimulation(
        catalog,
        graph,
        trace_config,
        SystemConfig(
            experiment=ExperimentConfig(weekly_budget_mb=20.0, seed=8),
            broker_capacity_per_round=broker_capacity,
        ),
    )
    return simulation.run()


def main() -> None:
    print(f"Building a {N_USERS}-user world and training on yesterday's logs...")
    catalog = generate_catalog(
        CatalogConfig(n_users=N_USERS, n_artists=15, n_playlists=8, seed=3)
    )
    graph = generate_social_graph(SocialGraphConfig(n_users=N_USERS, seed=4))
    trace_config = TraceConfig(duration_hours=48.0, listen_rate_scale=0.5, seed=8)

    print("Running two simulated days, hourly rounds...\n")
    header = (
        f"{'broker cap':<12}{'matched':>9}{'dropped':>9}{'delivered':>11}"
        f"{'delivery':>10}{'utility':>9}"
    )
    print(header)
    print("-" * len(header))
    for capacity in (None, 20):
        report = run_once(catalog, graph, trace_config, capacity)
        agg = report.aggregate
        label = "unlimited" if capacity is None else f"{capacity}/round"
        print(
            f"{label:<12}"
            f"{report.notifications_matched:>9}"
            f"{report.notifications_dropped_at_broker:>9}"
            f"{len(report.deliveries):>11}"
            f"{agg.delivery_ratio:>9.1%}"
            f"{agg.total_utility:>9.1f}"
        )
    print(
        "\nWith the broker capped, the satisfied-subscribers selector keeps"
        "\nthe most users fully served but drops the overflow before it ever"
        "\nreaches RichNote -- the per-user utility machinery can only"
        "\noptimize what the broker lets through."
    )


if __name__ == "__main__":
    main()
