#!/usr/bin/env python3
"""Driving the core API directly: broker -> round loop, no harness.

Shows the pieces a downstream integrator would wire together:

* a topic-based broker with per-kind delivery modes (friend feeds in
  real time, album releases round-based -- Section II's hybrid engine);
* a :class:`SchedulerFleetSink` that turns released notifications into
  content items and routes them to per-user round loops, with the
  selection rule resolved *by name* from the policy registry;
* one user's loop stepped round by round, watching it adapt the
  presentation level as the data budget tightens and recovers.

Usage:  python examples/pubsub_broker.py
"""

from repro.core.budgets import DataBudget, EnergyBudget
from repro.core.content import ContentItem, ContentKind
from repro.core.lyapunov import LyapunovConfig
from repro.core.presentations import build_audio_ladder
from repro.pubsub.broker import Broker, DeliveryMode, SchedulerFleetSink
from repro.pubsub.subscriptions import SubscriptionStore
from repro.pubsub.topics import Publication, Topic, TopicKind
from repro.runtime import RoundLoop
from repro.sim.battery import BatterySample, BatteryTrace
from repro.sim.device import MobileDevice
from repro.sim.network import CellularOnlyNetwork

ALICE, BOB, CAROL = 1, 2, 3
ROUND = 3600.0

# Content utility would come from the classifier; here we hand-assign.
INTEREST = {100: 0.9, 200: 0.6, 300: 0.3, 301: 0.15}
LADDER = build_audio_ladder()


def build_broker() -> tuple[Broker, list]:
    subscriptions = SubscriptionStore()
    # Alice follows Bob's feed, Carol's feed and artist 7's page.
    subscriptions.subscribe(ALICE, Topic(TopicKind.FRIEND, BOB))
    subscriptions.subscribe(ALICE, Topic(TopicKind.FRIEND, CAROL))
    subscriptions.subscribe(ALICE, Topic(TopicKind.ARTIST, 7))
    broker = Broker(
        subscriptions,
        default_mode=DeliveryMode.ROUND,
        mode_overrides={TopicKind.FRIEND: DeliveryMode.REALTIME},
    )
    inbox: list = []
    broker.add_sink(inbox.append)
    return broker, inbox


def notification_to_item(notification) -> ContentItem:
    track = notification.publication.payload["track_id"]
    return ContentItem(
        item_id=notification.notification_id,
        user_id=notification.recipient_id,
        kind=ContentKind.FRIEND_FEED,
        created_at=notification.timestamp,
        ladder=LADDER,
        content_utility=INTEREST[track],
        metadata={"track_id": track},
    )


def bare_loop(user_id: int) -> RoundLoop:
    """Device + budgets for one user; the sink binds the policy."""
    device = MobileDevice(
        user_id=user_id,
        network=CellularOnlyNetwork(),
        battery=BatteryTrace([BatterySample(0.0, 0.9, charging=False)]),
    )
    return RoundLoop(
        device=device,
        data_budget=DataBudget(theta_bytes=150_000.0),  # ~150 KB per round
        energy_budget=EnergyBudget(kappa_joules=3000.0),
    )


def main() -> None:
    broker, inbox = build_broker()

    # Per-user round loops behind the broker; "richnote" is a registry
    # key, so swapping the whole fleet to another policy is one string.
    fleet = SchedulerFleetSink.with_policy(
        notification_to_item,
        bare_loop,
        policy="richnote",
        lyapunov=LyapunovConfig(v=1000.0, kappa_joules=3000.0),
    )
    broker.add_sink(fleet)

    print("Publishing: Bob streams a track (realtime), artist 7 drops an")
    print("album (round-based), Carol streams two tracks (realtime)...\n")
    broker.publish(Publication(Topic(TopicKind.FRIEND, BOB), BOB, 10.0,
                               {"track_id": 100}))
    broker.publish(Publication(Topic(TopicKind.ARTIST, 7), 7, 20.0,
                               {"track_id": 200}))
    broker.publish(Publication(Topic(TopicKind.FRIEND, CAROL), CAROL, 30.0,
                               {"track_id": 300}))
    broker.publish(Publication(Topic(TopicKind.FRIEND, CAROL), CAROL, 40.0,
                               {"track_id": 301}))
    print(f"  delivered immediately (realtime friend feeds): {len(inbox)}")
    print(f"  held for the next round (album release):       "
          f"{broker.pending_count}")
    broker.flush()
    print(f"  after round flush: {len(inbox)} notifications total\n")

    print("Round-by-round delivery under a 150 KB/round budget:")
    for round_index in range(1, 4):
        results = fleet.run_round(round_index * ROUND, ROUND)
        result = results[ALICE]
        deliveries = ", ".join(
            f"item{d.item.item_id}@L{d.level}({d.size_bytes / 1000:.1f}KB)"
            for d in result.deliveries
        ) or "(nothing)"
        print(f"  round {round_index}: {deliveries}  "
              f"budget left {result.data_budget_after / 1000:.0f}KB  "
              f"queue {result.queue_length_after}")
    print(
        "\nThe high-interest track got a preview; low-interest ones went out"
        "\nas metadata -- and everything was delivered within the budget."
    )


if __name__ == "__main__":
    main()
