#!/usr/bin/env python3
"""Quickstart: generate a workload, learn utility, schedule rich notifications.

Runs the whole RichNote pipeline end to end on a small synthetic
Spotify-like workload:

1. synthesize a catalog, social graph and one week of notification trace;
2. train the Random Forest content-utility model on click/hover labels;
3. replay each user's notification stream through the RichNote scheduler
   and the FIFO/UTIL baselines under a 10 MB/week data plan;
4. print the headline comparison.

Usage:  python examples/quickstart.py
"""

from repro.experiments.config import ExperimentConfig, Method, MethodSpec
from repro.experiments.runner import UtilityAnnotations, run_experiment
from repro.experiments.workloads import eval_workload


def main() -> None:
    print("Generating synthetic Spotify-like workload (30 users, 48 h)...")
    workload = eval_workload("small")
    print(f"  {len(workload.records)} notifications fanned out through the broker")
    clicked = sum(1 for r in workload.records if r.clicked)
    print(f"  {clicked} clicked, "
          f"{sum(1 for r in workload.records if r.hovered)} attended\n")

    print("Training the content-utility classifier (clicked vs hovered)...")
    annotations = UtilityAnnotations.train(
        workload, seed=7, run_cross_validation=True
    )
    print(f"  5-fold CV: {annotations.cross_validation.summary()}\n")

    config = ExperimentConfig(weekly_budget_mb=10.0, seed=7)
    users = workload.top_users(10)
    print(f"Scheduling for the top {len(users)} users at "
          f"{config.weekly_budget_mb:g} MB/week...\n")

    header = (
        f"{'method':<12}{'delivery':>10}{'recall':>9}{'precision':>11}"
        f"{'utility':>10}{'delay':>10}"
    )
    print(header)
    print("-" * len(header))
    for spec in (
        MethodSpec(Method.RICHNOTE),
        MethodSpec(Method.FIFO, fixed_level=3),
        MethodSpec(Method.UTIL, fixed_level=3),
    ):
        result = run_experiment(workload, spec, config, annotations, users)
        agg = result.aggregate
        print(
            f"{spec.label:<12}"
            f"{agg.delivery_ratio:>9.1%}"
            f"{agg.recall:>9.2f}"
            f"{agg.precision:>11.2f}"
            f"{agg.total_utility:>10.1f}"
            f"{agg.mean_queuing_delay_s / 3600:>9.1f}h"
        )
    print(
        "\nRichNote adapts presentation levels to the budget: it delivers"
        "\n~100% of notifications (degrading to metadata when starved) while"
        "\nthe fixed-level baselines backlog for hours."
    )


if __name__ == "__main__":
    main()
