#!/usr/bin/env python3
"""A full paper-style evaluation week: the Figures 3-5 budget sweep.

Reproduces the evaluation of Section V on the calibrated "medium"
workload: one simulated week, RichNote vs FIFO/UTIL at fixed 5 s / 10 s
presentation levels, weekly budgets from 1 to 100 MB, plus RichNote's
presentation-mix adaptation (Fig. 5b).

Usage:  python examples/spotify_week.py [--budgets 1,5,20,100] [--users 15]
"""

import argparse

from repro.experiments.figures import figure3_and_4, figure5b_presentation_mix
from repro.experiments.reporting import (
    render_ascii_chart,
    render_level_mix,
    render_series_table,
)
from repro.experiments.runner import UtilityAnnotations
from repro.experiments.workloads import eval_workload


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--budgets",
        default="1,2,5,10,20,50,100",
        help="comma-separated weekly budgets in MB",
    )
    parser.add_argument(
        "--users", type=int, default=15, help="how many top users to simulate"
    )
    args = parser.parse_args()
    budgets = tuple(float(b) for b in args.budgets.split(","))

    print("Building one simulated week of Spotify-like notifications...")
    workload = eval_workload("medium")
    users = workload.top_users(args.users)
    per_user = sum(len(workload.records_for_user(u)) for u in users) / len(users)
    print(f"  top {len(users)} users, ~{per_user:.0f} notifications each\n")

    print("Training the content-utility model...")
    annotations = UtilityAnnotations.train(workload, seed=11)

    print(f"Sweeping budgets {budgets} MB/week x 5 methods "
          f"(this replays every round for every user)...\n")
    figs = figure3_and_4(
        workload, budgets, annotations=annotations, user_ids=users
    )
    for name, title in (
        ("fig3a_delivery_ratio", "Fig 3(a) delivery ratio"),
        ("fig3c_recall", "Fig 3(c) recall"),
        ("fig3d_precision", "Fig 3(d) precision"),
        ("fig4a_total_utility", "Fig 4(a) total delivered utility"),
        ("fig4d_delay_s", "Fig 4(d) mean queuing delay (s)"),
    ):
        print(f"== {title} ==")
        print(render_series_table(figs[name], precision=2))
        print()

    if len(budgets) >= 2:
        print("== Fig 4(a) as a chart ==")
        print(render_ascii_chart(figs["fig4a_total_utility"]))
        print()

    print("== Fig 5(b) RichNote presentation mix (fraction per level) ==")
    mix = figure5b_presentation_mix(
        workload, budgets, annotations=annotations, user_ids=users
    )
    print(render_level_mix(mix))
    print(
        "\nReading the mix: L1 = metadata only; L2..L6 = 5/10/20/30/40 s"
        "\npreviews.  As the budget grows RichNote shifts deliveries toward"
        "\nricher presentations, which is where its utility lead comes from."
    )


if __name__ == "__main__":
    main()
