"""Skyline pruning of the presentation attribute space (Figure 2a).

Section V-B: "we do not need to consider a combination of attributes if
another combination yields the same or smaller size, yet a higher utility.
Consider Figure 2(a): B is not a useful presentation given A, because A
provides the same utility for a smaller size, and similarly D provides a
higher utility than same-sized B and C."

A candidate presentation is *useful* iff no other candidate weakly
dominates it (smaller-or-equal size AND greater-or-equal utility, strict in
at least one dimension).  The surviving set is the Pareto frontier, which
is monotone: sorted by size, utilities strictly increase -- exactly the
ladder invariant :class:`repro.core.content.PresentationLadder` requires.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class CandidatePresentation:
    """A point in the size/utility trade-off space, with its attributes."""

    size_bytes: int
    utility: float
    attributes: tuple = ()

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ValueError("size must be >= 0")
        if self.utility < 0:
            raise ValueError("utility must be >= 0")


def dominates(a: CandidatePresentation, b: CandidatePresentation) -> bool:
    """Whether ``a`` weakly dominates ``b`` (and they are not equivalent)."""
    no_worse = a.size_bytes <= b.size_bytes and a.utility >= b.utility
    strictly_better = a.size_bytes < b.size_bytes or a.utility > b.utility
    return no_worse and strictly_better


def pareto_frontier(
    candidates: Sequence[CandidatePresentation],
) -> list[CandidatePresentation]:
    """The useful presentations: the non-dominated skyline, sorted by size.

    Ties in both dimensions keep a single representative (the first seen),
    since duplicates carry no selection value.  Runs in ``O(n log n)``: one
    sort by (size asc, utility desc), then a linear scan keeping points of
    strictly increasing utility.
    """
    if not candidates:
        return []
    ordered = sorted(candidates, key=lambda c: (c.size_bytes, -c.utility))
    frontier: list[CandidatePresentation] = []
    best_utility = float("-inf")
    for candidate in ordered:
        if candidate.utility > best_utility:
            frontier.append(candidate)
            best_utility = candidate.utility
    return frontier


def is_useful(
    candidate: CandidatePresentation,
    candidates: Sequence[CandidatePresentation],
) -> bool:
    """Whether ``candidate`` survives pruning against ``candidates``."""
    return not any(
        dominates(other, candidate) for other in candidates if other != candidate
    )
