"""Regression fitting of duration-utility curves (Figure 2b, Eq. 8-9).

The paper models ``util(d)`` -- the fraction of surveyed users satisfied by
a preview of duration ``d`` -- with two candidate families and picks by fit
quality:

* logarithmic:  ``util(d) = a + b * log(1 + d)``         (Eq. 8; the winner)
* polynomial:   ``util(d) = a * (1 - d / D)**b``          (Eq. 9)

Both reduce to ordinary least squares after a transform: the logarithmic
family is linear in ``log(1 + d)``; the polynomial family is linear in
``log(1 - d/D)`` after taking logs of the utilities (requiring positive
utilities and ``d < D``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class FitResult:
    """A fitted curve with goodness-of-fit diagnostics."""

    name: str
    params: tuple[float, ...]
    sse: float
    r_squared: float

    def __str__(self) -> str:  # pragma: no cover - formatting
        inner = ", ".join(f"{p:.3f}" for p in self.params)
        return f"{self.name}({inner}) R^2={self.r_squared:.3f}"


def _ols(design: np.ndarray, target: np.ndarray) -> np.ndarray:
    """Least-squares coefficients via the normal equations (lstsq)."""
    coefficients, *_ = np.linalg.lstsq(design, target, rcond=None)
    return coefficients


def _diagnostics(predicted: np.ndarray, target: np.ndarray) -> tuple[float, float]:
    residual = target - predicted
    sse = float(residual @ residual)
    centered = target - target.mean()
    total = float(centered @ centered)
    r_squared = 1.0 - sse / total if total > 0 else (1.0 if sse == 0 else 0.0)
    return sse, r_squared


def fit_logarithmic(durations: Sequence[float], utilities: Sequence[float]) -> FitResult:
    """Fit ``util(d) = a + b log(1 + d)``; returns params ``(a, b)``."""
    d = np.asarray(durations, dtype=float)
    u = np.asarray(utilities, dtype=float)
    if d.shape != u.shape or d.size < 2:
        raise ValueError("need at least two aligned (duration, utility) points")
    if (d < 0).any():
        raise ValueError("durations must be >= 0")
    design = np.column_stack([np.ones_like(d), np.log1p(d)])
    a, b = _ols(design, u)
    predicted = design @ np.array([a, b])
    sse, r2 = _diagnostics(predicted, u)
    return FitResult(name="logarithmic", params=(float(a), float(b)), sse=sse, r_squared=r2)


def fit_polynomial(
    durations: Sequence[float],
    utilities: Sequence[float],
    big_d: float = 40.0,
) -> FitResult:
    """Fit ``util(d) = a (1 - d/D)^b``; returns params ``(a, D, b)``.

    Requires strictly positive utilities and ``d < D`` (points at or beyond
    ``D`` are rejected -- the model is undefined there).
    """
    d = np.asarray(durations, dtype=float)
    u = np.asarray(utilities, dtype=float)
    if d.shape != u.shape or d.size < 2:
        raise ValueError("need at least two aligned (duration, utility) points")
    if (d >= big_d).any():
        raise ValueError(f"polynomial family requires d < D = {big_d}")
    if (u <= 0).any():
        raise ValueError("polynomial family requires positive utilities")
    design = np.column_stack([np.ones_like(d), np.log(1.0 - d / big_d)])
    log_a, b = _ols(design, np.log(u))
    a = math.exp(log_a)
    predicted = a * (1.0 - d / big_d) ** b
    sse, r2 = _diagnostics(predicted, u)
    return FitResult(
        name="polynomial", params=(float(a), float(big_d), float(b)), sse=sse, r_squared=r2
    )


def evaluate_logarithmic(params: tuple[float, ...], d: float) -> float:
    a, b = params
    return a + b * math.log1p(d)


def evaluate_polynomial(params: tuple[float, ...], d: float) -> float:
    a, big_d, b = params
    base = 1.0 - d / big_d
    return a * base**b if base > 0 else 0.0


def select_best_fit(
    durations: Sequence[float],
    utilities: Sequence[float],
    big_d: float = 40.0,
) -> tuple[FitResult, FitResult]:
    """Fit both families and order them best-first by SSE.

    Mirrors the paper's conclusion step: "From our survey results,
    logarithmic function showed a better fit so we use this function in our
    experiments."  Returns ``(best, other)``.
    """
    log_fit = fit_logarithmic(durations, utilities)
    poly_fit = fit_polynomial(durations, utilities, big_d=big_d)
    if log_fit.sse <= poly_fit.sse:
        return log_fit, poly_fit
    return poly_fit, log_fit
