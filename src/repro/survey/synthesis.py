"""Synthetic user surveys standing in for the paper's subjective studies.

Two surveys back the presentation-utility model (Section V-B):

1. **Attribute-grid survey** -- 20 audio presentations (4 sampling rates x
   5 durations) rated 0-5 by users; after skyline pruning "only six useful
   presentations" remained.  :func:`synthesize_presentation_survey` draws
   noisy ratings from a ground-truth duration x fidelity utility surface
   and returns the rated grid.

2. **Duration-stop survey** -- 80 users listened to tracks and stopped at
   the duration "barely enough for a good notification"; utility of
   duration *d* is the CDF of stop points at *d*.  The paper fits Eq. 8 to
   this CDF.  :func:`synthesize_duration_survey` samples stop points by
   inverting the paper's own fitted logarithmic CDF (plus censoring beyond
   the longest probe), so the downstream regression pipeline is verified to
   *recover* constants near the published ones from raw responses.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Sequence

from repro.survey.pareto import CandidatePresentation

#: Survey grid of Section V-B: sampling rates (kHz) and durations (s).
SURVEY_SAMPLING_RATES_KHZ = (8, 16, 32, 44)
SURVEY_DURATIONS_S = (5.0, 10.0, 20.0, 30.0, 40.0)

#: Perceptual fidelity multiplier per sampling rate (diminishing returns).
FIDELITY_BY_RATE_KHZ = {8: 0.45, 16: 0.72, 32: 0.92, 44: 1.0}


@dataclass(frozen=True)
class PresentationRating:
    """Average user rating of one (rate, duration) audio sample."""

    sampling_rate_khz: int
    duration_s: float
    size_bytes: int
    mean_rating: float  # 0-5 scale

    def __post_init__(self) -> None:
        if not 0.0 <= self.mean_rating <= 5.0:
            raise ValueError("ratings live on a 0-5 scale")


def sample_size_bytes(sampling_rate_khz: int, duration_s: float) -> int:
    """Uncompressed mono 16-bit PCM size of a probe sample."""
    return int(sampling_rate_khz * 1000 * 2 * duration_s)


def synthesize_presentation_survey(
    n_respondents: int = 40,
    rating_noise_std: float = 0.35,
    seed: int = 5,
) -> list[PresentationRating]:
    """Noisy 0-5 ratings over the 4x5 attribute grid.

    Ground truth: rating = 5 * fidelity(rate) * normalized log-duration
    utility; each respondent adds Gaussian noise, and the mean over
    respondents is reported (as a survey would).
    """
    if n_respondents < 1:
        raise ValueError("need at least one respondent")
    rng = random.Random(seed)
    ratings: list[PresentationRating] = []
    top_duration_utility = math.log1p(max(SURVEY_DURATIONS_S))
    for rate in SURVEY_SAMPLING_RATES_KHZ:
        for duration in SURVEY_DURATIONS_S:
            truth = (
                5.0
                * FIDELITY_BY_RATE_KHZ[rate]
                * (math.log1p(duration) / top_duration_utility)
            )
            observed = [
                min(5.0, max(0.0, truth + rng.gauss(0.0, rating_noise_std)))
                for _ in range(n_respondents)
            ]
            ratings.append(
                PresentationRating(
                    sampling_rate_khz=rate,
                    duration_s=duration,
                    size_bytes=sample_size_bytes(rate, duration),
                    mean_rating=sum(observed) / n_respondents,
                )
            )
    return ratings


def ratings_to_candidates(
    ratings: Sequence[PresentationRating],
) -> list[CandidatePresentation]:
    """Adapt survey ratings for the skyline pruner of Figure 2(a)."""
    return [
        CandidatePresentation(
            size_bytes=rating.size_bytes,
            utility=rating.mean_rating,
            attributes=(rating.sampling_rate_khz, rating.duration_s),
        )
        for rating in ratings
    ]


@dataclass
class DurationSurvey:
    """Raw stop-point responses of the duration survey."""

    stop_seconds: list[float] = field(default_factory=list)
    censored_at: float = 40.0  # probes stop at the longest duration

    def empirical_cdf(self, duration: float) -> float:
        """Fraction of users satisfied by a preview of <= ``duration``."""
        if not self.stop_seconds:
            raise ValueError("empty survey")
        return sum(1 for s in self.stop_seconds if s <= duration) / len(
            self.stop_seconds
        )

    def utilities_at(self, durations: Sequence[float]) -> list[float]:
        """The survey's ``util(d)`` curve: the empirical CDF at each probe."""
        return [self.empirical_cdf(d) for d in durations]


def synthesize_duration_survey(
    n_respondents: int = 80,
    a: float = -0.397,
    b: float = 0.352,
    censor_at: float = 40.0,
    seed: int = 6,
) -> DurationSurvey:
    """Sample stop points whose CDF follows the paper's Eq. 8.

    Inverse-CDF sampling: for ``u ~ Uniform(0, 1)``, the stop point is
    ``d = exp((u - a) / b) - 1``; draws whose implied duration exceeds the
    probe horizon are censored at ``censor_at`` (the user never stopped
    within the probe -- they wanted an even longer preview).
    """
    if n_respondents < 1:
        raise ValueError("need at least one respondent")
    if b <= 0:
        raise ValueError("b must be positive for an increasing CDF")
    rng = random.Random(seed)
    stops: list[float] = []
    for _ in range(n_respondents):
        u = rng.random()
        implied = math.exp((u - a) / b) - 1.0
        stops.append(min(censor_at + 1e-6, implied) if implied > 0 else 0.0)
    # Censored draws sit just above censor_at so empirical_cdf(censor_at)
    # excludes them, matching "preferred longer than the longest probe".
    return DurationSurvey(stop_seconds=stops, censored_at=censor_at)
