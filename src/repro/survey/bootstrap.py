"""Respondent heterogeneity and bootstrap confidence for the survey fits.

The paper concedes its surveys are "limited in scale".  Two tools quantify
that limitation:

* :func:`synthesize_heterogeneous_duration_survey` -- a richer respondent
  model: each participant carries a personal taste factor that scales
  their preferred preview duration (impatient vs thorough listeners), so
  stop points are over-dispersed relative to the iid sampler in
  :mod:`repro.survey.synthesis`;
* :func:`bootstrap_duration_fit` -- respondent-level bootstrap of the
  Eq. 8 fit: resample the panel with replacement, refit, and report
  percentile confidence intervals for the (a, b) constants.  With the
  paper's n = 80 the intervals are wide; they shrink as the panel grows
  (the crowdsourcing future-work point, quantified).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Sequence

from repro.survey.fitting import fit_logarithmic
from repro.survey.synthesis import DurationSurvey


def synthesize_heterogeneous_duration_survey(
    n_respondents: int = 80,
    a: float = -0.397,
    b: float = 0.352,
    taste_spread: float = 0.3,
    censor_at: float = 40.0,
    seed: int = 7,
) -> DurationSurvey:
    """Duration-stop survey with per-respondent taste factors.

    Each respondent's stop point is the population inverse-CDF draw scaled
    by ``exp(gauss(0, taste_spread))`` -- a log-normal personal factor, so
    the population curve is preserved in the median while individual
    responses over-disperse (as real panels do).
    """
    if n_respondents < 1:
        raise ValueError("need at least one respondent")
    if b <= 0:
        raise ValueError("b must be positive for an increasing CDF")
    if taste_spread < 0:
        raise ValueError("taste spread must be >= 0")
    rng = random.Random(seed)
    stops: list[float] = []
    for _ in range(n_respondents):
        u = rng.random()
        population = math.exp((u - a) / b) - 1.0
        personal = population * math.exp(rng.gauss(0.0, taste_spread))
        stops.append(
            min(censor_at + 1e-6, personal) if personal > 0 else 0.0
        )
    return DurationSurvey(stop_seconds=stops, censored_at=censor_at)


@dataclass(frozen=True)
class BootstrapFit:
    """Percentile bootstrap summary of the logarithmic fit's constants."""

    a_point: float
    b_point: float
    a_interval: tuple[float, float]
    b_interval: tuple[float, float]
    n_bootstrap: int

    def a_width(self) -> float:
        return self.a_interval[1] - self.a_interval[0]

    def b_width(self) -> float:
        return self.b_interval[1] - self.b_interval[0]

    def contains_truth(self, a_true: float, b_true: float) -> bool:
        return (
            self.a_interval[0] <= a_true <= self.a_interval[1]
            and self.b_interval[0] <= b_true <= self.b_interval[1]
        )


def _percentile(ordered: list[float], q: float) -> float:
    index = q * (len(ordered) - 1)
    lower = int(math.floor(index))
    upper = min(len(ordered) - 1, lower + 1)
    weight = index - lower
    return ordered[lower] * (1 - weight) + ordered[upper] * weight


def bootstrap_duration_fit(
    survey: DurationSurvey,
    probes: Sequence[float],
    n_bootstrap: int = 200,
    confidence: float = 0.95,
    seed: int = 17,
) -> BootstrapFit:
    """Respondent-level bootstrap CI for the Eq. 8 constants.

    Resamples the panel's stop points with replacement; each resample
    yields an empirical CDF at ``probes`` and a logarithmic fit.  Returns
    the point estimate (full panel) and percentile intervals.
    """
    if n_bootstrap < 10:
        raise ValueError("need at least 10 bootstrap resamples")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    probes = list(probes)
    point = fit_logarithmic(
        probes, [max(u, 1e-6) for u in survey.utilities_at(probes)]
    )
    rng = random.Random(seed)
    stops = survey.stop_seconds
    a_samples: list[float] = []
    b_samples: list[float] = []
    for _ in range(n_bootstrap):
        resample = DurationSurvey(
            stop_seconds=[rng.choice(stops) for _ in stops],
            censored_at=survey.censored_at,
        )
        utilities = [max(u, 1e-6) for u in resample.utilities_at(probes)]
        a, b = fit_logarithmic(probes, utilities).params
        a_samples.append(a)
        b_samples.append(b)
    a_samples.sort()
    b_samples.sort()
    alpha = (1.0 - confidence) / 2.0
    return BootstrapFit(
        a_point=point.params[0],
        b_point=point.params[1],
        a_interval=(
            _percentile(a_samples, alpha),
            _percentile(a_samples, 1 - alpha),
        ),
        b_interval=(
            _percentile(b_samples, alpha),
            _percentile(b_samples, 1 - alpha),
        ),
        n_bootstrap=n_bootstrap,
    )
