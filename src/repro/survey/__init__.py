"""Presentation-utility survey pipeline: synthesis, pruning, fitting."""

from repro.survey.pareto import CandidatePresentation, dominates, is_useful, pareto_frontier
from repro.survey.fitting import (
    FitResult,
    evaluate_logarithmic,
    evaluate_polynomial,
    fit_logarithmic,
    fit_polynomial,
    select_best_fit,
)
from repro.survey.synthesis import (
    DurationSurvey,
    PresentationRating,
    ratings_to_candidates,
    synthesize_duration_survey,
    synthesize_presentation_survey,
)
from repro.survey.bootstrap import (
    BootstrapFit,
    bootstrap_duration_fit,
    synthesize_heterogeneous_duration_survey,
)
