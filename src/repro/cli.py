"""Command-line interface: the RichNote toolbox.

Subcommands::

    richnote generate-trace  --preset medium --out trace.jsonl
    richnote stats           --trace trace.jsonl
    richnote train           --trace trace.jsonl
    richnote run             --trace trace.jsonl --method richnote --budget 10
    richnote sweep           --trace trace.jsonl --budgets 1,5,20,100
    richnote figures         --trace trace.jsonl --out artifacts/
    richnote survey
    richnote serve           --rounds 3 --chaos flash-crowd
    richnote bench-scale     --users 10000,100000 --out BENCH_scalability.json
    richnote bench-channels  --rounds 40 --out BENCH_channels.json
    richnote lint            src/repro --warn-only

``generate-trace`` synthesizes a labelled Spotify-like notification trace
and writes it as JSONL; the other trace-consuming commands load any such
file (the records embed every feature the pipeline needs).  ``survey``
runs the Figure 2 presentation-utility pipeline end to end.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.experiments.config import ExperimentConfig, MethodSpec
from repro.experiments.figures import figure3_and_4, paper_method_specs
from repro.experiments.reporting import render_series_table
from repro.experiments.runner import UtilityAnnotations, run_experiment
from repro.experiments.workloads import workload_spec
from repro.trace.generator import Workload, build_workload
from repro.trace.io import iter_trace, read_trace, write_trace


def _parse_faults(text: str):
    """``0.2`` (disconnect shorthand) or ``disconnect=0.2,timeout=0.05,...``.

    Recognized kinds: disconnect, timeout, corrupt, reject.  Returns a
    :class:`repro.sim.faults.FaultConfig`.
    """
    from repro.sim.faults import FaultConfig

    text = text.strip()
    if not text:
        raise argparse.ArgumentTypeError("empty --faults spec")
    try:
        shorthand = float(text)
    except ValueError:
        shorthand = None
    if shorthand is not None:
        try:
            return FaultConfig(p_disconnect=shorthand)
        except ValueError as error:
            raise argparse.ArgumentTypeError(str(error)) from error
    known = {"disconnect", "timeout", "corrupt", "reject"}
    kwargs: dict[str, float] = {}
    for part in text.split(","):
        kind, sep, value = part.partition("=")
        kind = kind.strip().lower()
        if not sep or kind not in known:
            raise argparse.ArgumentTypeError(
                f"bad --faults entry {part!r}; use e.g. "
                "disconnect=0.2,timeout=0.05 (kinds: disconnect, timeout, "
                "corrupt, reject) or a bare probability"
            )
        try:
            kwargs[f"p_{kind}"] = float(value)
        except ValueError as error:
            raise argparse.ArgumentTypeError(
                f"bad probability in --faults entry {part!r}"
            ) from error
    try:
        return FaultConfig(**kwargs)
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error)) from error


def _parse_method(text: str) -> MethodSpec:
    """``richnote`` | ``fifo:3`` | ``util:2`` (see :meth:`MethodSpec.parse`)."""
    try:
        return MethodSpec.parse(text)
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error)) from error


def _load_workload(path: str) -> Workload:
    return Workload.from_records(read_trace(path))


def cmd_generate_trace(args: argparse.Namespace) -> int:
    spec = workload_spec(args.preset, seed=args.seed)
    workload = build_workload(spec)
    count = write_trace(args.out, workload.records)
    users = len(workload.user_ids())
    print(f"wrote {count} notifications for {users} users to {args.out}")
    return 0


def cmd_train(args: argparse.Namespace) -> int:
    workload = _load_workload(args.trace)
    annotations = UtilityAnnotations.train(
        workload, seed=args.seed, run_cross_validation=True
    )
    cv = annotations.cross_validation
    print("content-utility classifier, 5-fold cross validation:")
    print(f"  {cv.summary()}")
    print("  (paper: precision=0.700 accuracy=0.689 on the real trace)")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    workload = _load_workload(args.trace)
    spec = _parse_method(args.method)
    config = ExperimentConfig(
        weekly_budget_mb=args.budget, seed=args.seed, faults=args.faults
    )
    annotations = UtilityAnnotations.train(workload, seed=args.seed)
    users = workload.top_users(args.users) if args.users else None
    result = run_experiment(workload, spec, config, annotations, users)
    agg = result.aggregate
    print(f"{spec.label} @ {args.budget:g} MB/week over {agg.users} users:")
    for key, value in agg.row().items():
        print(f"  {key:>15}: {value:.4f}")
    if args.faults is not None:
        from repro.experiments.reporting import render_failure_stats

        print(render_failure_stats(result.failures, label=spec.label))
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    workload = _load_workload(args.trace)
    budgets = tuple(float(b) for b in args.budgets.split(","))
    specs = (
        [_parse_method(m) for m in args.methods.split(",")]
        if args.methods
        else paper_method_specs()
    )
    annotations = UtilityAnnotations.train(workload, seed=args.seed)
    users = workload.top_users(args.users) if args.users else None
    config = ExperimentConfig(seed=args.seed, faults=args.faults)
    grid = None
    telemetry = None
    if args.workers:
        from repro.experiments.pool import sweep_budgets_parallel
        from repro.experiments.timing import SweepTelemetry

        telemetry = SweepTelemetry()
        grid = sweep_budgets_parallel(
            workload, specs, budgets, config, annotations, users,
            max_workers=args.workers, keep_per_user=False,
            telemetry=telemetry,
        )
    figs = figure3_and_4(
        workload, budgets, config, annotations, users, specs, grid=grid,
    )
    for name in sorted(figs):
        print(render_series_table(figs[name]))
        print()
    if args.bench_out:
        if telemetry is None:
            raise SystemExit("--bench-out requires --workers >= 1")
        telemetry.write(args.bench_out)
        print(f"wrote stage timings to {args.bench_out}")
    return 0


def cmd_figures(args: argparse.Namespace) -> int:
    """Regenerate every paper figure into an artifacts directory."""
    from pathlib import Path

    from repro.experiments.figures import (
        figure5a_fixed_levels,
        figure5b_presentation_mix,
        figure5d_user_categories,
        v_sensitivity,
    )
    from repro.experiments.reporting import (
        render_level_mix,
        render_sensitivity,
        render_series_table,
        render_user_categories,
        save_series_csv,
    )

    workload = _load_workload(args.trace)
    budgets = tuple(float(b) for b in args.budgets.split(","))
    users = workload.top_users(args.users) if args.users else None
    annotations = UtilityAnnotations.train(workload, seed=args.seed)
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    config = ExperimentConfig(seed=args.seed, faults=args.faults)

    figs = figure3_and_4(workload, budgets, config, annotations, users)
    tables: list[str] = []
    for name in sorted(figs):
        save_series_csv(figs[name], out / f"{name}.csv")
        tables.append(render_series_table(figs[name]))
    fig5a = figure5a_fixed_levels(workload, budgets, config, annotations, users)
    save_series_csv(fig5a, out / "fig5a_fixed_levels.csv")
    tables.append(render_series_table(fig5a, precision=1))
    mix = figure5b_presentation_mix(workload, budgets, config, annotations, users)
    tables.append(render_level_mix(mix))
    categories = figure5d_user_categories(workload, config, annotations, users)
    tables.append(render_user_categories(categories))
    sensitivity = v_sensitivity(workload, config=config, annotations=annotations,
                                user_ids=users)
    tables.append(render_sensitivity(sensitivity))
    (out / "tables.txt").write_text("\n\n".join(tables) + "\n", encoding="utf-8")
    print(f"wrote {len(list(out.iterdir()))} artifact files to {out}")
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    from repro.trace.stats import compute_stats, render_stats

    # Streaming: stats are a single fold, so never materialize the trace.
    print(render_stats(compute_stats(iter_trace(args.trace))))
    return 0


def cmd_bench_scale(args: argparse.Namespace) -> int:
    """Users/sec/core curve: columnar engine vs the per-user loop."""
    from repro.experiments.scale import bench_scale, write_scale_report

    counts = [int(c) for c in args.users.split(",") if c.strip()]
    payload = bench_scale(
        counts,
        seed=args.seed,
        scalar_sample=args.scalar_sample,
        parity_sample=args.parity_sample,
        chunk_users=args.chunk_users,
        workers=args.workers,
        multichannel_sample=args.multichannel_sample,
        profile_dir=args.profile or None,
    )
    meta = payload["meta"]
    print(
        f"cores: {meta['cores_used']} used / {meta['cores_available']} "
        f"available (affinity-aware)"
    )
    for point in payload["curve"]:
        print(
            f"{point['users']:>8} users ({point['records']} records): "
            f"columnar {point['columnar']['users_per_sec_per_core']:.0f} "
            f"users/s/core, scalar "
            f"{point['scalar']['users_per_sec_per_core']:.0f} users/s/core "
            f"-> {point['speedup']:.1f}x "
            f"(parity checked on {point['parity_checked_users']} users)"
        )
        multi = point.get("multi_core")
        if multi:
            print(
                f"          multi-core x{multi['workers']}: "
                f"{multi['single_core_wall_s']:.2f}s -> "
                f"{multi['multi_core_wall_s']:.2f}s "
                f"({multi['speedup_vs_single_core']:.2f}x, digests on "
                f"{multi['digest_parity_users']} users)"
            )
        mc = point.get("multichannel")
        if mc:
            print(
                f"          multichannel ({mc['sampled_users']} users): "
                f"{mc['kernel_path']} {mc['batched_wall_s']:.2f}s vs "
                f"{mc['fallback_path']} {mc['adapter_wall_s']:.2f}s "
                f"-> {mc['speedup']:.1f}x"
            )
    for path in meta.get("profile_pstats", []):
        print(f"profiled: {path}")
    if args.out:
        write_scale_report(args.out, payload)
        print(f"wrote {args.out}")
    return 0


def cmd_bench_channels(args: argparse.Namespace) -> int:
    """Flash-crowd shared-cell scenario: cross-user degradation report."""
    from repro.experiments.channels_bench import (
        ChannelsBenchConfig,
        bench_channels,
        write_channels_report,
    )

    config = ChannelsBenchConfig(
        seed=args.seed,
        rounds=args.rounds,
        crowd_users=args.crowd_users,
        bystanders_per_cell=args.bystanders,
        pool_bytes_per_round=args.pool_bytes,
    )
    payload = bench_channels(config)
    shared = payload["coupling"]["shared_bystanders"]
    control = payload["coupling"]["control_bystanders"]
    print(
        f"shared-cell bystanders: utility "
        f"{shared['uncoupled_utility']:.2f} -> {shared['coupled_utility']:.2f} "
        f"({shared['drop_fraction']:.1%} drop from the crowd's pool drain); "
        f"control cell: {control['drop_fraction']:.1%}"
    )
    for name, row in payload["coupled"]["per_channel"].items():
        print(
            f"  {name}: {row['delivered']} delivered, {row['shed']} shed, "
            f"{row['dead_letters']} dead-lettered"
        )
    print(
        "conservation error: "
        f"{payload['coupled']['conservation_error_bytes']:g} B"
    )
    if args.out:
        write_channels_report(args.out, payload)
        print(f"wrote {args.out}")
    return 0


def cmd_survey(args: argparse.Namespace) -> int:
    from repro.survey.fitting import select_best_fit
    from repro.survey.pareto import pareto_frontier
    from repro.survey.synthesis import (
        ratings_to_candidates,
        synthesize_duration_survey,
        synthesize_presentation_survey,
    )

    ratings = synthesize_presentation_survey(
        n_respondents=args.respondents, seed=args.seed
    )
    frontier = pareto_frontier(ratings_to_candidates(ratings))
    print(f"Fig 2(a): {len(ratings)} candidates -> {len(frontier)} useful")
    survey = synthesize_duration_survey(
        n_respondents=args.respondents, seed=args.seed
    )
    probes = [5.0, 10.0, 15.0, 20.0, 25.0, 30.0, 35.0, 39.0]
    utilities = [max(u, 1e-6) for u in survey.utilities_at(probes)]
    best, other = select_best_fit(probes, utilities)
    print(f"Fig 2(b): best fit {best}; runner-up {other}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the live notification service for a bounded chaos session.

    Builds the self-contained harness (seeded devices, flash-crowd
    ingress, flaky egress), runs ``--rounds`` round periods on a
    simulated clock and prints the health ledger; ``--bench-out`` also
    writes the ``BENCH_service.json`` payload.
    """
    from repro.service.harness import DemoConfig, run_demo
    from repro.service.health import write_bench

    config = DemoConfig(
        users=args.users,
        rounds=args.rounds,
        round_seconds=args.round_seconds,
        queue_bound=args.queue_bound,
        seed=args.seed,
        policy=args.policy,
        chaos=args.chaos,
        sink_fail=args.sink_fail,
        p_outage=args.outage,
    )
    run = run_demo(config)
    accounting = run.payload["accounting"]
    throughput = run.payload["throughput"]
    latency = run.payload["latency_s"]
    pressure = run.payload["pressure"]
    print(
        f"served {config.users} users x {config.rounds} rounds "
        f"({config.round_seconds:g}s each), chaos={config.chaos}"
    )
    print(
        f"  ingested={accounting['ingested']} delivered={accounting['delivered']} "
        f"shed={accounting['shed']} deferred_pending={accounting['deferred_pending']} "
        f"dead_lettered={accounting['dead_lettered']} pending={accounting['pending']}"
    )
    print(
        f"  latency p50={latency['p50']:.1f}s p99={latency['p99']:.1f}s "
        f"({latency['count']} delivered); "
        f"{throughput['delivered_per_simulated_s']:.2f} delivered/sim-s"
    )
    print(
        f"  pressure max={pressure['max_level']} final={pressure['final_level']} "
        f"({len(pressure['transitions'])} transitions); "
        f"queue high-water {run.service.frontier.high_water()}"
        f"/{config.queue_bound}"
    )
    error = accounting["error"]
    print(f"  conservation error: {error}")
    if args.bench_out:
        out = write_bench(args.bench_out, run.payload)
        print(f"wrote {out}")
    return 0 if error == 0 else 1


def cmd_lint(args: argparse.Namespace) -> int:
    """Run richlint, the repo's domain-invariant analyzer.

    Delegates to :mod:`repro.analysis.cli` so ``richnote lint``,
    ``python -m repro.analysis`` and ``make analyze`` share one
    implementation (flags, exit codes, baseline handling).
    """
    from repro.analysis.cli import main as richlint_main

    return richlint_main(args.richlint_args)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="richnote",
        description="RichNote (ICDCS 2016) reproduction toolbox",
    )
    parser.add_argument("--seed", type=int, default=97, help="master seed")
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser(
        "generate-trace", help="synthesize a labelled notification trace"
    )
    generate.add_argument(
        "--preset", default="medium", choices=("small", "medium", "large")
    )
    generate.add_argument("--out", required=True, help="output JSONL path")
    generate.set_defaults(handler=cmd_generate_trace)

    train = commands.add_parser(
        "train", help="cross-validate the content-utility classifier"
    )
    train.add_argument("--trace", required=True)
    train.set_defaults(handler=cmd_train)

    run = commands.add_parser("run", help="replay one policy at one budget")
    run.add_argument("--trace", required=True)
    run.add_argument("--method", default="richnote",
                     help="richnote | fifo:<level> | util:<level>")
    run.add_argument("--budget", type=float, default=10.0,
                     help="weekly data budget in MB")
    run.add_argument("--users", type=int, default=0,
                     help="restrict to the top N users (0 = all)")
    run.add_argument("--faults", type=_parse_faults, default=None,
                     help="chaos: fault probabilities, e.g. 0.2 or "
                          "disconnect=0.2,timeout=0.05")
    run.set_defaults(handler=cmd_run)

    sweep = commands.add_parser(
        "sweep", help="the Figures 3-4 grid over budgets and methods"
    )
    sweep.add_argument("--trace", required=True)
    sweep.add_argument("--budgets", default="1,2,5,10,20,50,100")
    sweep.add_argument("--methods", default="",
                       help="comma list, e.g. richnote,util:3 (default: paper's five)")
    sweep.add_argument("--users", type=int, default=0)
    sweep.add_argument("--faults", type=_parse_faults, default=None,
                       help="chaos: fault probabilities, e.g. 0.2 or "
                            "disconnect=0.2,timeout=0.05")
    sweep.add_argument("--workers", type=int, default=0,
                       help="run the grid on a persistent worker pool with "
                            "N processes (0 = sequential)")
    sweep.add_argument("--bench-out", default="",
                       help="write per-stage wall-clock telemetry "
                            "(BENCH_sweep.json format; needs --workers)")
    sweep.set_defaults(handler=cmd_sweep)

    figures = commands.add_parser(
        "figures", help="regenerate every paper figure into --out (CSV + text)"
    )
    figures.add_argument("--trace", required=True)
    figures.add_argument("--out", required=True)
    figures.add_argument("--budgets", default="1,2,5,10,20,50,100")
    figures.add_argument("--users", type=int, default=0)
    figures.add_argument("--faults", type=_parse_faults, default=None,
                         help="chaos: re-render every figure under a fault "
                              "schedule, e.g. disconnect=0.2")
    figures.set_defaults(handler=cmd_figures)

    stats = commands.add_parser(
        "stats", help="summarize a trace (volumes, kinds, interactions)"
    )
    stats.add_argument("--trace", required=True)
    stats.set_defaults(handler=cmd_stats)

    bench_scale = commands.add_parser(
        "bench-scale",
        help="users/sec/core scaling curve: columnar core vs per-user loop",
    )
    bench_scale.add_argument(
        "--users", default="10000,100000",
        help="comma list of population sizes (default 10000,100000)",
    )
    bench_scale.add_argument(
        "--scalar-sample", type=int, default=150, dest="scalar_sample",
        help="users replayed on the scalar loop to estimate its rate",
    )
    bench_scale.add_argument(
        "--parity-sample", type=int, default=25, dest="parity_sample",
        help="users replayed on both paths for digest parity",
    )
    bench_scale.add_argument(
        "--chunk-users", type=int, default=20_000, dest="chunk_users",
        help="cohort chunk size bounding peak memory",
    )
    bench_scale.add_argument(
        "--workers", type=int, default=None,
        help="worker processes for the multi-core scenario (default: "
             "affinity-aware core count; < 2 skips the scenario)",
    )
    bench_scale.add_argument(
        "--multichannel-sample", type=int, default=1000,
        dest="multichannel_sample",
        help="users in the multichannel batched-vs-adapter scenario "
             "(0 disables it)",
    )
    bench_scale.add_argument(
        "--profile", default="",
        help="dump per-phase cProfile .pstats files (cohort build / "
             "rounds / merge) into this directory",
    )
    bench_scale.add_argument(
        "--out", default="",
        help="write the BENCH_scalability.json payload here",
    )
    bench_scale.set_defaults(handler=cmd_bench_scale)

    bench_channels = commands.add_parser(
        "bench-channels",
        help="multi-channel flash-crowd bench: shared cell pools "
             "coupling users",
    )
    bench_channels.add_argument("--seed", type=int, default=17)
    bench_channels.add_argument(
        "--rounds", type=int, default=40, help="rounds to simulate"
    )
    bench_channels.add_argument(
        "--crowd-users", type=int, default=12, dest="crowd_users",
        help="flash-crowd cohort size on the shared cell",
    )
    bench_channels.add_argument(
        "--bystanders", type=int, default=4,
        help="bystanders per cell (shared + control)",
    )
    bench_channels.add_argument(
        "--pool-bytes", type=float, default=4_000_000.0, dest="pool_bytes",
        help="per-round shared byte pool of each cell",
    )
    bench_channels.add_argument(
        "--out", default="",
        help="write the BENCH_channels.json payload here",
    )
    bench_channels.set_defaults(handler=cmd_bench_channels)

    survey = commands.add_parser(
        "survey", help="the Figure 2 presentation-utility pipeline"
    )
    survey.add_argument("--respondents", type=int, default=80)
    survey.set_defaults(handler=cmd_survey)

    serve = commands.add_parser(
        "serve",
        help="run the live notification service (bounded chaos session)",
    )
    serve.add_argument("--users", type=int, default=16)
    serve.add_argument("--rounds", type=int, default=6)
    serve.add_argument(
        "--round-seconds", type=float, default=60.0, dest="round_seconds"
    )
    serve.add_argument(
        "--queue-bound", type=int, default=16, dest="queue_bound"
    )
    serve.add_argument("--policy", default="richnote")
    serve.add_argument(
        "--chaos", default="flash-crowd", choices=("none", "flash-crowd")
    )
    serve.add_argument(
        "--sink-fail",
        type=float,
        default=0.10,
        dest="sink_fail",
        help="probability an egress delivery attempt fails",
    )
    serve.add_argument(
        "--outage",
        type=float,
        default=0.10,
        help="per-round probability a connected device is forced offline",
    )
    serve.add_argument(
        "--bench-out",
        default="",
        dest="bench_out",
        help="write BENCH_service.json payload here",
    )
    serve.set_defaults(handler=cmd_serve)

    lint = commands.add_parser(
        "lint",
        help="richlint: AST-based domain-invariant analysis "
        "(unit safety, determinism, conservation)",
        add_help=False,  # forward everything, including -h, to richlint
    )
    lint.add_argument("richlint_args", nargs=argparse.REMAINDER)
    lint.set_defaults(handler=cmd_lint)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    arguments = list(sys.argv[1:] if argv is None else argv)
    if arguments and arguments[0] == "lint":
        # Forwarded verbatim: argparse.REMAINDER drops the ball when the
        # first forwarded token is an option (bpo-17050), so `richnote
        # lint --list-rules` must bypass the subparser machinery.
        from repro.analysis.cli import main as richlint_main

        return richlint_main(arguments[1:])
    parser = build_parser()
    args = parser.parse_args(arguments)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests of main()
    sys.exit(main())
