"""Multi-channel flash-crowd bench: shared cell pools coupling users.

The single-user evaluation of the paper cannot show the failure mode the
channel refactor exists for: users do not fail independently when they
share a tower.  This bench builds a small population on two cells --

* a **flash crowd** on cell 0 that receives a burst of arrivals for a
  window of rounds (:class:`repro.sim.faults.FlashCrowd` semantics);
* **bystanders on cell 0** who share the crowd's byte pool; and
* **control bystanders on cell 1**, identical in every respect except
  the tower they camp on --

then replays the *same* arrival schedule twice: once with a
:class:`repro.pubsub.capacity.SharedCellCapacity` pool coupling the
users (crowd loops run first each round, draining the pool before the
bystanders are served) and once uncoupled.  The headline metric is the
**bystander utility drop**: how much utility the cell-0 bystanders lose
purely because somebody else's crowd drained their tower -- the cell-1
control group bounds how much of that drop is noise.

Every loop runs multichannel (push / in-app / email via the joint
channel x level MCKP) behind a fault-injecting
:class:`repro.core.delivery.DeliveryEngine`, so the payload also carries
per-channel delivered / shed / dead-letter breakdowns and the engine's
byte-conservation error, which must be exactly zero.

Determinism: every random draw flows through ``random.Random`` streams
derived from the config seed; the coupled and uncoupled runs consume
identical arrival schedules, content utilities and per-user fault seeds.
"""

from __future__ import annotations

import json
import platform
import random
from dataclasses import dataclass, field

from repro.core.budgets import DataBudget, EnergyBudget
from repro.core.channels import ChannelSet, builtin_channel
from repro.core.content import ContentItem, ContentKind
from repro.core.delivery import DeliveryEngine, RetryPolicy
from repro.core.presentations import build_audio_ladder
from repro.core.utility import CombinedUtilityModel, ExponentialAging
from repro.pubsub.capacity import CellTopology, SharedCellCapacity
from repro.runtime.loop import RoundLoop
from repro.runtime.policy import RichNotePolicy
from repro.sim.battery import BatterySample, BatteryTrace
from repro.sim.device import MobileDevice
from repro.sim.faults import FaultConfig, FlashCrowd, RandomFaultPolicy
from repro.sim.network import CellularOnlyNetwork

__all__ = ["SCHEMA", "ChannelsBenchConfig", "bench_channels", "write_channels_report"]

#: Version tag of the BENCH_channels.json layout.
SCHEMA = "richnote-bench-channels/1"

#: The cell the flash crowd (and the shared bystanders) camp on.
SHARED_CELL = 0
#: The control bystanders' cell -- same pool size, no crowd.
CONTROL_CELL = 1


@dataclass(frozen=True)
class ChannelsBenchConfig:
    """Scenario knobs; defaults are the CI smoke scale."""

    seed: int = 17
    rounds: int = 40
    round_seconds: float = 300.0
    crowd_users: int = 12
    bystanders_per_cell: int = 4
    #: Probability of one organic arrival per user per round.
    arrival_prob: float = 0.45
    #: The flash-crowd window (round indices) and its arrival burst.
    crowd: FlashCrowd = field(
        default_factory=lambda: FlashCrowd(
            cell=SHARED_CELL, first_round=12, rounds=10, extra_items_per_round=6
        )
    )
    #: Per-round per-cell shared byte pool (the coupling medium): sized
    #: so organic traffic never binds it (the control cell must read
    #: clean) while the flash crowd drains it every burst round.
    pool_bytes_per_round: float = 4_000_000.0
    theta_bytes: float = 500_000.0
    kappa_joules: float = 3000.0

    def __post_init__(self) -> None:
        if self.rounds < 1:
            raise ValueError("rounds must be >= 1")
        if self.crowd_users < 1 or self.bystanders_per_cell < 1:
            raise ValueError("need at least one crowd user and one bystander per cell")
        if not 0.0 <= self.arrival_prob <= 1.0:
            raise ValueError("arrival_prob must be in [0, 1]")
        if self.crowd.cell != SHARED_CELL:
            raise ValueError("the flash crowd must sit on the shared cell")


def _channel_set() -> ChannelSet:
    return ChannelSet(
        [
            builtin_channel("push"),
            builtin_channel("inapp"),
            builtin_channel("email"),
        ]
    )


def _user_layout(config: ChannelsBenchConfig) -> tuple[list[int], list[int], list[int]]:
    """(crowd, shared-cell bystanders, control-cell bystanders) user ids.

    The returned concatenation is also the per-round service order:
    crowd loops run first, so during the burst they drain the shared
    pool before the cell-0 bystanders are granted their budgets.
    """
    crowd = list(range(config.crowd_users))
    shared = [config.crowd_users + i for i in range(config.bystanders_per_cell)]
    control = [
        config.crowd_users + config.bystanders_per_cell + i
        for i in range(config.bystanders_per_cell)
    ]
    return crowd, shared, control


def _arrival_schedule(
    config: ChannelsBenchConfig,
) -> list[list[tuple[int, int, float]]]:
    """Per-round arrivals as ``(item_id, user_id, content_utility)``.

    Generated once from the seed and replayed identically by the coupled
    and uncoupled runs, so the only difference between the two runs is
    the shared pool.
    """
    crowd, shared, control = _user_layout(config)
    crowd_set = set(crowd)
    rng = random.Random(config.seed)
    next_id = 0
    schedule: list[list[tuple[int, int, float]]] = []
    for round_index in range(config.rounds):
        burst = config.crowd.active(round_index)
        arrivals: list[tuple[int, int, float]] = []
        for user_id in crowd + shared + control:
            if rng.random() < config.arrival_prob:
                arrivals.append((next_id, user_id, rng.uniform(0.35, 0.95)))
                next_id += 1
            if burst and user_id in crowd_set:
                for _ in range(config.crowd.extra_items_per_round):
                    arrivals.append((next_id, user_id, rng.uniform(0.35, 0.95)))
                    next_id += 1
        schedule.append(arrivals)
    return schedule


def _run_population(
    config: ChannelsBenchConfig,
    schedule: list[list[tuple[int, int, float]]],
    coupled: bool,
) -> dict:
    """Replay the schedule over the population; returns outcome columns."""
    crowd, shared, control = _user_layout(config)
    order = crowd + shared + control
    ladder = build_audio_ladder()
    channels = _channel_set()
    model = CombinedUtilityModel(aging=ExponentialAging(tau_seconds=2 * 3600.0))
    topology = CellTopology(
        cell_of={
            **{u: SHARED_CELL for u in crowd + shared},
            **{u: CONTROL_CELL for u in control},
        }
    )
    pool = (
        SharedCellCapacity(topology, config.pool_bytes_per_round)
        if coupled
        else None
    )
    fault_config = FaultConfig(p_disconnect=0.04, p_timeout=0.02, p_reject=0.02)
    retry = RetryPolicy(
        max_attempts=2,
        base_backoff_seconds=config.round_seconds,
        max_backoff_seconds=2 * config.round_seconds,
        degrade_after_attempts=1,
    )
    battery = BatteryTrace([BatterySample(time=0.0, level=0.9, charging=True)])

    loops: dict[int, RoundLoop] = {}
    engines: dict[int, DeliveryEngine] = {}
    for user_id in order:
        engine = DeliveryEngine(
            fault_policy=RandomFaultPolicy(fault_config),
            retry=retry,
            rng=random.Random(config.seed * 1_000 + user_id),
        )
        engines[user_id] = engine
        loops[user_id] = RoundLoop(
            device=MobileDevice(
                user_id=user_id,
                network=CellularOnlyNetwork(),
                battery=battery,
            ),
            data_budget=DataBudget(theta_bytes=config.theta_bytes),
            energy_budget=EnergyBudget(kappa_joules=config.kappa_joules),
            utility_model=model,
            delivery_engine=engine,
            policy=RichNotePolicy(),
            channels=channels,
            shared_capacity=pool,
        )

    utility_by_user = {u: 0.0 for u in order}
    deliveries_by_user = {u: 0 for u in order}
    for round_index in range(config.rounds):
        now = (round_index + 1) * config.round_seconds
        if pool is not None:
            pool.begin_round()
        for item_id, user_id, content_utility in schedule[round_index]:
            loops[user_id].enqueue(
                ContentItem(
                    item_id=item_id,
                    user_id=user_id,
                    kind=ContentKind.FRIEND_FEED,
                    created_at=round_index * config.round_seconds,
                    ladder=ladder,
                    content_utility=content_utility,
                )
            )
        for user_id in order:
            result = loops[user_id].run_round(now, config.round_seconds)
            for delivery in result.deliveries:
                utility_by_user[user_id] += delivery.utility
                deliveries_by_user[user_id] += 1

    # Aggregate engine counters across the population.
    per_channel: dict[str, dict] = {}
    conservation = 0.0
    totals = {
        "attempts": 0,
        "delivered": 0,
        "failed_attempts": 0,
        "retries_scheduled": 0,
        "dead_letters": 0,
    }
    billed_by_channel: dict[str, float] = {}
    for user_id in order:
        stats = engines[user_id].stats
        conservation += stats.conservation_error()
        for key in totals:
            totals[key] += getattr(stats, key)
        for name, slice_ in stats.per_channel.items():
            row = per_channel.setdefault(
                name,
                {
                    "delivered": 0,
                    "shed": 0,
                    "dead_letters": 0,
                    "retries_scheduled": 0,
                    "bytes_delivered": 0.0,
                },
            )
            row["delivered"] += slice_.delivered
            # "Shed" at the transport: attempts that failed mid-flight
            # (the terminal subset of which dead-letters).
            row["shed"] += slice_.failed_attempts
            row["dead_letters"] += slice_.dead_letters
            row["retries_scheduled"] += slice_.retries_scheduled
            row["bytes_delivered"] += slice_.bytes_delivered
        for name, net in loops[user_id].data_budget.per_channel_bytes.items():
            billed_by_channel[name] = billed_by_channel.get(name, 0.0) + net

    def _group(users: list[int]) -> dict:
        return {
            "users": len(users),
            "deliveries": sum(deliveries_by_user[u] for u in users),
            "utility": round(sum(utility_by_user[u] for u in users), 6),
            "mean_utility_per_user": round(
                sum(utility_by_user[u] for u in users) / len(users), 6
            ),
        }

    outcome = {
        "per_channel": {
            name: {
                **{k: v for k, v in row.items() if k != "bytes_delivered"},
                "bytes_delivered": round(row["bytes_delivered"], 3),
            }
            for name, row in sorted(per_channel.items())
        },
        "billed_bytes_by_channel": {
            name: round(net, 3) for name, net in sorted(billed_by_channel.items())
        },
        "conservation_error_bytes": conservation,
        "totals": totals,
        "groups": {
            "crowd": _group(crowd),
            "shared_bystanders": _group(shared),
            "control_bystanders": _group(control),
        },
    }
    if pool is not None:
        outcome["cells"] = {
            str(cell): {
                "pool_bytes_per_round": pool.pool_bytes(cell),
                "requested_bytes": round(stats.requested_bytes, 3),
                "granted_bytes": round(stats.granted_bytes, 3),
                "consumed_bytes": round(stats.consumed_bytes, 3),
                "denied_bytes": round(stats.denied_bytes, 3),
                "contended_grants": stats.contended_grants,
            }
            for cell, stats in sorted(pool.stats.items())
        }
    return outcome


def bench_channels(config: ChannelsBenchConfig | None = None) -> dict:
    """Run the coupled and uncoupled scenarios; returns the payload.

    The payload's ``coupling`` block is the point of the bench: the
    shared-cell bystanders' utility drop (uncoupled minus coupled) is
    the measured cross-user degradation, against the control cell's
    drop, which the pool never touches.
    """
    config = config or ChannelsBenchConfig()
    schedule = _arrival_schedule(config)
    arrivals = sum(len(round_arrivals) for round_arrivals in schedule)
    coupled = _run_population(config, schedule, coupled=True)
    uncoupled = _run_population(config, schedule, coupled=False)

    def _drop(group: str) -> dict:
        before = uncoupled["groups"][group]["utility"]
        after = coupled["groups"][group]["utility"]
        return {
            "uncoupled_utility": before,
            "coupled_utility": after,
            "utility_drop": round(before - after, 6),
            "drop_fraction": round((before - after) / before, 6) if before else 0.0,
        }

    return {
        "schema": SCHEMA,
        "platform": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "meta": {
            "seed": config.seed,
            "rounds": config.rounds,
            "round_seconds": config.round_seconds,
            "channels": list(_channel_set().names),
            "crowd_users": config.crowd_users,
            "bystanders_per_cell": config.bystanders_per_cell,
            "arrival_prob": config.arrival_prob,
            "arrivals": arrivals,
            "flash_crowd": {
                "cell": config.crowd.cell,
                "first_round": config.crowd.first_round,
                "rounds": config.crowd.rounds,
                "extra_items_per_round": config.crowd.extra_items_per_round,
            },
            "pool_bytes_per_round": config.pool_bytes_per_round,
            "theta_bytes": config.theta_bytes,
            "kappa_joules": config.kappa_joules,
        },
        "coupled": coupled,
        "uncoupled": uncoupled,
        "coupling": {
            "shared_bystanders": _drop("shared_bystanders"),
            "control_bystanders": _drop("control_bystanders"),
            "crowd": _drop("crowd"),
        },
    }


def write_channels_report(path, payload: dict) -> dict:
    """Serialize a :func:`bench_channels` payload (BENCH_channels.json)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return payload
