"""Population-scale throughput benchmark: columnar core vs per-user loop.

ISSUE 8's acceptance gate is quantitative: the columnar engine must
replay >= 5x more users per second per core than the scalar object-graph
loop at a 10k-user population, and ``BENCH_scalability.json`` must
record a users/sec/core curve at 10k and 100k users (1M as an opt-in
smoke).  This module is the measurement: it streams a cohort out of
:func:`repro.trace.generator.iter_users` (never materializing the full
population), replays it in bounded-memory chunks through the columnar
engine, replays a user sample through the scalar
:func:`repro.experiments.runner.run_user` twin, and asserts
delivery-digest parity on the overlap before reporting speed -- a fast
benchmark that silently diverged from the oracle would be a lie.

ISSUE 10 extends the curve to schema ``richnote-bench-scale/2`` with two
scenario columns, both behind the same in-bench digest-parity discipline:

* **multi-core** -- the streamed cohort is spilled once into a columnar
  :class:`~repro.trace.io.TraceShardStore` and replayed through
  :func:`~repro.experiments.pool.run_store_columnar_parallel` twice, at
  ``workers=1`` and ``workers=N``; the point records both wall times and
  the speedup, and raises if any per-user delivery digest differs
  between the two (run only when >= 2 workers are available/requested).
* **multichannel** -- a fixed-size sub-cohort is replayed under the
  three-channel set twice: once on the batched (channel x level) kernel
  path and once with the per-user ``RoundContext`` adapter path forced
  (a :class:`CombinedUtilityModel` subclass flips
  :func:`~repro.runtime.columnar.needs_item_objects`); digests must
  match and the point records the batched-vs-adapter speedup.

Scoring uses the oracle annotations (clicked -> 0.9 else 0.1) rather
than a trained forest: the benchmark isolates the simulation core, and
both paths consume the identical score table so the comparison stays
apples to apples.

Wall-clock here is host time (``time.perf_counter``), outside the
deterministic zone -- telemetry only, never fed back into scheduling.
"""

from __future__ import annotations

import cProfile
import json
import os
import platform
import tempfile
import time
from contextlib import contextmanager
from typing import Iterable, Iterator, Sequence

from repro.core.channels import ChannelSet, builtin_channel
from repro.core.presentations import build_audio_ladder
from repro.core.utility import CombinedUtilityModel, ExponentialAging
from repro.experiments.columnar import build_cohort, fold_outcomes, make_engine
from repro.experiments.config import ExperimentConfig, Method, MethodSpec
from repro.experiments.pool import available_cores, run_store_columnar_parallel
from repro.experiments.runner import UserRunOutcome, UtilityAnnotations, run_user
from repro.runtime.columnar import round_times
from repro.trace.generator import TraceConfig, iter_users
from repro.trace.io import ShardStoreWriter
from repro.trace.records import NotificationRecord

__all__ = ["PROFILE_PHASES", "SCHEMA", "bench_scale", "write_scale_report"]

#: Version tag of the BENCH_scalability.json layout.
SCHEMA = "richnote-bench-scale/2"

#: The cProfile phases ``profile_dir`` dumps, one ``.pstats`` file each.
PROFILE_PHASES = ("cohort_build", "rounds", "merge")


class _AdapterPathModel(CombinedUtilityModel):
    """Stock arithmetic, forced adapter dispatch.

    Being a subclass is the whole point: it flips
    :func:`~repro.runtime.columnar.needs_item_objects`, so the engine
    runs the per-user ``RoundContext`` adapter path the multichannel
    scenario measures against -- while every computed number (and
    therefore every delivery digest) stays identical to the batched leg.
    """


class _PhaseProfiles:
    """Optional per-phase cProfile accumulation across the whole bench.

    Phases are disjoint code regions (cohort build / round loop / result
    merge); each gets one :class:`cProfile.Profile` that accumulates over
    every chunk and population, then dumps one ``.pstats`` file.  When
    disabled (``directory=None``) the context manager is a no-op so the
    timed regions carry zero instrumentation.
    """

    def __init__(self, directory: "str | None") -> None:
        self.directory = directory
        self.profiles = (
            {phase: cProfile.Profile() for phase in PROFILE_PHASES}
            if directory is not None
            else None
        )

    @contextmanager
    def phase(self, name: str):
        if self.profiles is None:
            yield
            return
        profile = self.profiles[name]
        profile.enable()
        try:
            yield
        finally:
            profile.disable()

    def dump(self) -> list[str]:
        if self.profiles is None:
            return []
        os.makedirs(self.directory, exist_ok=True)
        paths = []
        for phase, profile in self.profiles.items():
            path = os.path.join(self.directory, f"bench_scale_{phase}.pstats")
            profile.dump_stats(path)
            paths.append(path)
        return paths


def _oracle_annotations(
    user_records: Iterable[tuple[int, Sequence[NotificationRecord]]],
) -> UtilityAnnotations:
    """Ground-truth content scores for a chunk (no classifier in the loop)."""
    scores = {
        record.notification_id: (0.9 if record.clicked else 0.1)
        for _, records in user_records
        for record in records
    }
    return UtilityAnnotations(scores=scores)


def _chunked(
    pairs: Iterator[tuple[int, list[NotificationRecord]]], size: int
) -> Iterator[list[tuple[int, list[NotificationRecord]]]]:
    chunk: list[tuple[int, list[NotificationRecord]]] = []
    for pair in pairs:
        chunk.append(pair)
        if len(chunk) >= size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


def _scalar_twin(
    pairs: Sequence[tuple[int, list[NotificationRecord]]],
    spec: MethodSpec,
    config: ExperimentConfig,
    annotations: UtilityAnnotations,
    duration_seconds: float,
) -> list[UserRunOutcome]:
    return [
        run_user(
            user_id,
            records,
            spec,
            config,
            annotations,
            duration_seconds,
            digest_deliveries=True,
        )
        for user_id, records in pairs
    ]


def _digests(outcomes: Sequence[UserRunOutcome]) -> list:
    return [outcome.delivery_digest for outcome in outcomes]


def _bench_multi_core(
    store_path: str,
    spec: MethodSpec,
    config: ExperimentConfig,
    duration_seconds: float,
    workers: int,
) -> dict:
    """The multi-core scenario: workers=1 vs workers=N off one shard store.

    Both legs run the identical store-range code
    (:func:`~repro.experiments.pool.run_store_columnar_parallel`), so the
    only variable is process parallelism.  Raises if any per-user
    delivery digest differs -- the speedup is only reported over a
    verified bit-identical computation.
    """
    start = time.perf_counter()
    single = run_store_columnar_parallel(
        store_path, spec, config, duration_seconds,
        workers=1, digest_deliveries=True,
    )
    single_s = time.perf_counter() - start
    start = time.perf_counter()
    multi = run_store_columnar_parallel(
        store_path, spec, config, duration_seconds,
        workers=workers, digest_deliveries=True,
    )
    multi_s = time.perf_counter() - start
    if _digests(single) != _digests(multi):
        raise AssertionError(
            f"multi-core delivery digests diverged from single-core at "
            f"workers={workers}"
        )
    return {
        "workers": workers,
        "single_core_wall_s": round(single_s, 6),
        "multi_core_wall_s": round(multi_s, 6),
        "speedup_vs_single_core": round(single_s / multi_s, 3),
        "digest_parity_users": len(single),
    }


def _bench_multichannel(
    pairs: Sequence[tuple[int, list[NotificationRecord]]],
    spec: MethodSpec,
    config: ExperimentConfig,
    duration_seconds: float,
    ladder,
) -> dict:
    """The multichannel scenario: batched kernels vs the adapter fallback.

    Replays one sub-cohort under the three-channel set twice.  The
    batched leg runs the stacked (channel x level) kernels
    (``engine.selection_path == "batched"``); the adapter leg forces the
    per-user ``RoundContext`` path via :class:`_AdapterPathModel`.  Only
    ``engine.run()`` is timed -- cohort build and the outcome fold are
    common to both legs.  Raises on any digest divergence.
    """
    channels = ChannelSet(
        [
            builtin_channel("push"),
            builtin_channel("inapp"),
            builtin_channel("email"),
        ]
    )
    annotations = _oracle_annotations(pairs)
    aging = (
        ExponentialAging(config.aging_tau_seconds)
        if config.aging_tau_seconds
        else None
    )

    columns = build_cohort(pairs, annotations, ladder)
    engine = make_engine(
        columns, spec, config, duration_seconds, channels=channels
    )
    batched_path = engine.selection_path
    start = time.perf_counter()
    result = engine.run()
    batched_s = time.perf_counter() - start
    batched = fold_outcomes(columns, result, digest_deliveries=True)

    adapter_columns = build_cohort(
        pairs, annotations, ladder, materialize_items=True
    )
    adapter_engine = make_engine(
        adapter_columns,
        spec,
        config,
        duration_seconds,
        channels=channels,
        utility_model=_AdapterPathModel(aging=aging),
    )
    adapter_path = adapter_engine.selection_path
    start = time.perf_counter()
    adapter_result = adapter_engine.run()
    adapter_s = time.perf_counter() - start
    adapter = fold_outcomes(adapter_columns, adapter_result, digest_deliveries=True)

    if _digests(batched) != _digests(adapter):
        raise AssertionError(
            "multichannel batched/adapter delivery digests diverged"
        )
    return {
        "sampled_users": len(pairs),
        "channels": list(channels.names),
        "kernel_path": batched_path,
        "fallback_path": adapter_path,
        "batched_wall_s": round(batched_s, 6),
        "adapter_wall_s": round(adapter_s, 6),
        "speedup": round(adapter_s / batched_s, 3),
        "digest_parity_users": len(pairs),
    }


def bench_scale(
    user_counts: Sequence[int],
    *,
    seed: int = 97,
    scalar_sample: int = 150,
    parity_sample: int = 25,
    chunk_users: int = 20_000,
    spec: MethodSpec | None = None,
    workers: int | None = None,
    multichannel_sample: int = 1000,
    profile_dir: "str | None" = None,
) -> dict:
    """Measure users/sec/core at each population size in ``user_counts``.

    For every count the columnar engine replays the whole streamed
    cohort (in ``chunk_users``-sized chunks so peak memory stays one
    chunk); the scalar loop replays the first ``scalar_sample`` users
    with notifications and is extrapolated to a rate.  The first
    ``parity_sample`` users are replayed on *both* paths and their
    delivery digests compared -- the speedup is only reported over a
    verified-identical computation.

    ``workers`` (default: the CPU-affinity core count) adds the
    multi-core scenario when >= 2: the streamed cohort spills once into
    a temporary shard store and is replayed at ``workers=1`` vs
    ``workers=N``.  ``multichannel_sample`` > 0 adds the multichannel
    batched-vs-adapter scenario on that many head users.
    ``profile_dir`` dumps one accumulated cProfile ``.pstats`` per
    single-core phase (:data:`PROFILE_PHASES`); the profiler distorts
    wall times, so treat profiled runs as artifacts, not measurements.

    Returns the ``BENCH_scalability.json`` payload (see :data:`SCHEMA`).
    """
    if not user_counts:
        raise ValueError("user_counts must be non-empty")
    if scalar_sample < 1 or parity_sample < 0:
        raise ValueError("sample sizes must be positive")
    if multichannel_sample < 0:
        raise ValueError("multichannel_sample must be >= 0")
    spec = spec or MethodSpec(Method.RICHNOTE)
    config = ExperimentConfig(seed=seed)
    trace_config = TraceConfig(seed=seed)
    duration_seconds = trace_config.duration_hours * 3600.0
    ladder = build_audio_ladder(config.presentation_spec)
    cores_available = available_cores()
    workers = workers if workers is not None else cores_available
    profiles = _PhaseProfiles(profile_dir or None)
    wall_start = time.perf_counter()

    curve: list[dict] = []
    cores_used = 1
    for count in sorted(user_counts):
        build_s = 0.0
        rounds_s = 0.0
        merge_s = 0.0
        generate_s = 0.0
        store_write_s = 0.0
        users_run = 0
        records_run = 0
        parity_checked = 0
        head: list[tuple[int, list[NotificationRecord]]] = []
        mc_head: list[tuple[int, list[NotificationRecord]]] = []
        with tempfile.TemporaryDirectory(prefix="bench-scale-") as tmp:
            store_path = os.path.join(tmp, "store")
            # The store is only needed for the multi-core legs; spill it
            # while streaming so the cohort is still never materialized.
            writer = (
                ShardStoreWriter(store_path) if workers >= 2 else None
            )
            stream = iter_users(count, trace_config)
            gen_start = time.perf_counter()
            for chunk in _chunked(
                ((u, r) for u, r in stream if r), chunk_users
            ):
                generate_s += time.perf_counter() - gen_start
                if len(head) < scalar_sample:
                    head.extend(chunk[: scalar_sample - len(head)])
                if len(mc_head) < multichannel_sample:
                    mc_head.extend(chunk[: multichannel_sample - len(mc_head)])
                if writer is not None:
                    start = time.perf_counter()
                    for user_id, records in chunk:
                        writer.append(user_id, records)
                    store_write_s += time.perf_counter() - start
                annotations = _oracle_annotations(chunk)
                start = time.perf_counter()
                with profiles.phase("cohort_build"):
                    columns = build_cohort(chunk, annotations, ladder)
                    engine = make_engine(
                        columns, spec, config, duration_seconds
                    )
                build_s += time.perf_counter() - start
                start = time.perf_counter()
                with profiles.phase("rounds"):
                    result = engine.run()
                rounds_s += time.perf_counter() - start
                start = time.perf_counter()
                with profiles.phase("merge"):
                    outcomes = fold_outcomes(
                        columns,
                        result,
                        digest_deliveries=parity_checked < parity_sample,
                    )
                merge_s += time.perf_counter() - start
                users_run += len(chunk)
                records_run += columns.cohort.n_items
                if parity_checked < parity_sample:
                    take = min(parity_sample - parity_checked, len(chunk))
                    twins = _scalar_twin(
                        chunk[:take], spec, config, annotations,
                        duration_seconds,
                    )
                    for outcome, twin in zip(outcomes[:take], twins):
                        if outcome.delivery_digest != twin.delivery_digest:
                            raise AssertionError(
                                "columnar/scalar delivery digests diverged "
                                f"for user {twin.metrics.user_id} at "
                                f"{count} users"
                            )
                    parity_checked += take
                gen_start = time.perf_counter()
            generate_s += time.perf_counter() - gen_start
            if not users_run:
                raise ValueError(f"population of {count} produced no records")

            multi_core = None
            if writer is not None:
                writer.close()
                multi_core = _bench_multi_core(
                    store_path, spec, config, duration_seconds, workers
                )
                multi_core["store_write_s"] = round(store_write_s, 6)
                cores_used = max(cores_used, workers)

        rounds = len(round_times(config.round_seconds, duration_seconds))
        columnar_s = build_s + rounds_s + merge_s

        sample = head[:scalar_sample]
        annotations = _oracle_annotations(sample)
        start = time.perf_counter()
        _scalar_twin(sample, spec, config, annotations, duration_seconds)
        scalar_s = time.perf_counter() - start

        multichannel = None
        if multichannel_sample > 0:
            multichannel = _bench_multichannel(
                mc_head[:multichannel_sample], spec, config,
                duration_seconds, ladder,
            )

        columnar_rate = users_run / columnar_s
        scalar_rate = len(sample) / scalar_s
        point = {
            # Requested population vs users that actually had records
            # (the gate keys on ``population``: a 10k request yields
            # slightly fewer non-empty users).
            "population": count,
            "users": users_run,
            "records": records_run,
            "rounds": rounds,
            "generate_s": round(generate_s, 6),
            "cores_used": workers if multi_core is not None else 1,
            "columnar": {
                "wall_s": round(columnar_s, 6),
                "users_per_sec_per_core": round(columnar_rate, 3),
                "phases": {
                    "cohort_build_s": round(build_s, 6),
                    "rounds_s": round(rounds_s, 6),
                    "merge_s": round(merge_s, 6),
                },
            },
            "scalar": {
                "sampled_users": len(sample),
                "wall_s": round(scalar_s, 6),
                "users_per_sec_per_core": round(scalar_rate, 3),
            },
            "parity_checked_users": parity_checked,
            "speedup": round(columnar_rate / scalar_rate, 3),
        }
        if multi_core is not None:
            point["multi_core"] = multi_core
        if multichannel is not None:
            point["multichannel"] = multichannel
        curve.append(point)

    profile_paths = profiles.dump()
    payload = {
        "schema": SCHEMA,
        "platform": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "meta": {
            "seed": seed,
            "method": spec.label,
            "scoring": "oracle",
            "chunk_users": chunk_users,
            "cores_used": cores_used,
            "cores_available": cores_available,
            "workers_requested": workers,
            "multichannel_sample": multichannel_sample,
        },
        "curve": curve,
        "totals": {
            "populations": len(curve),
            "wall_s": round(time.perf_counter() - wall_start, 6),
        },
    }
    if profile_paths:
        payload["meta"]["profile_pstats"] = profile_paths
    return payload


def write_scale_report(path, payload: dict) -> dict:
    """Serialize a :func:`bench_scale` payload (BENCH_scalability.json)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return payload
