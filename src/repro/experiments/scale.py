"""Population-scale throughput benchmark: columnar core vs per-user loop.

ISSUE 8's acceptance gate is quantitative: the columnar engine must
replay >= 5x more users per second per core than the scalar object-graph
loop at a 10k-user population, and ``BENCH_scalability.json`` must
record a users/sec/core curve at 10k and 100k users (1M as an opt-in
smoke).  This module is the measurement: it streams a cohort out of
:func:`repro.trace.generator.iter_users` (never materializing the full
population), replays it in bounded-memory chunks through
:func:`repro.experiments.columnar.run_cohort`, replays a user sample
through the scalar :func:`repro.experiments.runner.run_user` twin, and
asserts delivery-digest parity on the overlap before reporting speed --
a fast benchmark that silently diverged from the oracle would be a lie.

Scoring uses the oracle annotations (clicked -> 0.9 else 0.1) rather
than a trained forest: the benchmark isolates the simulation core, and
both paths consume the identical score table so the comparison stays
apples to apples.

Wall-clock here is host time (``time.perf_counter``), outside the
deterministic zone -- telemetry only, never fed back into scheduling.
"""

from __future__ import annotations

import json
import os
import platform
import time
from typing import Iterable, Iterator, Sequence

from repro.core.presentations import build_audio_ladder
from repro.experiments.columnar import build_cohort, run_cohort
from repro.experiments.config import ExperimentConfig, Method, MethodSpec
from repro.experiments.runner import UserRunOutcome, UtilityAnnotations, run_user
from repro.runtime.columnar import round_times
from repro.trace.generator import TraceConfig, iter_users
from repro.trace.records import NotificationRecord

__all__ = ["SCHEMA", "bench_scale", "write_scale_report"]

#: Version tag of the BENCH_scalability.json layout.
SCHEMA = "richnote-bench-scale/1"


def _oracle_annotations(
    user_records: Iterable[tuple[int, Sequence[NotificationRecord]]],
) -> UtilityAnnotations:
    """Ground-truth content scores for a chunk (no classifier in the loop)."""
    scores = {
        record.notification_id: (0.9 if record.clicked else 0.1)
        for _, records in user_records
        for record in records
    }
    return UtilityAnnotations(scores=scores)


def _chunked(
    pairs: Iterator[tuple[int, list[NotificationRecord]]], size: int
) -> Iterator[list[tuple[int, list[NotificationRecord]]]]:
    chunk: list[tuple[int, list[NotificationRecord]]] = []
    for pair in pairs:
        chunk.append(pair)
        if len(chunk) >= size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


def _scalar_twin(
    pairs: Sequence[tuple[int, list[NotificationRecord]]],
    spec: MethodSpec,
    config: ExperimentConfig,
    annotations: UtilityAnnotations,
    duration_seconds: float,
) -> list[UserRunOutcome]:
    return [
        run_user(
            user_id,
            records,
            spec,
            config,
            annotations,
            duration_seconds,
            digest_deliveries=True,
        )
        for user_id, records in pairs
    ]


def bench_scale(
    user_counts: Sequence[int],
    *,
    seed: int = 97,
    scalar_sample: int = 150,
    parity_sample: int = 25,
    chunk_users: int = 20_000,
    spec: MethodSpec | None = None,
) -> dict:
    """Measure users/sec/core at each population size in ``user_counts``.

    For every count the columnar engine replays the whole streamed
    cohort (in ``chunk_users``-sized chunks so peak memory stays one
    chunk); the scalar loop replays the first ``scalar_sample`` users
    with notifications and is extrapolated to a rate.  The first
    ``parity_sample`` users are replayed on *both* paths and their
    delivery digests compared -- the speedup is only reported over a
    verified-identical computation.

    Returns the ``BENCH_scalability.json`` payload (see :data:`SCHEMA`).
    """
    if not user_counts:
        raise ValueError("user_counts must be non-empty")
    if scalar_sample < 1 or parity_sample < 0:
        raise ValueError("sample sizes must be positive")
    spec = spec or MethodSpec(Method.RICHNOTE)
    config = ExperimentConfig(seed=seed)
    trace_config = TraceConfig(seed=seed)
    duration_seconds = trace_config.duration_hours * 3600.0
    ladder = build_audio_ladder(config.presentation_spec)
    wall_start = time.perf_counter()

    curve: list[dict] = []
    for count in sorted(user_counts):
        columnar_s = 0.0
        generate_s = 0.0
        users_run = 0
        records_run = 0
        rounds = 0
        parity_checked = 0
        head: list[tuple[int, list[NotificationRecord]]] = []
        stream = iter_users(count, trace_config)
        gen_start = time.perf_counter()
        for chunk in _chunked(
            ((u, r) for u, r in stream if r), chunk_users
        ):
            generate_s += time.perf_counter() - gen_start
            if len(head) < scalar_sample:
                head.extend(chunk[: scalar_sample - len(head)])
            annotations = _oracle_annotations(chunk)
            start = time.perf_counter()
            columns = build_cohort(chunk, annotations, ladder)
            outcomes = run_cohort(
                columns,
                spec,
                config,
                duration_seconds,
                digest_deliveries=parity_checked < parity_sample,
            )
            columnar_s += time.perf_counter() - start
            users_run += len(chunk)
            records_run += columns.cohort.n_items
            if parity_checked < parity_sample:
                take = min(parity_sample - parity_checked, len(chunk))
                twins = _scalar_twin(
                    chunk[:take], spec, config, annotations, duration_seconds
                )
                for outcome, twin in zip(outcomes[:take], twins):
                    if outcome.delivery_digest != twin.delivery_digest:
                        raise AssertionError(
                            "columnar/scalar delivery digests diverged for "
                            f"user {twin.metrics.user_id} at {count} users"
                        )
                parity_checked += take
            gen_start = time.perf_counter()
        generate_s += time.perf_counter() - gen_start
        if not users_run:
            raise ValueError(f"population of {count} produced no records")
        rounds = len(round_times(config.round_seconds, duration_seconds))

        sample = head[:scalar_sample]
        annotations = _oracle_annotations(sample)
        start = time.perf_counter()
        _scalar_twin(sample, spec, config, annotations, duration_seconds)
        scalar_s = time.perf_counter() - start

        columnar_rate = users_run / columnar_s
        scalar_rate = len(sample) / scalar_s
        curve.append(
            {
                # Requested population vs users that actually had records
                # (the gate keys on ``population``: a 10k request yields
                # slightly fewer non-empty users).
                "population": count,
                "users": users_run,
                "records": records_run,
                "rounds": rounds,
                "generate_s": round(generate_s, 6),
                "columnar": {
                    "wall_s": round(columnar_s, 6),
                    "users_per_sec_per_core": round(columnar_rate, 3),
                },
                "scalar": {
                    "sampled_users": len(sample),
                    "wall_s": round(scalar_s, 6),
                    "users_per_sec_per_core": round(scalar_rate, 3),
                },
                "parity_checked_users": parity_checked,
                "speedup": round(columnar_rate / scalar_rate, 3),
            }
        )

    return {
        "schema": SCHEMA,
        "platform": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "meta": {
            "seed": seed,
            "method": spec.label,
            "scoring": "oracle",
            "chunk_users": chunk_users,
            "cores_used": 1,
            "cores_available": os.cpu_count() or 1,
        },
        "curve": curve,
        "totals": {
            "populations": len(curve),
            "wall_s": round(time.perf_counter() - wall_start, 6),
        },
    }


def write_scale_report(path, payload: dict) -> dict:
    """Serialize a :func:`bench_scale` payload (BENCH_scalability.json)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return payload
