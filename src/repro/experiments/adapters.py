"""Adapters between trace records and scheduler content items."""

from __future__ import annotations

from repro.core.content import ContentItem, ContentKind, PresentationLadder
from repro.pubsub.topics import TopicKind
from repro.trace.records import NotificationRecord

_KIND_MAP = {
    TopicKind.FRIEND: ContentKind.FRIEND_FEED,
    TopicKind.ARTIST: ContentKind.ALBUM_RELEASE,
    TopicKind.PLAYLIST: ContentKind.PLAYLIST_UPDATE,
}


def record_to_item(
    record: NotificationRecord, ladder: PresentationLadder
) -> ContentItem:
    """Wrap a trace record as a schedulable content item.

    The record's feature fields are copied into ``item.metadata`` so the
    serving-time feature extractor
    (:meth:`repro.ml.dataset.FeatureExtractor.features_for_item`) can
    rebuild the exact training vector.  Ground-truth labels travel along
    for evaluation only.
    """
    return ContentItem(
        item_id=record.notification_id,
        user_id=record.recipient_id,
        kind=_KIND_MAP[record.kind],
        created_at=record.timestamp,
        ladder=ladder,
        clicked=record.clicked,
        click_time=record.click_time,
        metadata={
            "kind": record.kind.value,
            "sender_id": record.sender_id,
            "track_id": record.track_id,
            "album_id": record.album_id,
            "artist_id": record.artist_id,
            "track_popularity": record.track_popularity,
            "album_popularity": record.album_popularity,
            "artist_popularity": record.artist_popularity,
            "tie_strength": record.tie_strength,
            "is_friend": record.is_friend,
            "favorite_genre": record.favorite_genre,
            "hovered": record.hovered,
        },
    )
