"""Whole-system live simulation: publications -> broker -> schedulers.

The figure benchmarks replay pre-labelled per-user traces (as the paper's
evaluation does).  This module runs the *deployed* composition instead,
end to end inside one discrete-event simulation:

1. publications fire as timed events and enter the topic broker
   (optionally behind the broker-side capacity selector of
   :mod:`repro.pubsub.capacity` -- the real-time overload control RichNote
   is positioned against);
2. at every round boundary the broker flushes; matched notifications are
   labelled with synthetic mouse activity (ground truth for metrics only),
   scored *online* by a previously trained content-utility classifier
   (:class:`repro.core.utility.LearnedContentUtility` -- train on history,
   serve live), wrapped with their presentation ladder and enqueued to the
   recipient's scheduler;
3. each user's round-based scheduler selects and delivers under its own
   budgets, connectivity and battery.

This is the integration a downstream adopter would deploy; the
:class:`SystemReport` surfaces broker-side and user-side metrics together.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.presentations import build_audio_ladder
from repro.core.utility import CombinedUtilityModel, ExponentialAging, LearnedContentUtility
from repro.core.budgets import DataBudget, EnergyBudget
from repro.experiments.adapters import record_to_item
from repro.experiments.config import ExperimentConfig, Method, MethodSpec
from repro.experiments.metrics import UserMetrics, aggregate, compute_user_metrics
from repro.experiments.runner import _build_device, _forest_factory
from repro.ml.dataset import FeatureExtractor, build_training_set
from repro.pubsub.broker import Broker, DeliveryMode
from repro.pubsub.capacity import CapacityConfig, CapacityLimitedBroker
from repro.runtime import registry
from repro.runtime.loop import RoundLoop
from repro.runtime.types import Delivery
from repro.sim.engine import Simulator
from repro.trace.entities import Catalog
from repro.trace.generator import TraceConfig, TraceGenerator, Workload
from repro.trace.interactions import InteractionSimulator
from repro.trace.records import NotificationRecord
from repro.trace.socialgraph import SocialGraph


@dataclass(frozen=True)
class SystemConfig:
    """Knobs of the live-system run."""

    experiment: ExperimentConfig = field(default_factory=ExperimentConfig)
    method: MethodSpec = field(default_factory=lambda: MethodSpec(Method.RICHNOTE))
    #: Per-round broker fan-out cap; None disables broker-side filtering.
    broker_capacity_per_round: int | None = None
    user_inbox_capacity: int = 200


@dataclass
class SystemReport:
    """Joint broker-side and user-side outcome of a run."""

    publications: int
    notifications_matched: int
    notifications_dropped_at_broker: int
    records: list[NotificationRecord]
    per_user: dict[int, UserMetrics]
    deliveries: list[Delivery]

    @property
    def aggregate(self):
        return aggregate(list(self.per_user.values()))

    @property
    def broker_drop_rate(self) -> float:
        if self.notifications_matched == 0:
            return 0.0
        return self.notifications_dropped_at_broker / self.notifications_matched


class SystemSimulation:
    """Composes generator, broker, classifier and schedulers in one DES."""

    def __init__(
        self,
        catalog: Catalog,
        graph: SocialGraph,
        trace_config: TraceConfig,
        system_config: SystemConfig | None = None,
        training_workload: Workload | None = None,
    ) -> None:
        self.catalog = catalog
        self.graph = graph
        self.trace_config = trace_config
        self.config = system_config or SystemConfig()
        self._generator = TraceGenerator(catalog, graph, trace_config)
        # Train the content-utility model on history: a separate workload
        # from the same world but a shifted seed (yesterday's logs).
        if training_workload is None:
            import dataclasses

            history_config = dataclasses.replace(
                trace_config, seed=trace_config.seed + 1000
            )
            training_workload = TraceGenerator(
                catalog, graph, history_config
            ).generate()
        extractor = FeatureExtractor()
        x, y = build_training_set(training_workload.records, extractor)
        forest = _forest_factory(self.config.experiment.seed).fit(x, y)
        self._scorer = LearnedContentUtility(forest, extractor)

    # -- wiring -----------------------------------------------------------------

    def _build_schedulers(
        self, user_ids: list[int], duration: float
    ) -> dict[int, RoundLoop]:
        """One round loop per user, policies resolved through the registry."""
        config = self.config.experiment
        spec = self.config.method
        aging = (
            ExponentialAging(config.aging_tau_seconds)
            if config.aging_tau_seconds
            else None
        )
        schedulers: dict[int, RoundLoop] = {}
        for user_id in user_ids:
            device = _build_device(user_id, config, duration)
            data = DataBudget(theta_bytes=config.theta_bytes_per_round)
            energy = EnergyBudget(kappa_joules=config.kappa_joules_per_round)
            utility_model = CombinedUtilityModel(aging=aging)
            schedulers[user_id] = RoundLoop(
                device, data, energy, utility_model,
                policy=registry.create(
                    spec.policy_name, **spec.policy_params(config)
                ),
            )
        return schedulers

    # -- the run ----------------------------------------------------------------

    def run(self) -> SystemReport:
        subscriptions = self._generator.build_subscriptions()
        inner_broker = Broker(subscriptions, default_mode=DeliveryMode.ROUND)
        capacity_broker = None
        if self.config.broker_capacity_per_round is not None:
            capacity_broker = CapacityLimitedBroker(
                inner_broker,
                CapacityConfig(
                    broker_capacity=self.config.broker_capacity_per_round,
                    default_user_capacity=self.config.user_inbox_capacity,
                ),
            )

        labeller = InteractionSimulator(
            catalog=self.catalog,
            graph=self.graph,
            interest_model=self._generator.interest_model,
        )
        ladder = build_audio_ladder(self.config.experiment.presentation_spec)
        duration = self.trace_config.duration_hours * 3600.0
        user_ids = sorted(self.catalog.users)
        schedulers = self._build_schedulers(user_ids, duration)

        records: list[NotificationRecord] = []
        deliveries: list[Delivery] = []
        dropped = 0

        def ingest(notification) -> None:
            nonlocal dropped
            record = labeller.label(notification)
            records.append(record)
            item = record_to_item(record, ladder)
            self._scorer.annotate([item])
            schedulers[record.recipient_id].enqueue(item)

        simulator = Simulator()
        publications = self._generator.generate_publications()
        for publication in publications:
            simulator.schedule_at(
                publication.timestamp,
                lambda sim, p=publication: (
                    capacity_broker.publish(p)
                    if capacity_broker
                    else inner_broker.publish(p)
                ),
            )

        round_seconds = self.config.experiment.round_seconds

        def round_tick(sim: Simulator) -> None:
            nonlocal dropped
            if capacity_broker is not None:
                selection = capacity_broker.flush_round()
                dropped += len(selection.dropped)
                released = selection.delivered
            else:
                released = inner_broker.flush()
            for notification in released:
                ingest(notification)
            for scheduler in schedulers.values():
                result = scheduler.run_round(sim.now, round_seconds)
                deliveries.extend(result.deliveries)

        simulator.schedule_periodic(
            round_seconds, round_tick, start=round_seconds, until=duration + 1.0
        )
        simulator.run(until=duration + 2.0)

        by_user: dict[int, list[NotificationRecord]] = {u: [] for u in user_ids}
        for record in records:
            by_user[record.recipient_id].append(record)
        deliveries_by_user: dict[int, list[Delivery]] = {u: [] for u in user_ids}
        for delivery in deliveries:
            deliveries_by_user[delivery.user_id].append(delivery)
        per_user = {
            user_id: compute_user_metrics(
                user_id, by_user[user_id], deliveries_by_user[user_id]
            )
            for user_id in user_ids
            if by_user[user_id]
        }
        return SystemReport(
            publications=len(publications),
            notifications_matched=inner_broker.stats.notifications,
            notifications_dropped_at_broker=dropped,
            records=records,
            per_user=per_user,
            deliveries=deliveries,
        )
