"""Stage-timed benchmark telemetry for sweep-scale execution.

The execution engine's stages -- ``train`` (content-utility classifier),
``shard`` (per-user record partitioning + pool spin-up), ``simulate``
(worker replay) and ``aggregate`` (parent-side folding) -- are timed with
``time.perf_counter`` and collected into a :class:`SweepTelemetry` that
serializes to the repo's machine-readable perf trajectory
(``BENCH_sweep.json``).

``perf_counter`` deliberately measures *host* wall-clock, not simulation
time: telemetry lives outside the deterministic zone (it never feeds back
into scheduling decisions), which is why this module is exempt from
richlint's RL203 wall-clock rule by construction -- nothing here touches
``time.time`` or the simulated ``now``.
"""

from __future__ import annotations

import json
import platform
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["CellTiming", "StageTimer", "SweepTelemetry"]

#: Version tag of the BENCH_sweep.json layout.  /2 records the simulated
#: population in ``totals.users`` (and stops pinning benches at 10 users).
SCHEMA = "richnote-bench-sweep/2"


class StageTimer:
    """Accumulates named wall-clock stage durations (seconds).

    Re-entering a stage name adds to its running total, so scattered
    slices of the same logical stage (e.g. per-batch ``aggregate`` folds)
    collapse into one number.
    """

    def __init__(self) -> None:
        self.stages: dict[str, float] = {}

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.stages[name] = self.stages.get(name, 0.0) + elapsed

    def add(self, name: str, seconds: float) -> None:
        """Fold an externally measured duration into a stage total."""
        self.stages[name] = self.stages.get(name, 0.0) + seconds


@dataclass
class CellTiming:
    """Per-(policy, budget) cell timings of one sweep."""

    label: str
    budget_mb: float
    users: int = 0
    timer: StageTimer = field(default_factory=StageTimer)

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "budget_mb": self.budget_mb,
            "users": self.users,
            "stages_s": {
                name: round(seconds, 6)
                for name, seconds in sorted(self.timer.stages.items())
            },
        }


class SweepTelemetry:
    """Everything BENCH_sweep.json records about one sweep execution.

    Sweep-level stages (``train``, ``shard``) happen once per sweep on the
    shared pool; ``simulate`` and ``aggregate`` are recorded per cell.
    ``meta`` carries free-form context (worker count, batch count, engine
    name) set by the executor.
    """

    def __init__(self) -> None:
        self.timer = StageTimer()
        self.cells: dict[tuple[str, float], CellTiming] = {}
        self.meta: dict = {}
        self._wall_start = time.perf_counter()

    def cell(self, label: str, budget_mb: float) -> CellTiming:
        """The (created-on-demand) timing row of one grid cell."""
        key = (label, budget_mb)
        if key not in self.cells:
            self.cells[key] = CellTiming(label=label, budget_mb=budget_mb)
        return self.cells[key]

    def to_dict(self) -> dict:
        return {
            "schema": SCHEMA,
            "platform": {
                "python": platform.python_version(),
                "machine": platform.machine(),
            },
            "meta": dict(self.meta),
            "stages_s": {
                name: round(seconds, 6)
                for name, seconds in sorted(self.timer.stages.items())
            },
            "cells": [
                self.cells[key].to_dict() for key in sorted(self.cells)
            ],
            "totals": {
                "cells": len(self.cells),
                "users": max(
                    (cell.users for cell in self.cells.values()), default=0
                ),
                "wall_s": round(time.perf_counter() - self._wall_start, 6),
            },
        }

    def write(self, path) -> dict:
        """Serialize to ``path`` (the ``BENCH_sweep.json`` artifact)."""
        payload = self.to_dict()
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        return payload
