"""Parallel per-user experiment execution.

Section V-C: "while we run simulations using 10K users, our solution can
potentially scale to a much larger user base using a backend parallel
platform since our solution can work in rounds and independently for each
user."  This module is that backend: users shard perfectly (no shared
state between per-user round loops), so the runner fans user replays out to
a process pool and aggregates the returned metrics.

Only the records and utility scores of each worker's users cross the
process boundary -- the workload object itself stays in the parent.  Each
worker rebuilds its user's :class:`repro.runtime.loop.RoundLoop` locally,
resolving the policy by :attr:`MethodSpec.policy_name` through
:mod:`repro.runtime.registry`, so only the (picklable) registry key and
parameters travel, never a policy instance.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Sequence

from repro.experiments.config import ExperimentConfig, MethodSpec
from repro.experiments.metrics import aggregate
from repro.experiments.runner import (
    ExperimentResult,
    UserRunOutcome,
    UtilityAnnotations,
    run_user,
)
from repro.trace.generator import Workload
from repro.trace.records import NotificationRecord


def _run_user_task(
    args: tuple[
        int,
        list[NotificationRecord],
        MethodSpec,
        ExperimentConfig,
        dict[int, float],
        float,
    ]
) -> UserRunOutcome:
    """Process-pool entry point: replay one user."""
    user_id, records, spec, config, scores, duration = args
    annotations = UtilityAnnotations(scores=scores)
    return run_user(user_id, records, spec, config, annotations, duration)


def run_experiment_parallel(
    workload: Workload,
    spec: MethodSpec,
    config: ExperimentConfig,
    annotations: UtilityAnnotations | None = None,
    user_ids: Sequence[int] | None = None,
    max_workers: int | None = None,
) -> ExperimentResult:
    """Parallel equivalent of :func:`repro.experiments.runner.run_experiment`.

    Deterministic: results are identical to the sequential runner (each
    user's simulation is seeded independently of scheduling order); only
    wall-clock changes.
    """
    if annotations is None:
        annotations = UtilityAnnotations.train(
            workload, seed=config.seed, oracle=config.use_oracle_utility
        )
    duration = workload.config.duration_hours * 3600.0
    users = list(user_ids) if user_ids is not None else workload.user_ids()
    by_user: dict[int, list[NotificationRecord]] = {u: [] for u in users}
    for record in workload.records:
        if record.recipient_id in by_user:
            by_user[record.recipient_id].append(record)

    tasks = []
    for user_id in users:
        records = by_user[user_id]
        if not records:
            continue
        scores = {
            r.notification_id: annotations.scores[r.notification_id]
            for r in records
        }
        tasks.append((user_id, records, spec, config, scores, duration))
    if not tasks:
        raise ValueError("no users with notifications to simulate")

    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        outcomes = list(pool.map(_run_user_task, tasks, chunksize=4))

    return ExperimentResult(
        spec=spec,
        config=config,
        aggregate=aggregate([o.metrics for o in outcomes]),
        per_user=outcomes,
    )
