"""Parallel per-user experiment execution (one-shot convenience seam).

Section V-C: "while we run simulations using 10K users, our solution can
potentially scale to a much larger user base using a backend parallel
platform since our solution can work in rounds and independently for each
user."  The backend lives in :mod:`repro.experiments.pool`: a persistent
:class:`~repro.experiments.pool.ExperimentPool` whose workers receive the
per-user record shards and utility score map once, through the pool
initializer, and then replay (policy, budget) cells against the resident
shards.

This module keeps the original one-shot entry point:
:func:`run_experiment_parallel` spins a pool up for a single cell and
tears it down again.  For sweeps, use
:func:`repro.experiments.pool.sweep_budgets_parallel`, which amortizes the
pool over the whole grid.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.config import ExperimentConfig, MethodSpec
from repro.experiments.pool import ExperimentPool
from repro.experiments.runner import ExperimentResult, UtilityAnnotations
from repro.trace.generator import Workload


def run_experiment_parallel(
    workload: Workload,
    spec: MethodSpec,
    config: ExperimentConfig,
    annotations: UtilityAnnotations | None = None,
    user_ids: Sequence[int] | None = None,
    max_workers: int | None = None,
) -> ExperimentResult:
    """Parallel equivalent of :func:`repro.experiments.runner.run_experiment`.

    Deterministic: results are identical to the sequential runner (each
    user's simulation is seeded independently of scheduling order, and
    the pool folds outcomes in the sequential user order); only
    wall-clock changes.
    """
    with ExperimentPool(
        workload,
        annotations=annotations,
        user_ids=user_ids,
        max_workers=max_workers,
        base_config=config,
    ) as pool:
        return pool.run_cell(spec, config)
