"""Deprecated home of :func:`run_experiment_parallel` (moved to ``pool``).

The one-shot parallel entry point now lives with the engine it wraps:
:func:`repro.experiments.pool.run_experiment_parallel`.  This module
keeps the legacy import path working with a :class:`DeprecationWarning`,
matching the established shim pattern (``core.scheduler``,
``core.baselines``).
"""

from __future__ import annotations

import warnings
from typing import Sequence

from repro.experiments.config import ExperimentConfig, MethodSpec
from repro.experiments.pool import (
    run_experiment_parallel as _run_experiment_parallel,
)
from repro.experiments.runner import ExperimentResult, UtilityAnnotations
from repro.trace.generator import Workload

__all__ = ["run_experiment_parallel"]


def run_experiment_parallel(
    workload: Workload,
    spec: MethodSpec,
    config: ExperimentConfig,
    annotations: UtilityAnnotations | None = None,
    user_ids: Sequence[int] | None = None,
    max_workers: int | None = None,
) -> ExperimentResult:
    """Deprecated: use :func:`repro.experiments.pool.run_experiment_parallel`."""
    warnings.warn(
        "repro.experiments.parallel.run_experiment_parallel is deprecated; "
        "import it from repro.experiments.pool instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return _run_experiment_parallel(
        workload,
        spec,
        config,
        annotations=annotations,
        user_ids=user_ids,
        max_workers=max_workers,
    )
