"""Per-figure data producers for the paper's evaluation section.

Each function returns plain data structures (series keyed by method and
budget) that the benchmark harness prints as the paper's rows.  Figures:

* Fig. 3  (a) delivery ratio, (b) data delivered, (c) recall, (d) precision
  -- methods x weekly budgets;
* Fig. 4  (a) total utility, (b) utility among clicked, (c) download
  energy, (d) queuing delay -- same grid;
* Fig. 5  (a) RichNote vs every fixed presentation level, (b) presentation
  mix vs budget, (c) presentation mix with the WIFI/CELL/OFF Markov model,
  (d) utility across user-volume categories;
* Section V-D5: sensitivity to the Lyapunov control knob V.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

from repro.experiments.config import (
    PAPER_BASELINE_LEVELS,
    PAPER_BUDGET_SWEEP_MB,
    ExperimentConfig,
    Method,
    MethodSpec,
    NetworkMode,
)
from repro.experiments.runner import (
    ExperimentResult,
    UtilityAnnotations,
    run_experiment,
    sweep_budgets,
)
from repro.trace.generator import Workload


@dataclass
class FigureSeries:
    """One metric as series[method_label][budget] = value."""

    figure: str
    metric: str
    budgets_mb: tuple[float, ...]
    series: dict[str, dict[float, float]] = field(default_factory=dict)

    def row(self, label: str) -> list[float]:
        return [self.series[label][budget] for budget in self.budgets_mb]


def paper_method_specs() -> list[MethodSpec]:
    """RichNote plus FIFO/UTIL at the paper's fixed levels (5 s, 10 s)."""
    specs = [MethodSpec(Method.RICHNOTE)]
    for level in PAPER_BASELINE_LEVELS:
        specs.append(MethodSpec(Method.FIFO, fixed_level=level))
        specs.append(MethodSpec(Method.UTIL, fixed_level=level))
    return specs


def _series_from_grid(
    figure: str,
    metric: str,
    grid: dict[tuple[str, float], ExperimentResult],
    budgets: Sequence[float],
    extract,
) -> FigureSeries:
    out = FigureSeries(figure=figure, metric=metric, budgets_mb=tuple(budgets))
    for (label, budget), result in grid.items():
        out.series.setdefault(label, {})[budget] = extract(result)
    return out


def figure3_and_4(
    workload: Workload,
    budgets_mb: Sequence[float] = PAPER_BUDGET_SWEEP_MB,
    base_config: ExperimentConfig | None = None,
    annotations: UtilityAnnotations | None = None,
    user_ids: Sequence[int] | None = None,
    specs: Sequence[MethodSpec] | None = None,
    grid: dict[tuple[str, float], ExperimentResult] | None = None,
) -> dict[str, FigureSeries]:
    """The shared Figures 3-4 sweep; returns all eight metric series.

    Pass a precomputed ``grid`` (e.g. from
    :func:`repro.experiments.pool.sweep_budgets_parallel`) to render
    series from an already-executed sweep instead of running one here.
    """
    specs = list(specs) if specs is not None else paper_method_specs()
    if grid is None:
        grid = sweep_budgets(
            workload, specs, budgets_mb, base_config, annotations, user_ids
        )
    metric_map = {
        "fig3a_delivery_ratio": lambda r: r.aggregate.delivery_ratio,
        "fig3b_delivered_mb": lambda r: r.aggregate.delivered_mb,
        "fig3c_recall": lambda r: r.aggregate.recall,
        "fig3d_precision": lambda r: r.aggregate.precision,
        "fig4a_total_utility": lambda r: r.aggregate.total_utility,
        "fig4b_clicked_utility": lambda r: r.aggregate.clicked_utility,
        "fig4c_energy_kj": lambda r: r.aggregate.energy_kilojoules,
        "fig4d_delay_s": lambda r: r.aggregate.mean_queuing_delay_s,
    }
    return {
        name: _series_from_grid(name[:5], name, grid, budgets_mb, extract)
        for name, extract in metric_map.items()
    }


def figure5a_fixed_levels(
    workload: Workload,
    budgets_mb: Sequence[float] = PAPER_BUDGET_SWEEP_MB,
    base_config: ExperimentConfig | None = None,
    annotations: UtilityAnnotations | None = None,
    user_ids: Sequence[int] | None = None,
    max_level: int = 6,
) -> FigureSeries:
    """RichNote vs UTIL fixed at every preview level (Fig. 5a).

    The paper's "fixed presentation methods" hold one level constant; we
    use the UTIL ordering for them (its batch-mode analogue).
    """
    specs = [MethodSpec(Method.RICHNOTE)] + [
        MethodSpec(Method.UTIL, fixed_level=level) for level in range(2, max_level + 1)
    ]
    grid = sweep_budgets(
        workload, specs, budgets_mb, base_config, annotations, user_ids
    )
    return _series_from_grid(
        "fig5a",
        "total_utility",
        grid,
        budgets_mb,
        lambda r: r.aggregate.total_utility,
    )


@dataclass
class LevelMixSeries:
    """Presentation-level mix per budget (Figs. 5b/5c stacked bars)."""

    figure: str
    budgets_mb: tuple[float, ...]
    # mix[budget][level] = fraction of deliveries at that level
    mix: dict[float, dict[int, float]] = field(default_factory=dict)


def figure5b_presentation_mix(
    workload: Workload,
    budgets_mb: Sequence[float] = PAPER_BUDGET_SWEEP_MB,
    base_config: ExperimentConfig | None = None,
    annotations: UtilityAnnotations | None = None,
    user_ids: Sequence[int] | None = None,
    network_mode: NetworkMode = NetworkMode.CELL_ONLY,
) -> LevelMixSeries:
    """RichNote's chosen presentation levels across budgets (Fig. 5b).

    With ``network_mode=MARKOV`` this is Fig. 5(c): the WIFI state admits
    more bytes per round, so richer presentations appear at equal budgets.
    """
    from dataclasses import replace

    base_config = base_config or ExperimentConfig()
    base_config = replace(base_config, network_mode=network_mode)
    series = LevelMixSeries(
        figure="fig5c" if network_mode is NetworkMode.MARKOV else "fig5b",
        budgets_mb=tuple(budgets_mb),
    )
    if annotations is None:
        annotations = UtilityAnnotations.train(workload, seed=base_config.seed)
    for budget in budgets_mb:
        result = run_experiment(
            workload,
            MethodSpec(Method.RICHNOTE),
            base_config.with_budget(budget),
            annotations,
            user_ids,
        )
        series.mix[budget] = dict(result.aggregate.level_mix)
    return series


@dataclass(frozen=True)
class UserCategoryPoint:
    """One bucket of Fig. 5(d): users grouped by notification volume."""

    category_label: str
    lower_bound: int
    upper_bound: int
    user_count: int
    mean_utility: float
    std_utility: float


def figure5d_user_categories(
    workload: Workload,
    config: ExperimentConfig | None = None,
    annotations: UtilityAnnotations | None = None,
    user_ids: Sequence[int] | None = None,
    n_buckets: int = 5,
) -> list[UserCategoryPoint]:
    """Per-user utility grouped by notification-volume category (Fig. 5d)."""
    config = config or ExperimentConfig()
    result = run_experiment(
        workload, MethodSpec(Method.RICHNOTE), config, annotations, user_ids
    )
    volumes = [(o.metrics.total_notifications, o.metrics.total_utility) for o in result.per_user]
    if not volumes:
        return []
    max_volume = max(v for v, _ in volumes)
    bucket_width = max(1, math.ceil(max_volume / n_buckets))
    buckets: dict[int, list[float]] = {}
    for volume, utility in volumes:
        buckets.setdefault(min(volume // bucket_width, n_buckets - 1), []).append(utility)
    points = []
    for index in sorted(buckets):
        utilities = buckets[index]
        mean = sum(utilities) / len(utilities)
        variance = sum((u - mean) ** 2 for u in utilities) / len(utilities)
        lo, hi = index * bucket_width, (index + 1) * bucket_width
        points.append(
            UserCategoryPoint(
                category_label=f"{lo}-{hi}",
                lower_bound=lo,
                upper_bound=hi,
                user_count=len(utilities),
                mean_utility=mean,
                std_utility=math.sqrt(variance),
            )
        )
    return points


@dataclass(frozen=True)
class SensitivityPoint:
    """One V setting of the Lyapunov sensitivity study (Sec. V-D5)."""

    v: float
    total_utility: float
    mean_backlog_bytes: float
    delivery_ratio: float
    energy_kilojoules: float


def v_sensitivity(
    workload: Workload,
    v_values: Sequence[float] = (10.0, 100.0, 1000.0, 10000.0),
    config: ExperimentConfig | None = None,
    annotations: UtilityAnnotations | None = None,
    user_ids: Sequence[int] | None = None,
) -> list[SensitivityPoint]:
    """RichNote across Lyapunov control-knob settings.

    The paper "observed that RichNote performs uniformly better in all
    these settings"; the bench asserts utility varies mildly while backlog
    stays bounded.
    """
    config = config or ExperimentConfig()
    if annotations is None:
        annotations = UtilityAnnotations.train(workload, seed=config.seed)
    points = []
    for v in v_values:
        result = run_experiment(
            workload,
            MethodSpec(Method.RICHNOTE),
            config.with_v(v),
            annotations,
            user_ids,
        )
        points.append(
            SensitivityPoint(
                v=v,
                total_utility=result.aggregate.total_utility,
                mean_backlog_bytes=result.mean_backlog_bytes,
                delivery_ratio=result.aggregate.delivery_ratio,
                energy_kilojoules=result.aggregate.energy_kilojoules,
            )
        )
    return points
