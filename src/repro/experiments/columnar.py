"""Cohort-scale experiment execution on the columnar runtime.

Bridges the experiment layer (records, annotations, :class:`MethodSpec`
cells) onto :class:`repro.runtime.columnar.ColumnarEngine`: it builds
one :class:`~repro.runtime.columnar.ColumnarCohort` from many users'
notification streams, runs all of them through a single struct-of-arrays
round loop, and folds the outcome columns back into the exact
per-user :class:`~repro.experiments.runner.UserRunOutcome` objects the
scalar :func:`~repro.experiments.runner.run_user` produces -- bit for
bit, including delivery digests (the fold materializes real
:class:`~repro.runtime.types.Delivery` objects for *delivered* items
only and reuses :func:`~repro.experiments.metrics.compute_user_metrics`
and :func:`~repro.experiments.runner.delivery_digest`, so the metric
arithmetic literally cannot drift from the scalar path).

Scope mirrors the engine's: the paper-default pipeline.  Configs that
enable the fault-tolerant delivery engine or multi-feed cadences fall
back to the scalar runner (:func:`supports` gates this;
:func:`run_experiment_columnar` falls back transparently), which remains
the parity oracle for everything the columnar path does handle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.presentations import build_audio_ladder
from repro.core.utility import CombinedUtilityModel, ExponentialAging
from repro.experiments.adapters import record_to_item
from repro.experiments.config import ExperimentConfig, MethodSpec, NetworkMode
from repro.experiments.metrics import (
    FailureStats,
    aggregate,
    compute_user_metrics,
)
from repro.experiments.runner import (
    ExperimentResult,
    UserRunOutcome,
    UtilityAnnotations,
    _device_stream_seed,
    delivery_digest,
    run_experiment,
)
from repro.experiments.shards import shard_by_user
from repro.runtime import registry
from repro.runtime.columnar import (
    ColumnarCohort,
    ColumnarEngine,
    build_device_columns,
    needs_item_objects,
    round_times,
)
from repro.runtime.types import Delivery
from repro.trace.generator import Workload
from repro.trace.records import NotificationRecord

__all__ = [
    "CohortColumns",
    "build_cohort",
    "fold_outcomes",
    "make_engine",
    "run_cohort",
    "run_experiment_columnar",
    "run_users_columnar",
    "supports",
]


def supports(config: ExperimentConfig) -> bool:
    """Whether a config runs on the columnar path.

    The engine models the paper-default atomic pipeline; fault injection
    and multi-feed cadences stay on the scalar runner.
    """
    return config.faults is None and config.feed_cadences is None


class _DeliveredItem:
    """The item fields metrics and digests read, without a full ContentItem."""

    __slots__ = ("item_id", "created_at", "clicked", "click_time")

    def __init__(self, record: NotificationRecord) -> None:
        self.item_id = record.notification_id
        self.created_at = record.timestamp
        self.clicked = record.clicked
        self.click_time = record.click_time


@dataclass
class CohortColumns:
    """A built cohort plus the record columns needed to fold results back.

    ``records[u]`` is user ``u``'s notification records in flat (stable
    created-at) order, aligned with the cohort's flat item columns.
    """

    cohort: ColumnarCohort
    user_ids: list[int]
    records: list[list[NotificationRecord]]


def build_cohort(
    user_records: Sequence[tuple[int, Sequence[NotificationRecord]]],
    annotations: UtilityAnnotations,
    ladder,
    materialize_items: bool = False,
) -> CohortColumns:
    """Flatten many users' streams into one set of columns.

    Within each user, records are stable-sorted by timestamp -- the order
    the event heap ingests them on the scalar path.  ``materialize_items``
    additionally builds the :class:`~repro.core.content.ContentItem` list
    the generic-policy adapter path needs.
    """
    user_ids: list[int] = []
    sorted_records: list[list[NotificationRecord]] = []
    offsets: list[int] = [0]
    item_ids: list[int] = []
    created: list[float] = []
    contents: list[float] = []
    items = [] if materialize_items else None
    scores = annotations.scores
    for user_id, records in user_records:
        ordered = sorted(records, key=lambda record: record.timestamp)
        user_ids.append(user_id)
        sorted_records.append(ordered)
        for record in ordered:
            item_ids.append(record.notification_id)
            created.append(record.timestamp)
            contents.append(scores[record.notification_id])
            if items is not None:
                item = record_to_item(record, ladder)
                item.content_utility = scores[record.notification_id]
                items.append(item)
        offsets.append(len(item_ids))
    cohort = ColumnarCohort(
        user_ids=user_ids,
        offsets=np.asarray(offsets, dtype=np.int64),
        item_ids=item_ids,
        created_at=np.asarray(created, dtype=np.float64),
        contents=np.asarray(contents, dtype=np.float64),
        ladder=ladder,
        items=items,
    )
    return CohortColumns(
        cohort=cohort, user_ids=user_ids, records=sorted_records
    )


def make_engine(
    columns: CohortColumns,
    spec: MethodSpec,
    config: ExperimentConfig,
    duration_seconds: float,
    *,
    channels=None,
    utility_model: CombinedUtilityModel | None = None,
) -> ColumnarEngine:
    """Build the :class:`ColumnarEngine` one cell's ``run_cohort`` would run.

    Exposed separately so benches and the shard-parallel path can time
    cohort construction apart from the round loop (and resume runs via
    ``engine.run(limit_rounds=...)``).  ``channels`` configures
    multi-channel delivery; ``utility_model`` overrides the config-derived
    model (benches use a subclass to force the adapter path).
    """
    cohort = columns.cohort
    if utility_model is None:
        aging = (
            ExponentialAging(config.aging_tau_seconds)
            if config.aging_tau_seconds
            else None
        )
        utility_model = CombinedUtilityModel(aging=aging)
    policy = registry.create(spec.policy_name, **spec.policy_params(config))
    if cohort.items is None and needs_item_objects(policy, utility_model):
        raise ValueError(
            "this policy/utility model needs cohort items; rebuild the "
            "cohort with build_cohort(..., materialize_items=True)"
        )
    times = round_times(config.round_seconds, duration_seconds)
    device = build_device_columns(
        [_device_stream_seed(config.seed, u) for u in columns.user_ids],
        times,
        config.round_seconds,
        duration_seconds,
        config.kappa_joules_per_round,
        markov=config.network_mode is NetworkMode.MARKOV,
    )
    return ColumnarEngine(
        cohort,
        device,
        policy,
        utility_model,
        theta_bytes=config.theta_bytes_per_round,
        kappa_joules=config.kappa_joules_per_round,
        round_seconds=config.round_seconds,
        duration_seconds=duration_seconds,
        expected_batch=config.expected_batch,
        channels=channels,
    )


def fold_outcomes(
    columns: CohortColumns,
    result,
    digest_deliveries: bool = False,
) -> list[UserRunOutcome]:
    """Fold engine outcome columns back into per-user ``UserRunOutcome``s.

    Materializes real :class:`~repro.runtime.types.Delivery` objects for
    delivered items only and reuses the scalar metric/digest functions, so
    the arithmetic cannot drift from the scalar path.  Multichannel runs
    stamp each delivery with its transport name from the engine's parallel
    channel-code column.
    """
    outcomes: list[UserRunOutcome] = []
    offsets = columns.cohort.offsets
    names = result.channel_names
    multichannel = len(names) > 1
    for index, user_id in enumerate(columns.user_ids):
        records = columns.records[index]
        base = int(offsets[index])
        codes = result.channel_codes[index] if multichannel else None
        deliveries = [
            Delivery(
                time=time,
                user_id=user_id,
                item=_DeliveredItem(records[flat - base]),
                level=level,
                size_bytes=size,
                energy_joules=share,
                utility=utility,
                channel=names[codes[position]] if multichannel else "push",
            )
            for position, (time, flat, level, size, share, utility) in (
                enumerate(result.deliveries[index])
            )
        ]
        outcomes.append(
            UserRunOutcome(
                metrics=compute_user_metrics(user_id, records, deliveries),
                mean_backlog_bytes=float(result.mean_backlog_bytes[index]),
                max_queue_length=int(result.max_queue_length[index]),
                final_queue_length=int(result.final_queue_length[index]),
                failures=FailureStats(),
                delivery_digest=(
                    delivery_digest(deliveries) if digest_deliveries else None
                ),
            )
        )
    return outcomes


def run_cohort(
    columns: CohortColumns,
    spec: MethodSpec,
    config: ExperimentConfig,
    duration_seconds: float,
    digest_deliveries: bool = False,
    *,
    channels=None,
    utility_model: CombinedUtilityModel | None = None,
) -> list[UserRunOutcome]:
    """Run one (method, config) cell over a built cohort.

    Returns one :class:`UserRunOutcome` per cohort user, in cohort order,
    bit-identical to calling :func:`repro.experiments.runner.run_user`
    per user.
    """
    if not supports(config):
        raise ValueError(
            "columnar execution supports the paper-default pipeline only "
            "(no fault injection, no multi-feed cadences); use the scalar "
            "runner for this config"
        )
    engine = make_engine(
        columns,
        spec,
        config,
        duration_seconds,
        channels=channels,
        utility_model=utility_model,
    )
    result = engine.run()
    return fold_outcomes(columns, result, digest_deliveries)


def run_users_columnar(
    user_records: Sequence[tuple[int, Sequence[NotificationRecord]]],
    spec: MethodSpec,
    config: ExperimentConfig,
    annotations: UtilityAnnotations,
    duration_seconds: float,
    ladder=None,
    digest_deliveries: bool = False,
    *,
    channels=None,
    utility_model: CombinedUtilityModel | None = None,
) -> list[UserRunOutcome]:
    """Columnar equivalent of per-user ``run_user`` over a user batch."""
    if ladder is None:
        ladder = build_audio_ladder(config.presentation_spec)
    if utility_model is None:
        aging = (
            ExponentialAging(config.aging_tau_seconds)
            if config.aging_tau_seconds
            else None
        )
        utility_model = CombinedUtilityModel(aging=aging)
    policy = registry.create(spec.policy_name, **spec.policy_params(config))
    columns = build_cohort(
        user_records,
        annotations,
        ladder,
        materialize_items=needs_item_objects(policy, utility_model),
    )
    return run_cohort(
        columns,
        spec,
        config,
        duration_seconds,
        digest_deliveries=digest_deliveries,
        channels=channels,
        utility_model=utility_model,
    )


def run_experiment_columnar(
    workload: Workload,
    spec: MethodSpec,
    config: ExperimentConfig,
    annotations: UtilityAnnotations | None = None,
    user_ids: Sequence[int] | None = None,
) -> ExperimentResult:
    """Columnar drop-in for :func:`repro.experiments.runner.run_experiment`.

    Unsupported configs (faults, multi-feed) transparently fall back to
    the scalar runner, so callers can treat this as the default engine.
    """
    if not supports(config):
        return run_experiment(workload, spec, config, annotations, user_ids)
    if annotations is None:
        annotations = UtilityAnnotations.train(
            workload, seed=config.seed, oracle=config.use_oracle_utility
        )
    duration_seconds = workload.config.duration_hours * 3600.0
    users = list(user_ids) if user_ids is not None else workload.user_ids()
    by_user = shard_by_user(workload.records, users)
    user_records = [
        (user_id, by_user[user_id]) for user_id in users if by_user[user_id]
    ]
    if not user_records:
        raise ValueError("no users with notifications to simulate")
    outcomes = run_users_columnar(
        user_records, spec, config, annotations, duration_seconds
    )
    return ExperimentResult(
        spec=spec,
        config=config,
        aggregate=aggregate([o.metrics for o in outcomes]),
        per_user=outcomes,
    )
