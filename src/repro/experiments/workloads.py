"""Calibrated evaluation workloads.

The paper simulates the "top 10k users with maximum number of delivered
notifications" over one week of trace.  Full paper scale is out of reach
for a laptop test-suite, so we provide calibrated presets whose *per-user*
notification volume and byte demand match the regime where the paper's
budget sweep (1-100 MB/week) is interesting:

* a user should receive on the order of 100-300 notifications per week;
* full-ladder demand (40 s previews, ~800 KB each) should span tens to a
  couple hundred MB per week -- so low budgets starve fixed-level
  baselines while RichNote adapts, and the largest budgets let everyone
  deliver everything.

``eval_workload("small")`` is sized for unit/integration tests,
``"medium"`` for the figure benchmarks.
"""

from __future__ import annotations

from functools import lru_cache

from repro.trace.entities import CatalogConfig
from repro.trace.generator import TraceConfig, Workload, WorkloadSpec, build_workload
from repro.trace.socialgraph import SocialGraphConfig

#: Per-preset sizing: (users, artists, playlists, duration_hours, rate_scale)
_PRESETS: dict[str, tuple[int, int, int, float, float]] = {
    # Tiny: fast unit-test fixture (2 simulated days).
    "small": (30, 25, 10, 48.0, 0.35),
    # Medium: the benchmark default (a full paper week).
    "medium": (60, 40, 20, 168.0, 0.18),
    # Large: closer to paper scale for offline runs.
    "large": (200, 100, 50, 168.0, 0.18),
}


def workload_spec(preset: str = "medium", seed: int = 23) -> WorkloadSpec:
    """The WorkloadSpec behind a preset (exposed for customization)."""
    if preset not in _PRESETS:
        raise ValueError(f"unknown preset {preset!r}; choose from {sorted(_PRESETS)}")
    users, artists, playlists, hours, scale = _PRESETS[preset]
    return WorkloadSpec(
        catalog=CatalogConfig(
            n_users=users, n_artists=artists, n_playlists=playlists, seed=seed
        ),
        graph=SocialGraphConfig(n_users=users, attachment_edges=3, seed=seed + 1),
        trace=TraceConfig(
            duration_hours=hours, listen_rate_scale=scale, seed=seed + 2
        ),
    )


@lru_cache(maxsize=4)
def eval_workload(preset: str = "medium", seed: int = 23) -> Workload:
    """Build (and memoize) a calibrated evaluation workload."""
    return build_workload(workload_spec(preset, seed))
