"""Experiment configuration mirroring Section V-C's setup.

Defaults reproduce the paper's settings:

* rounds of 1 hour (3600 s);
* per-user *weekly* data budget, swept 1-200 MB, converted to the
  per-round allowance ``theta``;
* energy target ``kappa`` = 3 kJ per hour;
* Lyapunov control knob ``V`` = 1000;
* six presentation levels (metadata + {5, 10, 20, 30, 40} s previews at
  160 kbps);
* baselines fixed at "metadata with 5 s and 10 s previews" (ladder levels
  2 and 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.core.delivery import RetryPolicy
from repro.core.multifeed import FeedCadences
from repro.core.presentations import AudioPresentationSpec
from repro.sim.faults import FaultConfig

MB = 1_000_000
HOURS_PER_WEEK = 168.0


class NetworkMode(str, Enum):
    """Connectivity regimes of the evaluation."""

    CELL_ONLY = "cell_only"  # main setup: budgeted cellular plan
    MARKOV = "markov"  # Fig. 5(c): WIFI/CELL/OFF Markov chain


class Method(str, Enum):
    """Scheduling policies under comparison."""

    RICHNOTE = "richnote"
    FIFO = "fifo"
    UTIL = "util"


@dataclass(frozen=True)
class MethodSpec:
    """A registry key plus its fixed presentation level (baselines only).

    A spec names a :class:`~repro.runtime.policy.SchedulerPolicy` in the
    :mod:`repro.runtime.registry` (:attr:`policy_name`) and carries the
    experiment-level parameters the policy needs
    (:meth:`policy_params`); orchestration layers never import concrete
    policy classes.
    """

    method: Method
    fixed_level: int | None = None

    def __post_init__(self) -> None:
        if self.method is Method.RICHNOTE:
            if self.fixed_level is not None:
                raise ValueError("RichNote adapts levels; do not fix one")
        elif self.fixed_level is None or self.fixed_level < 1:
            raise ValueError(f"{self.method.value} needs a fixed level >= 1")

    @classmethod
    def parse(cls, text: str) -> "MethodSpec":
        """Parse the CLI grammar: ``richnote`` | ``fifo:<L>`` | ``util:<L>``."""
        name, _, level = text.partition(":")
        name = name.lower()
        if name == "richnote":
            if level:
                raise ValueError("richnote does not take a level")
            return cls(Method.RICHNOTE)
        try:
            method = Method(name)
        except ValueError:
            raise ValueError(
                f"unknown method {name!r}; choose richnote, fifo:<L>, util:<L>"
            ) from None
        if not level:
            raise ValueError(f"{name} needs a level, e.g. {name}:3")
        return cls(method, fixed_level=int(level))

    @property
    def label(self) -> str:
        if self.method is Method.RICHNOTE:
            return "RichNote"
        return f"{self.method.value.upper()}-L{self.fixed_level}"

    @property
    def policy_name(self) -> str:
        """The :mod:`repro.runtime.registry` key of the backing policy."""
        return self.method.value

    def policy_params(self, config: "ExperimentConfig") -> dict:
        """Constructor kwargs for ``registry.create(self.policy_name, ...)``."""
        if self.method is Method.RICHNOTE:
            from repro.core.lyapunov import LyapunovConfig

            return {
                "lyapunov": LyapunovConfig(
                    v=config.lyapunov_v,
                    kappa_joules=config.kappa_joules_per_round,
                )
            }
        return {"fixed_level": self.fixed_level}


@dataclass(frozen=True)
class ExperimentConfig:
    """All knobs of one simulation run."""

    weekly_budget_mb: float = 20.0
    round_seconds: float = 3600.0
    kappa_joules_per_round: float = 3000.0
    lyapunov_v: float = 1000.0
    network_mode: NetworkMode = NetworkMode.CELL_ONLY
    presentation_spec: AudioPresentationSpec = field(
        default_factory=AudioPresentationSpec
    )
    expected_batch: int = 10
    use_oracle_utility: bool = False  # ablation: ground-truth U_c
    #: Recency decay of content utility (the "aging factor" of Sec. III-A).
    #: Social-feed notifications lose value fast; an 8 h mean lifetime makes
    #: a day-late delivery worth ~5% of a prompt one.  Set to None to
    #: disable (ablation -- see benchmarks/test_bench_ablations.py).
    aging_tau_seconds: float | None = 8 * 3600.0
    #: Optional per-feed round cadences (Section II).  When set, the
    #: scheduler ticks at the cadences' base period (which must equal
    #: ``round_seconds``) and album/playlist items batch up to their
    #: coarser release boundaries.
    feed_cadences: FeedCadences | None = None
    #: Fault injection for the delivery path (chaos runs).  ``None``
    #: disables the fault-tolerant engine entirely, keeping the paper's
    #: atomic delivery semantics bit for bit.
    faults: FaultConfig | None = None
    #: Retry/backoff/dead-letter policy used when ``faults`` is set.
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    seed: int = 97

    def __post_init__(self) -> None:
        if self.weekly_budget_mb <= 0:
            raise ValueError("weekly budget must be positive")
        if self.round_seconds <= 0:
            raise ValueError("round duration must be positive")
        if self.kappa_joules_per_round <= 0:
            raise ValueError("kappa must be positive")
        if self.lyapunov_v < 0:
            raise ValueError("V must be >= 0")
        if self.feed_cadences is not None and (
            abs(self.feed_cadences.base_period - self.round_seconds) > 1e-9
        ):
            raise ValueError(
                "feed cadences' base period must equal round_seconds "
                f"({self.feed_cadences.base_period} != {self.round_seconds})"
            )

    @property
    def theta_bytes_per_round(self) -> float:
        """Per-round data allowance implied by the weekly budget."""
        rounds_per_week = HOURS_PER_WEEK * 3600.0 / self.round_seconds
        return self.weekly_budget_mb * MB / rounds_per_week

    def with_budget(self, weekly_budget_mb: float) -> "ExperimentConfig":
        """A copy at a different budget (sweep helper)."""
        from dataclasses import replace

        return replace(self, weekly_budget_mb=weekly_budget_mb)

    def with_v(self, v: float) -> "ExperimentConfig":
        from dataclasses import replace

        return replace(self, lyapunov_v=v)

    def with_faults(
        self, faults: FaultConfig | None, retry: RetryPolicy | None = None
    ) -> "ExperimentConfig":
        """A copy under a different fault schedule (chaos helper)."""
        from dataclasses import replace

        return replace(self, faults=faults, retry=retry or self.retry)


#: The paper's budget sweep for Figures 3-4 (MB per week).
PAPER_BUDGET_SWEEP_MB = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0)

#: Baseline fixed levels used in the headline comparison (5 s and 10 s).
PAPER_BASELINE_LEVELS = (2, 3)
