"""Multi-seed replication: mean +- deviation for experiment metrics.

The paper reports single-trace numbers with error bars only across users
(Fig. 5d).  For a synthetic-workload reproduction the honest error bar is
across *worlds*: regenerate the workload under different seeds, rerun the
cell, and summarize each metric's spread.  This module provides that
replication harness; the headline claims should hold for every replicate,
not just the seed the benches pin.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

from repro.experiments.config import ExperimentConfig, MethodSpec
from repro.experiments.runner import UtilityAnnotations, run_experiment
from repro.experiments.workloads import eval_workload


@dataclass(frozen=True)
class MetricSummary:
    """Mean, sample deviation and range of one metric across replicates."""

    name: str
    values: tuple[float, ...]

    @property
    def mean(self) -> float:
        return sum(self.values) / len(self.values)

    @property
    def std(self) -> float:
        if len(self.values) < 2:
            return 0.0
        mu = self.mean
        return math.sqrt(
            sum((v - mu) ** 2 for v in self.values) / (len(self.values) - 1)
        )

    @property
    def minimum(self) -> float:
        return min(self.values)

    @property
    def maximum(self) -> float:
        return max(self.values)

    def __str__(self) -> str:  # pragma: no cover - formatting
        return f"{self.name}: {self.mean:.3f} +- {self.std:.3f}"


@dataclass
class ReplicatedResult:
    """One (method, config) cell replicated over workload seeds."""

    label: str
    seeds: tuple[int, ...]
    metrics: dict[str, MetricSummary] = field(default_factory=dict)

    def summary_table(self) -> str:
        lines = [
            f"# {self.label} over seeds {list(self.seeds)}",
            f"{'metric':<18}{'mean':>10}{'std':>10}{'min':>10}{'max':>10}",
        ]
        for summary in self.metrics.values():
            lines.append(
                f"{summary.name:<18}"
                f"{summary.mean:>10.3f}{summary.std:>10.3f}"
                f"{summary.minimum:>10.3f}{summary.maximum:>10.3f}"
            )
        return "\n".join(lines)


def replicate_experiment(
    spec: MethodSpec,
    config: ExperimentConfig,
    seeds: Sequence[int],
    preset: str = "small",
    top_users: int = 10,
) -> ReplicatedResult:
    """Rerun one cell over freshly generated workloads, one per seed.

    Each replicate regenerates the entire world (catalog, graph, trace and
    interactions) and retrains the content-utility classifier, so the
    spread covers every stochastic component at once.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    rows: list[dict[str, float]] = []
    for seed in seeds:
        workload = eval_workload(preset, seed=seed)
        annotations = UtilityAnnotations.train(workload, seed=seed)
        users = workload.top_users(top_users)
        result = run_experiment(workload, spec, config, annotations, users)
        rows.append(result.aggregate.row())
    metric_names = rows[0].keys()
    summaries = {
        name: MetricSummary(
            name=name, values=tuple(row[name] for row in rows)
        )
        for name in metric_names
    }
    return ReplicatedResult(
        label=spec.label, seeds=tuple(seeds), metrics=summaries
    )


def compare_replicated(
    specs: Sequence[MethodSpec],
    config: ExperimentConfig,
    seeds: Sequence[int],
    metric: str = "total_utility",
    preset: str = "small",
    top_users: int = 10,
) -> dict[str, MetricSummary]:
    """Replicate several policies and return one metric's summaries.

    A claim like "RichNote beats UTIL" is *replication-robust* when the
    winner's minimum exceeds the loser's maximum across seeds -- the bench
    helper :func:`dominates_across_seeds` checks exactly that.
    """
    return {
        spec.label: replicate_experiment(
            spec, config, seeds, preset, top_users
        ).metrics[metric]
        for spec in specs
    }


def dominates_across_seeds(
    winner: MetricSummary, loser: MetricSummary
) -> bool:
    """Seed-robust dominance: winner's worst replicate beats loser's best."""
    return winner.minimum > loser.maximum
