"""Persistent sweep-scale execution engine (Section V-C's backend).

The paper argues RichNote "can potentially scale to a much larger user
base using a backend parallel platform since our solution can work in
rounds and independently for each user".  The one-shot
:func:`run_experiment_parallel` below proved the sharding; the pool
makes it a *system*:

* **Pool lifecycle** -- an :class:`ExperimentPool` is initialized once
  per sweep.  The per-user record shards and the content-utility score
  map cross the process boundary exactly once, through the worker
  initializer; afterwards each (policy, budget) cell submits only
  ``(MethodSpec, ExperimentConfig, user-batch ids)`` -- kilobytes per
  task instead of re-pickling the workload for every cell.
* **Cost-balanced batching** -- users are partitioned into worker batches
  by notification count (:func:`repro.experiments.shards.balanced_batches`)
  instead of a blind fixed chunksize, so one heavy user cannot straggle a
  whole sweep.
* **Whole-grid scheduling** -- :func:`sweep_budgets_parallel` submits
  *all* cells of a Figures 3-5 grid onto the shared pool at once; workers
  drain a single global queue of (cell, batch) tasks, so the grid
  finishes in one pipeline instead of cell-by-cell barriers.
* **Streamed aggregation** -- batch results fold into a
  :class:`~repro.experiments.metrics.MetricsAccumulator` as they arrive
  and are discarded (unless ``keep_per_user=True``), so the parent holds
  at most the out-of-order frontier, never a 10k-user outcome list.

Determinism: every user's simulation is seeded independently of
scheduling order (see ``_stream_seed`` in the runner), and the parent
folds outcomes in the *canonical sequential user order* regardless of
batch completion order -- float summation order is preserved, so
aggregates and per-user delivery digests are bit-identical to
:func:`repro.experiments.runner.run_experiment`.
"""

from __future__ import annotations

import os
import pickle
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.presentations import build_audio_ladder
from repro.experiments.columnar import run_users_columnar, supports
from repro.experiments.config import ExperimentConfig, MethodSpec
from repro.experiments.metrics import FailureStats, MetricsAccumulator
from repro.experiments.runner import (
    CellSummary,
    ExperimentResult,
    UserRunOutcome,
    UtilityAnnotations,
    run_user,
)
from repro.experiments.shards import (
    balanced_batches,
    shard_by_user,
    write_user_shards,
)
from repro.experiments.timing import StageTimer, SweepTelemetry
from repro.trace.generator import Workload
from repro.trace.io import TraceShardStore
from repro.trace.records import NotificationRecord

__all__ = [
    "ExperimentPool",
    "available_cores",
    "oracle_scores",
    "run_experiment_parallel",
    "run_store_columnar_parallel",
    "sweep_budgets_parallel",
]


def available_cores() -> int:
    """CPU cores this process may actually run on.

    Respects the scheduling affinity mask (containers and ``taskset``
    commonly grant fewer cores than the machine has), falling back to
    :func:`os.cpu_count` on platforms without ``sched_getaffinity``.
    """
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            return len(getaffinity(0)) or (os.cpu_count() or 1)
        except OSError:  # pragma: no cover - exotic platforms
            pass
    return os.cpu_count() or 1


def oracle_scores(
    user_records: Sequence[tuple[int, Sequence[NotificationRecord]]],
) -> dict[int, float]:
    """Oracle content-utility annotations for a record batch.

    The bench-standard labeling (clicked items are worth 0.9, the rest
    0.1).  Pure per-record, so any partition of the same records produces
    the same scores -- workers can derive their own slice locally instead
    of receiving a population-wide map through the initializer.
    """
    scores: dict[int, float] = {}
    for _, records in user_records:
        for record in records:
            scores[record.notification_id] = 0.9 if record.clicked else 0.1
    return scores


# -- worker side ---------------------------------------------------------------

@dataclass
class _WorkerState:
    """Everything a worker holds for the lifetime of the pool.

    Records arrive one of two ways: ``shards`` (pickled through the
    initializer -- the default, no disk involved) or ``store_path`` (a
    columnar shard store the worker memory-maps on first use -- the
    initializer ships a path string, and record bytes reach the worker
    via shared page cache instead of pickling).  ``scores`` may be
    ``None`` on the store path: workers then derive the oracle scores for
    their own record slice (:func:`oracle_scores`), so population-scale
    benches ship no score map at all.
    """

    shards: dict[int, list[NotificationRecord]] | None
    store_path: str | None
    scores: dict[int, float] | None
    duration_seconds: float
    store: TraceShardStore | None = None

    def ensure_store(self) -> TraceShardStore:
        if self.store is None:
            self.store = TraceShardStore(self.store_path)
        return self.store

    def records_for(self, user_id: int) -> list[NotificationRecord]:
        if self.shards is not None:
            return self.shards[user_id]
        return self.ensure_store().records_for_user(user_id)


_WORKER: _WorkerState | None = None


def _init_worker(
    shards: dict[int, list[NotificationRecord]] | None,
    store_path: str | None,
    scores: dict[int, float] | None,
    duration_seconds: float,
) -> None:
    """Pool initializer: receive the shared workload state exactly once."""
    global _WORKER
    _WORKER = _WorkerState(
        shards=shards,
        store_path=store_path,
        scores=scores,
        duration_seconds=duration_seconds,
    )


def _run_cell_batch(
    spec: MethodSpec,
    config: ExperimentConfig,
    user_ids: Sequence[int],
    digest_deliveries: bool,
) -> list[UserRunOutcome]:
    """Replay one user batch of one cell against the worker-resident shards."""
    state = _WORKER
    if state is None:
        raise RuntimeError(
            "worker not initialized; _run_cell_batch must run inside an "
            "ExperimentPool worker"
        )
    if state.scores is not None:
        annotations = UtilityAnnotations(scores=state.scores)
    else:
        annotations = UtilityAnnotations(
            scores=oracle_scores(
                [(u, state.records_for(u)) for u in user_ids]
            )
        )
    ladder = build_audio_ladder(config.presentation_spec)
    return [
        run_user(
            user_id,
            state.records_for(user_id),
            spec,
            config,
            annotations,
            state.duration_seconds,
            ladder=ladder,
            digest_deliveries=digest_deliveries,
        )
        for user_id in user_ids
    ]


def _columnar_outcomes_for_range(
    state: _WorkerState,
    spec: MethodSpec,
    config: ExperimentConfig,
    start: int,
    stop: int,
    digest_deliveries: bool,
) -> list[UserRunOutcome]:
    """One shard range ``[start, stop)`` of store positions, columnar.

    Materializes the range's records from the memory-mapped store (the
    only copying step), derives or adopts annotations, and runs one
    :class:`~repro.runtime.columnar.ColumnarEngine` over the sub-cohort.
    Per-user outcomes are independent of how the population is
    partitioned (every kernel is row-independent and every user is seeded
    by user id), so any range split folds back bit-identically.
    """
    store = state.ensure_store()
    user_records = [
        (int(store.user_ids[position]), store.records_at(position))
        for position in range(start, stop)
    ]
    if state.scores is not None:
        annotations = UtilityAnnotations(scores=state.scores)
    else:
        annotations = UtilityAnnotations(scores=oracle_scores(user_records))
    return run_users_columnar(
        user_records,
        spec,
        config,
        annotations,
        state.duration_seconds,
        digest_deliveries=digest_deliveries,
    )


def _run_columnar_range(
    spec: MethodSpec,
    config: ExperimentConfig,
    start: int,
    stop: int,
    digest_deliveries: bool,
) -> tuple[int, list[UserRunOutcome]]:
    """Pool task: run one store-position range on the worker's shard store."""
    state = _WORKER
    if state is None:
        raise RuntimeError(
            "worker not initialized; _run_columnar_range must run inside an "
            "ExperimentPool worker"
        )
    if state.store_path is None:
        raise RuntimeError(
            "columnar range tasks need a shard store; initialize the pool "
            "with shard_store_dir"
        )
    return start, _columnar_outcomes_for_range(
        state, spec, config, start, stop, digest_deliveries
    )


# -- parent side ---------------------------------------------------------------


def _contiguous_ranges(
    counts: Sequence[int] | np.ndarray, n_ranges: int
) -> list[tuple[int, int]]:
    """Split store positions into contiguous, record-balanced ranges.

    ``counts[p]`` is the record count at store position ``p``.  Cuts land
    at the record-mass quantiles, clamped so every range keeps at least
    one position.  Contiguity matters twice: workers fault in disjoint
    runs of the memory-mapped columns (no interleaved page sharing), and
    the parent can restore canonical store order by sorting ranges on
    their start position alone.
    """
    counts = np.asarray(counts, dtype=np.int64)
    n_positions = len(counts)
    if n_positions == 0:
        return []
    n_ranges = max(1, min(int(n_ranges), n_positions))
    cumulative = np.cumsum(counts)
    total = int(cumulative[-1])
    bounds = [0]
    for index in range(1, n_ranges):
        target = total * index / n_ranges
        cut = int(np.searchsorted(cumulative, target, side="left")) + 1
        cut = max(cut, bounds[-1] + 1)
        cut = min(cut, n_positions - (n_ranges - index))
        bounds.append(cut)
    bounds.append(n_positions)
    return [
        (bounds[index], bounds[index + 1]) for index in range(n_ranges)
    ]


def run_store_columnar_parallel(
    store_path: "str | os.PathLike",
    spec: MethodSpec,
    config: ExperimentConfig,
    duration_seconds: float,
    *,
    workers: int | None = None,
    annotations: UtilityAnnotations | None = None,
    digest_deliveries: bool = False,
    ranges_per_worker: int = 4,
) -> list[UserRunOutcome]:
    """Shard-parallel columnar execution straight off a trace shard store.

    Partitions the store's user positions into contiguous record-balanced
    ranges, runs each range through a per-shard
    :class:`~repro.runtime.columnar.ColumnarEngine` on a worker pool (the
    initializer ships the store *path* and tasks ship position ranges --
    never pickled records; workers read the memory-mapped columns through
    the shared page cache), and folds per-range outcomes back in
    ascending range-start order.  The fold is order-stable: outcomes are
    concatenated in canonical store order regardless of completion order,
    so the returned list -- including per-user delivery digests -- is
    bit-identical to ``workers=1``, which runs the same range code
    in-process.

    ``annotations=None`` ships no score map at all; each worker derives
    :func:`oracle_scores` for its own slice.
    """
    if not supports(config):
        raise ValueError(
            "columnar execution supports the paper-default pipeline only "
            "(no fault injection, no multi-feed cadences)"
        )
    workers = workers if workers is not None else available_cores()
    store_path = str(store_path)
    with TraceShardStore(store_path) as store:
        counts = np.diff(store.offsets)
        n_users = store.n_users
    if n_users == 0:
        raise ValueError(f"{store_path}: shard store holds no users")
    scores = annotations.scores if annotations is not None else None
    if workers <= 1:
        state = _WorkerState(
            shards=None,
            store_path=store_path,
            scores=scores,
            duration_seconds=duration_seconds,
        )
        try:
            return _columnar_outcomes_for_range(
                state, spec, config, 0, n_users, digest_deliveries
            )
        finally:
            if state.store is not None:
                state.store.close()
    ranges = _contiguous_ranges(counts, workers * ranges_per_worker)
    parts: dict[int, list[UserRunOutcome]] = {}
    with ProcessPoolExecutor(
        max_workers=workers,
        initializer=_init_worker,
        initargs=(None, store_path, scores, duration_seconds),
    ) as executor:
        futures = [
            executor.submit(
                _run_columnar_range, spec, config, start, stop,
                digest_deliveries,
            )
            for start, stop in ranges
        ]
        for future in futures:
            start, outcomes = future.result()
            parts[start] = outcomes
    merged: list[UserRunOutcome] = []
    for start in sorted(parts):
        merged.extend(parts[start])
    return merged


class _CellState:
    """Order-correcting streamed fold of one cell's batch results.

    Workers complete batches in arbitrary order; this buffer holds only
    the out-of-order frontier and folds each outcome the moment the
    canonical sequential order reaches it, so float summation order --
    and therefore the aggregate, bit for bit -- matches the sequential
    runner.
    """

    def __init__(
        self,
        spec: MethodSpec,
        config: ExperimentConfig,
        user_order: Sequence[int],
        keep_per_user: bool,
    ) -> None:
        self.spec = spec
        self.config = config
        self._order = user_order
        self._position = 0
        self._pending: dict[int, UserRunOutcome] = {}
        self._accumulator = MetricsAccumulator()
        self._failures = FailureStats()
        self._backlog_sum = 0.0
        self._max_queue = 0
        self._keep = keep_per_user
        self.per_user: list[UserRunOutcome] = []

    def add_batch(self, outcomes: Sequence[UserRunOutcome]) -> None:
        for outcome in outcomes:
            self._pending[outcome.metrics.user_id] = outcome
        while (
            self._position < len(self._order)
            and self._order[self._position] in self._pending
        ):
            outcome = self._pending.pop(self._order[self._position])
            self._position += 1
            self._accumulator.add(outcome.metrics)
            self._failures.merge(outcome.failures)
            self._backlog_sum += outcome.mean_backlog_bytes
            self._max_queue = max(self._max_queue, outcome.max_queue_length)
            if self._keep:
                self.per_user.append(outcome)

    def result(self) -> ExperimentResult:
        if self._position != len(self._order) or self._pending:
            raise RuntimeError(
                f"cell {self.spec.label!r} incomplete: folded "
                f"{self._position}/{len(self._order)} users"
            )
        n = self._position
        summary = CellSummary(
            mean_backlog_bytes=self._backlog_sum / n if n else 0.0,
            max_queue_length=self._max_queue,
            failures=self._failures,
        )
        return ExperimentResult(
            spec=self.spec,
            config=self.config,
            aggregate=self._accumulator.result(),
            per_user=self.per_user,
            summary=summary,
        )


class ExperimentPool:
    """A persistent worker pool amortizing workload shipping over a sweep.

    Construction trains (or adopts) the content-utility annotations,
    shards the workload per user, partitions users into cost-balanced
    batches and spins up the process pool -- shipping shards + scores to
    each worker exactly once via the pool initializer.  Every subsequent
    :meth:`run_cell` / :meth:`run_cells` call submits only
    ``(spec, config, batch ids)`` tasks.

    Use as a context manager, or call :meth:`shutdown` explicitly.
    """

    def __init__(
        self,
        workload: Workload,
        annotations: UtilityAnnotations | None = None,
        user_ids: Sequence[int] | None = None,
        max_workers: int | None = None,
        n_batches: int | None = None,
        base_config: ExperimentConfig | None = None,
        telemetry: SweepTelemetry | None = None,
        shard_store_dir: "str | os.PathLike | None" = None,
    ) -> None:
        base_config = base_config or ExperimentConfig()
        self.telemetry = telemetry
        timer = telemetry.timer if telemetry is not None else StageTimer()
        with timer.stage("train"):
            if annotations is None:
                annotations = UtilityAnnotations.train(
                    workload,
                    seed=base_config.seed,
                    oracle=base_config.use_oracle_utility,
                )
        self.annotations = annotations
        with timer.stage("shard"):
            users = list(user_ids) if user_ids is not None else workload.user_ids()
            by_user = shard_by_user(workload.records, users)
            #: Canonical fold order == the sequential runner's user order.
            self.sim_users = [u for u in users if by_user[u]]
            if not self.sim_users:
                raise ValueError("no users with notifications to simulate")
            shards = {u: by_user[u] for u in self.sim_users}
            counts = {u: len(shards[u]) for u in self.sim_users}
            self.max_workers = max_workers or available_cores()
            if n_batches is None:
                # Oversubscribe so cost balancing has room to smooth
                # stragglers without batches degenerating to single users.
                n_batches = self.max_workers * 4
            self.batches = balanced_batches(counts, n_batches)
            self.duration_seconds = workload.config.duration_hours * 3600.0
            self.shard_store_dir = None
            #: Record counts in store-position order (== sim_users order);
            #: run_cell_columnar balances its ranges on this.
            self._store_counts = [counts[u] for u in self.sim_users]
            if shard_store_dir is not None:
                # Write the columnar store once; workers memory-map it and
                # the initializer ships a path instead of pickled records.
                self.shard_store_dir = str(shard_store_dir)
                write_user_shards(self.shard_store_dir, shards, self.sim_users)
                shards = None
            # Kept so a crashed pool can be rebuilt mid-sweep without the
            # parent re-sharding; the payload never leaves this process
            # except through a pool initializer.
            self._initargs = (
                shards,
                self.shard_store_dir,
                annotations.scores,
                self.duration_seconds,
            )
            self.worker_restarts = 0
            self._executor = ProcessPoolExecutor(
                max_workers=self.max_workers,
                initializer=_init_worker,
                initargs=self._initargs,
            )
        if telemetry is not None:
            telemetry.meta.update(
                engine="ExperimentPool",
                workers=self.max_workers,
                batches=len(self.batches),
                users=len(self.sim_users),
                records=sum(counts.values()),
                worker_restarts=0,
                shard_store=self.shard_store_dir is not None,
            )

    # -- lifecycle -------------------------------------------------------------

    def __enter__(self) -> "ExperimentPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def shutdown(self) -> None:
        self._executor.shutdown()

    def _rebuild_executor(self) -> None:
        """Replace a broken pool with a fresh one from the resident payload.

        A worker killed by the OS (OOM, SIGKILL, segfault in a C
        extension) poisons the whole ``ProcessPoolExecutor``: every
        outstanding future raises ``BrokenProcessPool`` and the executor
        refuses new work.  The shards and scores still live in the
        parent, so recovery is just a new pool + re-initialization.
        """
        self._executor.shutdown(wait=False, cancel_futures=True)
        self._executor = ProcessPoolExecutor(
            max_workers=self.max_workers,
            initializer=_init_worker,
            initargs=self._initargs,
        )
        self.worker_restarts += 1

    # -- introspection ---------------------------------------------------------

    def cell_payload(
        self,
        spec: MethodSpec,
        config: ExperimentConfig,
        batch_index: int = 0,
        digest_deliveries: bool = False,
    ) -> bytes:
        """The exact pickled argument payload one (cell, batch) task ships.

        Exposed so benchmarks can assert the post-init process-boundary
        cost: a registry key, a config and a tuple of user ids -- never
        the notification records.
        """
        return pickle.dumps(
            (spec, config, tuple(self.batches[batch_index]), digest_deliveries),
            protocol=pickle.HIGHEST_PROTOCOL,
        )

    # -- execution -------------------------------------------------------------

    def run_cell(
        self,
        spec: MethodSpec,
        config: ExperimentConfig,
        keep_per_user: bool = True,
        digest_deliveries: bool = False,
    ) -> ExperimentResult:
        """Run one (policy, budget) cell on the resident shards."""
        results = self.run_cells(
            [(spec, config)],
            keep_per_user=keep_per_user,
            digest_deliveries=digest_deliveries,
        )
        return results[(spec.label, config.weekly_budget_mb)]

    def run_cells(
        self,
        cells: Sequence[tuple[MethodSpec, ExperimentConfig]],
        keep_per_user: bool = True,
        digest_deliveries: bool = False,
    ) -> dict[tuple[str, float], ExperimentResult]:
        """Run many cells concurrently; all batches share one task queue.

        Returns ``{(label, weekly_budget_mb): ExperimentResult}`` like
        :func:`repro.experiments.runner.sweep_budgets`.
        """
        states: dict[tuple[str, float], _CellState] = {}
        for spec, config in cells:
            key = (spec.label, config.weekly_budget_mb)
            if key in states:
                raise ValueError(f"duplicate cell {key!r} in one submission")
            states[key] = _CellState(
                spec, config, self.sim_users, keep_per_user
            )

        started = time.perf_counter()
        remaining: dict[tuple[str, float], int] = {}
        tasks = []
        for spec, config in cells:
            key = (spec.label, config.weekly_budget_mb)
            remaining[key] = len(self.batches)
            for batch in self.batches:
                tasks.append((key, spec, config, batch))

        def submit(task):
            _, spec, config, batch = task
            return self._executor.submit(
                _run_cell_batch, spec, config, batch, digest_deliveries
            )

        pending = {submit(task): task for task in tasks}
        restarts_this_run = 0
        while pending:
            done, _ = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                task = pending.pop(future)
                try:
                    outcomes = future.result()
                except BrokenProcessPool:
                    # A worker died mid-batch, poisoning every in-flight
                    # future.  Rebuild the pool once per run and resubmit
                    # the failed batch plus everything still outstanding
                    # (batches are idempotent replays of resident shards,
                    # so a retry folds identically).  A second break in
                    # the same run propagates: the workload itself is
                    # crashing workers, not a transient kill.
                    if restarts_this_run >= 1:
                        raise
                    restarts_this_run += 1
                    retry = [task, *pending.values()]
                    self._rebuild_executor()
                    pending = {submit(t): t for t in retry}
                    break
                key = task[0]
                fold_start = time.perf_counter()
                states[key].add_batch(outcomes)
                fold_end = time.perf_counter()
                remaining[key] -= 1
                if self.telemetry is not None:
                    cell = self.telemetry.cell(*key)
                    cell.timer.add("aggregate", fold_end - fold_start)
                    if remaining[key] == 0:
                        # Parent-observed latency of the cell's slowest
                        # batch; concurrent cells overlap, so rows sum
                        # past wall time.
                        cell.timer.add("simulate", fold_start - started)
                        cell.users = len(self.sim_users)

        if self.telemetry is not None:
            self.telemetry.meta["worker_restarts"] = self.worker_restarts
        return {key: state.result() for key, state in states.items()}

    def run_cell_columnar(
        self,
        spec: MethodSpec,
        config: ExperimentConfig,
        keep_per_user: bool = True,
        digest_deliveries: bool = False,
    ) -> ExperimentResult:
        """Run one cell as per-shard columnar engines over the store.

        Requires the pool to have been built with ``shard_store_dir``:
        each worker runs one :class:`~repro.runtime.columnar.ColumnarEngine`
        per contiguous store-position range, reading records zero-copy
        from the memory-mapped shard store.  Outcomes fold through the
        same order-correcting :class:`_CellState` as :meth:`run_cell`, so
        aggregates and per-user delivery digests are bit-identical to the
        scalar batch path and to a single-process columnar run.
        """
        if self.shard_store_dir is None:
            raise ValueError(
                "run_cell_columnar needs a shard store; build the pool "
                "with shard_store_dir"
            )
        if not supports(config):
            raise ValueError(
                "columnar execution supports the paper-default pipeline "
                "only (no fault injection, no multi-feed cadences); use "
                "run_cell for this config"
            )
        state = _CellState(spec, config, self.sim_users, keep_per_user)
        ranges = _contiguous_ranges(
            self._store_counts, self.max_workers * 4
        )

        def submit(task_range):
            start, stop = task_range
            return self._executor.submit(
                _run_columnar_range, spec, config, start, stop,
                digest_deliveries,
            )

        pending = {submit(r): r for r in ranges}
        restarts_this_run = 0
        while pending:
            done, _ = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                task_range = pending.pop(future)
                try:
                    _, outcomes = future.result()
                except BrokenProcessPool:
                    # Same one-restart recovery as run_cells: ranges are
                    # idempotent replays of the on-disk store.
                    if restarts_this_run >= 1:
                        raise
                    restarts_this_run += 1
                    retry = [task_range, *pending.values()]
                    self._rebuild_executor()
                    pending = {submit(r): r for r in retry}
                    break
                state.add_batch(outcomes)
        if self.telemetry is not None:
            self.telemetry.meta["worker_restarts"] = self.worker_restarts
        return state.result()


def run_experiment_parallel(
    workload: Workload,
    spec: MethodSpec,
    config: ExperimentConfig,
    annotations: UtilityAnnotations | None = None,
    user_ids: Sequence[int] | None = None,
    max_workers: int | None = None,
) -> ExperimentResult:
    """Parallel equivalent of :func:`repro.experiments.runner.run_experiment`.

    One-shot convenience: spins a pool up for a single cell and tears it
    down again.  Deterministic -- results are identical to the sequential
    runner (each user's simulation is seeded independently of scheduling
    order, and the pool folds outcomes in the sequential user order);
    only wall-clock changes.  For sweeps, use
    :func:`sweep_budgets_parallel`, which amortizes the pool over the
    whole grid.
    """
    with ExperimentPool(
        workload,
        annotations=annotations,
        user_ids=user_ids,
        max_workers=max_workers,
        base_config=config,
    ) as pool:
        return pool.run_cell(spec, config)


def sweep_budgets_parallel(
    workload: Workload,
    specs: Sequence[MethodSpec],
    budgets_mb: Sequence[float],
    base_config: ExperimentConfig | None = None,
    annotations: UtilityAnnotations | None = None,
    user_ids: Sequence[int] | None = None,
    *,
    max_workers: int | None = None,
    n_batches: int | None = None,
    keep_per_user: bool = True,
    telemetry: SweepTelemetry | None = None,
) -> dict[tuple[str, float], ExperimentResult]:
    """The Figures 3-5 grid on a shared pool, all cells in flight at once.

    Drop-in parallel equivalent of
    :func:`repro.experiments.runner.sweep_budgets`: same arguments, same
    result mapping, bit-identical aggregates.  Pass a
    :class:`~repro.experiments.timing.SweepTelemetry` to collect the
    per-stage wall-clock rows of ``BENCH_sweep.json``.
    """
    base_config = base_config or ExperimentConfig()
    with ExperimentPool(
        workload,
        annotations=annotations,
        user_ids=user_ids,
        max_workers=max_workers,
        n_batches=n_batches,
        base_config=base_config,
        telemetry=telemetry,
    ) as pool:
        cells = [
            (spec, base_config.with_budget(budget))
            for budget in budgets_mb
            for spec in specs
        ]
        return pool.run_cells(cells, keep_per_user=keep_per_user)
