"""Plain-text rendering of figure series as the paper's tables."""

from __future__ import annotations

from typing import Sequence

from repro.experiments.figures import (
    FigureSeries,
    LevelMixSeries,
    SensitivityPoint,
    UserCategoryPoint,
)


def render_series_table(series: FigureSeries, precision: int = 3) -> str:
    """One row per method, one column per budget."""
    header = ["method".ljust(14)] + [
        f"{budget:g}MB".rjust(10) for budget in series.budgets_mb
    ]
    lines = [f"# {series.metric}", " ".join(header)]
    for label in sorted(series.series):
        cells = [label.ljust(14)]
        for budget in series.budgets_mb:
            cells.append(f"{series.series[label][budget]:.{precision}f}".rjust(10))
        lines.append(" ".join(cells))
    return "\n".join(lines)


def render_level_mix(series: LevelMixSeries, max_level: int = 6) -> str:
    """Stacked-bar data of Figs. 5b/5c as a table (fraction per level)."""
    header = ["budget".ljust(10)] + [f"L{lvl}".rjust(8) for lvl in range(1, max_level + 1)]
    lines = [f"# {series.figure} presentation mix", " ".join(header)]
    for budget in series.budgets_mb:
        mix = series.mix.get(budget, {})
        cells = [f"{budget:g}MB".ljust(10)]
        for level in range(1, max_level + 1):
            cells.append(f"{mix.get(level, 0.0):.3f}".rjust(8))
        lines.append(" ".join(cells))
    return "\n".join(lines)


def render_user_categories(points: Sequence[UserCategoryPoint]) -> str:
    lines = [
        "# fig5d utility across user categories",
        "category".ljust(12)
        + "users".rjust(8)
        + "mean_util".rjust(12)
        + "std".rjust(10),
    ]
    for point in points:
        lines.append(
            point.category_label.ljust(12)
            + str(point.user_count).rjust(8)
            + f"{point.mean_utility:.2f}".rjust(12)
            + f"{point.std_utility:.2f}".rjust(10)
        )
    return "\n".join(lines)


def render_sensitivity(points: Sequence[SensitivityPoint]) -> str:
    lines = [
        "# Lyapunov V sensitivity",
        "V".rjust(8)
        + "total_util".rjust(12)
        + "backlog_MB".rjust(12)
        + "delivery".rjust(10)
        + "energy_kJ".rjust(11),
    ]
    for point in points:
        lines.append(
            f"{point.v:g}".rjust(8)
            + f"{point.total_utility:.1f}".rjust(12)
            + f"{point.mean_backlog_bytes / 1e6:.2f}".rjust(12)
            + f"{point.delivery_ratio:.3f}".rjust(10)
            + f"{point.energy_kilojoules:.2f}".rjust(11)
        )
    return "\n".join(lines)


def render_failure_stats(stats, label: str = "") -> str:
    """Delivery-failure accounting table (chaos runs).

    ``stats`` is a :class:`repro.experiments.metrics.FailureStats`; the
    table lists attempts/retries/dead-letters, byte conservation terms and
    the per-kind fault mix.
    """
    title = "# delivery failures" + (f" -- {label}" if label else "")
    lines = [title]
    for key, value in stats.row().items():
        if key in ("refunded_mb", "wasted_mb", "failure_rate"):
            lines.append(f"{key:>16}: {value:.4f}")
        else:
            lines.append(f"{key:>16}: {value:.0f}")
    lines.append(
        f"{'conservation':>16}: "
        f"{'ok' if stats.conservation_error() < 1e-6 else 'VIOLATED'} "
        f"(err={stats.conservation_error():.3g} B)"
    )
    for kind in sorted(stats.fault_counts):
        lines.append(f"{'fault:' + kind:>16}: {stats.fault_counts[kind]}")
    return "\n".join(lines)


def render_ascii_chart(
    series: FigureSeries,
    width: int = 60,
    height: int = 12,
    log_x: bool = True,
) -> str:
    """Terminal line chart of a figure series (one glyph per method).

    Budgets map to the x axis (log-scaled by default, matching the paper's
    sweep spacing); metric values to the y axis.  Intended for the example
    scripts -- a quick visual check without a plotting dependency.
    """
    import math

    if width < 10 or height < 4:
        raise ValueError("chart needs width >= 10 and height >= 4")
    budgets = list(series.budgets_mb)
    if len(budgets) < 2:
        raise ValueError("need at least two budgets to chart")
    values = [
        series.series[label][budget]
        for label in series.series
        for budget in budgets
    ]
    lo, hi = min(values), max(values)
    if hi == lo:
        hi = lo + 1.0

    def x_position(budget: float) -> int:
        if log_x:
            left, right = math.log(budgets[0]), math.log(budgets[-1])
            t = (math.log(budget) - left) / (right - left)
        else:
            t = (budget - budgets[0]) / (budgets[-1] - budgets[0])
        return min(width - 1, int(round(t * (width - 1))))

    def y_position(value: float) -> int:
        t = (value - lo) / (hi - lo)
        return min(height - 1, int(round(t * (height - 1))))

    glyphs = "ox+*#@%&"
    grid = [[" "] * width for _ in range(height)]
    legend = []
    for index, label in enumerate(sorted(series.series)):
        glyph = glyphs[index % len(glyphs)]
        legend.append(f"{glyph}={label}")
        for budget in budgets:
            row = height - 1 - y_position(series.series[label][budget])
            col = x_position(budget)
            grid[row][col] = glyph
    lines = [f"# {series.metric}   y: [{lo:.3g}, {hi:.3g}]"]
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(
        " x: " + " .. ".join(f"{budgets[0]:g}MB {budgets[-1]:g}MB".split())
    )
    lines.append(" " + "  ".join(legend))
    return "\n".join(lines)


def save_series_csv(series: FigureSeries, path) -> None:
    """Write a figure series as CSV: method, then one column per budget.

    For users who want to re-plot the paper's figures with their own
    tooling; pairs with :func:`load_series_csv`.
    """
    import csv
    from pathlib import Path

    path = Path(path)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["metric", series.metric])
        writer.writerow(["method"] + [f"{b:g}" for b in series.budgets_mb])
        for label in sorted(series.series):
            writer.writerow(
                [label]
                + [repr(series.series[label][b]) for b in series.budgets_mb]
            )


def load_series_csv(path) -> FigureSeries:
    """Inverse of :func:`save_series_csv`."""
    import csv
    from pathlib import Path

    path = Path(path)
    with path.open("r", newline="", encoding="utf-8") as handle:
        rows = list(csv.reader(handle))
    if len(rows) < 3 or rows[0][0] != "metric" or rows[1][0] != "method":
        raise ValueError(f"{path}: not a figure-series CSV")
    metric = rows[0][1]
    budgets = tuple(float(b) for b in rows[1][1:])
    series: dict[str, dict[float, float]] = {}
    for row in rows[2:]:
        if not row:
            continue
        label, values = row[0], row[1:]
        if len(values) != len(budgets):
            raise ValueError(f"{path}: row {label!r} has wrong width")
        series[label] = dict(zip(budgets, (float(v) for v in values)))
    return FigureSeries(
        figure=metric[:5], metric=metric, budgets_mb=budgets, series=series
    )
