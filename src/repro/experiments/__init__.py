"""Trace-driven evaluation harness regenerating the paper's figures."""

from repro.experiments.config import (
    PAPER_BASELINE_LEVELS,
    PAPER_BUDGET_SWEEP_MB,
    ExperimentConfig,
    Method,
    MethodSpec,
    NetworkMode,
)
from repro.experiments.adapters import record_to_item
from repro.experiments.metrics import (
    AggregateMetrics,
    FailureStats,
    MetricsAccumulator,
    UserMetrics,
    aggregate,
    compute_user_metrics,
)
from repro.experiments.pool import (
    ExperimentPool,
    run_experiment_parallel,
    sweep_budgets_parallel,
)
from repro.experiments.runner import (
    CellSummary,
    ExperimentResult,
    UtilityAnnotations,
    delivery_digest,
    run_experiment,
    run_user,
    sweep_budgets,
)
from repro.experiments.shards import balanced_batches, shard_by_user
from repro.experiments.timing import CellTiming, StageTimer, SweepTelemetry
from repro.experiments.system import SystemConfig, SystemReport, SystemSimulation
from repro.experiments.confidence import (
    MetricSummary,
    ReplicatedResult,
    compare_replicated,
    dominates_across_seeds,
    replicate_experiment,
)
