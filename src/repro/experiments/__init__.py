"""Trace-driven evaluation harness regenerating the paper's figures."""

from repro.experiments.config import (
    PAPER_BASELINE_LEVELS,
    PAPER_BUDGET_SWEEP_MB,
    ExperimentConfig,
    Method,
    MethodSpec,
    NetworkMode,
)
from repro.experiments.adapters import record_to_item
from repro.experiments.metrics import (
    AggregateMetrics,
    FailureStats,
    UserMetrics,
    aggregate,
    compute_user_metrics,
)
from repro.experiments.parallel import run_experiment_parallel
from repro.experiments.runner import (
    ExperimentResult,
    UtilityAnnotations,
    run_experiment,
    run_user,
    sweep_budgets,
)
from repro.experiments.system import SystemConfig, SystemReport, SystemSimulation
from repro.experiments.confidence import (
    MetricSummary,
    ReplicatedResult,
    compare_replicated,
    dominates_across_seeds,
    replicate_experiment,
)
