"""Evaluation metrics of Section V-C.

Definitions (quoting the paper):

* **Delivery ratio** -- "the fraction of notifications delivered";
* **Precision** -- "the fraction of delivered notifications (before the
  recorded click time in the Spotify trace) that are clicked on by the
  users";
* **Recall** -- "the fraction of total clicked notifications that are
  delivered to the users";
* **Average utility** -- "average utility of delivered notifications ...
  computed using Equation 1";
* **Download energy** -- "energy spent in downloading notifications based
  on the energy model from [9]";
* **Queuing delay** -- "the time between when a notification arrives in
  the broker and when it is delivered".

Unless stated otherwise, values are averaged across users.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.scheduler import Delivery, RoundResult
from repro.trace.records import NotificationRecord


@dataclass
class FailureStats:
    """Delivery-failure accounting accumulated over RoundResult streams.

    Byte conservation must hold whenever the fault-tolerant delivery
    engine is active: ``debited == delivered + refunded + wasted``
    (:meth:`conservation_error` is ~0).  ``wasted`` is the mid-flight
    bytes of failed attempts -- spent over the air, never delivered.
    """

    attempts: int = 0
    failed_attempts: int = 0
    retries_scheduled: int = 0
    dead_letters: int = 0
    debited_bytes: float = 0.0
    delivered_bytes: float = 0.0
    refunded_bytes: float = 0.0
    wasted_bytes: float = 0.0
    fault_counts: dict[str, int] = field(default_factory=dict)

    def observe(self, result: RoundResult) -> None:
        """Fold one round's failure counters into the running totals."""
        self.attempts += result.attempts
        self.failed_attempts += result.failed_attempts
        self.retries_scheduled += result.retries_scheduled
        self.dead_letters += result.dead_letters
        self.debited_bytes += result.debited_bytes
        if result.attempts:
            # Only the fault-tolerant engine populates attempt/debit
            # counters; on the atomic fast path delivered bytes have no
            # matching debit record here, so folding them in would make
            # the conservation check vacuously fail.
            self.delivered_bytes += result.delivered_bytes
        self.refunded_bytes += result.refunded_bytes
        self.wasted_bytes += result.wasted_bytes
        for kind, count in result.fault_counts.items():
            self.fault_counts[kind] = self.fault_counts.get(kind, 0) + count

    def merge(self, other: "FailureStats") -> None:
        """Fold another user's totals into these (cross-user aggregation)."""
        self.attempts += other.attempts
        self.failed_attempts += other.failed_attempts
        self.retries_scheduled += other.retries_scheduled
        self.dead_letters += other.dead_letters
        self.debited_bytes += other.debited_bytes
        self.delivered_bytes += other.delivered_bytes
        self.refunded_bytes += other.refunded_bytes
        self.wasted_bytes += other.wasted_bytes
        for kind, count in other.fault_counts.items():
            self.fault_counts[kind] = self.fault_counts.get(kind, 0) + count

    @property
    def failure_rate(self) -> float:
        """Fraction of delivery attempts that failed."""
        if self.attempts == 0:
            return 0.0
        return self.failed_attempts / self.attempts

    def conservation_error(self) -> float:
        """``|debited - (delivered + refunded + wasted)|``; ~0 when sound."""
        return abs(
            self.debited_bytes
            - (self.delivered_bytes + self.refunded_bytes + self.wasted_bytes)
        )

    def row(self) -> dict[str, float]:
        """Flat dict for table rendering."""
        return {
            "attempts": float(self.attempts),
            "failed_attempts": float(self.failed_attempts),
            "failure_rate": self.failure_rate,
            "retries": float(self.retries_scheduled),
            "dead_letters": float(self.dead_letters),
            "refunded_mb": self.refunded_bytes / 1e6,
            "wasted_mb": self.wasted_bytes / 1e6,
        }


@dataclass(frozen=True)
class UserMetrics:
    """Metrics of one user's simulation run."""

    user_id: int
    total_notifications: int
    delivered_notifications: int
    delivered_bytes: float
    clicked_total: int
    clicked_delivered_in_time: int
    total_utility: float
    clicked_utility: float
    energy_joules: float
    mean_queuing_delay_s: float
    level_histogram: dict[int, int] = field(default_factory=dict)

    @property
    def delivery_ratio(self) -> float:
        if self.total_notifications == 0:
            return 0.0
        return self.delivered_notifications / self.total_notifications

    @property
    def precision(self) -> float:
        if self.delivered_notifications == 0:
            return 0.0
        return self.clicked_delivered_in_time / self.delivered_notifications

    @property
    def recall(self) -> float:
        if self.clicked_total == 0:
            return 0.0
        return self.clicked_delivered_in_time / self.clicked_total

    @property
    def average_utility(self) -> float:
        if self.delivered_notifications == 0:
            return 0.0
        return self.total_utility / self.delivered_notifications


def compute_user_metrics(
    user_id: int,
    records: Sequence[NotificationRecord],
    deliveries: Sequence[Delivery],
) -> UserMetrics:
    """Join a user's trace with their realized deliveries."""
    clicked_total = sum(1 for r in records if r.clicked)
    delivered = len(deliveries)
    bytes_delivered = float(sum(d.size_bytes for d in deliveries))
    energy = sum(d.energy_joules for d in deliveries)
    total_utility = sum(d.utility for d in deliveries)

    in_time_clicks = 0
    clicked_utility = 0.0
    delays: list[float] = []
    histogram: dict[int, int] = {}
    for delivery in deliveries:
        item = delivery.item
        delays.append(max(0.0, delivery.time - item.created_at))
        histogram[delivery.level] = histogram.get(delivery.level, 0) + 1
        if item.clicked:
            clicked_utility += delivery.utility
            if item.click_time is not None and delivery.time <= item.click_time:
                in_time_clicks += 1
    return UserMetrics(
        user_id=user_id,
        total_notifications=len(records),
        delivered_notifications=delivered,
        delivered_bytes=bytes_delivered,
        clicked_total=clicked_total,
        clicked_delivered_in_time=in_time_clicks,
        total_utility=total_utility,
        clicked_utility=clicked_utility,
        energy_joules=energy,
        mean_queuing_delay_s=(sum(delays) / len(delays)) if delays else 0.0,
        level_histogram=histogram,
    )


@dataclass(frozen=True)
class AggregateMetrics:
    """Cross-user aggregation of one (method, configuration) cell."""

    users: int
    delivery_ratio: float
    precision: float
    recall: float
    average_utility: float
    total_utility: float
    clicked_utility: float
    delivered_mb: float
    energy_kilojoules: float
    mean_queuing_delay_s: float
    level_mix: dict[int, float] = field(default_factory=dict)

    def row(self) -> dict[str, float]:
        """Flat dict for table rendering."""
        return {
            "delivery_ratio": self.delivery_ratio,
            "precision": self.precision,
            "recall": self.recall,
            "avg_utility": self.average_utility,
            "total_utility": self.total_utility,
            "clicked_utility": self.clicked_utility,
            "delivered_mb": self.delivered_mb,
            "energy_kj": self.energy_kilojoules,
            "delay_s": self.mean_queuing_delay_s,
        }


class MetricsAccumulator:
    """Streaming fold of :class:`UserMetrics` into :class:`AggregateMetrics`.

    Folding users one at a time *in the same order* as a batch
    :func:`aggregate` call produces bit-identical results: both are left
    folds starting at 0.0, so every float addition happens in the same
    sequence.  This is what lets the persistent experiment pool aggregate
    batches as they stream back from workers -- discarding each
    :class:`UserMetrics` after folding -- while still matching the
    sequential runner's aggregate exactly.  (:func:`aggregate` itself is
    implemented on top of this class, so the two can never drift.)
    """

    def __init__(self) -> None:
        self.users = 0
        self._delivery_ratio = 0.0
        self._precision = 0.0
        self._recall = 0.0
        self._average_utility = 0.0
        self._total_utility = 0.0
        self._clicked_utility = 0.0
        self._delivered_bytes = 0.0
        self._energy_joules = 0.0
        self._delay_s = 0.0
        self._level_counts: dict[int, int] = {}
        self._total_deliveries = 0

    def add(self, user: UserMetrics) -> None:
        """Fold one user's metrics into the running totals."""
        self.users += 1
        self._delivery_ratio += user.delivery_ratio
        self._precision += user.precision
        self._recall += user.recall
        self._average_utility += user.average_utility
        self._total_utility += user.total_utility
        self._clicked_utility += user.clicked_utility
        self._delivered_bytes += user.delivered_bytes
        self._energy_joules += user.energy_joules
        self._delay_s += user.mean_queuing_delay_s
        for level, count in user.level_histogram.items():
            self._level_counts[level] = self._level_counts.get(level, 0) + count
            self._total_deliveries += count

    def result(self) -> AggregateMetrics:
        """The cross-user aggregate of everything folded so far."""
        if not self.users:
            raise ValueError("no user metrics to aggregate")
        n = self.users
        level_mix = {
            level: count / self._total_deliveries
            for level, count in sorted(self._level_counts.items())
        } if self._total_deliveries else {}
        return AggregateMetrics(
            users=n,
            delivery_ratio=self._delivery_ratio / n,
            precision=self._precision / n,
            recall=self._recall / n,
            average_utility=self._average_utility / n,
            total_utility=self._total_utility,
            clicked_utility=self._clicked_utility,
            delivered_mb=self._delivered_bytes / 1e6,
            energy_kilojoules=self._energy_joules / 1e3,
            mean_queuing_delay_s=self._delay_s / n,
            level_mix=level_mix,
        )


def aggregate(per_user: Sequence[UserMetrics]) -> AggregateMetrics:
    """Average ratio metrics across users; sum volume metrics.

    Matches the paper's reporting: ratio-style metrics (delivery ratio,
    precision, recall, delay) are per-user averages; utility, bytes and
    energy are totals across the user base (Fig. 3b/4a/4c).
    """
    accumulator = MetricsAccumulator()
    for user in per_user:
        accumulator.add(user)
    return accumulator.result()
