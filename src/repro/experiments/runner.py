"""Trace-driven simulation runner (Section V-C's experimental loop).

For each user, the runner replays all notifications intended for them "as a
stream of content items arriving at our scheduling and delivery system",
drives the round-based scheduler through the discrete-event simulator, and
joins the realized deliveries with the trace's ground-truth clicks to
produce the Section V-C metrics.

Content utility is annotated up front: a Random Forest is trained on the
workload's attended (clicked-vs-hovered) records and every notification is
scored once -- the score map is then shared by all (method, budget) cells
of a sweep, exactly as a deployed model would be.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.budgets import DataBudget, EnergyBudget
from repro.core.delivery import DeliveryEngine
from repro.core.presentations import build_audio_ladder
from repro.core.utility import CombinedUtilityModel, ExponentialAging
from repro.experiments.adapters import record_to_item
from repro.experiments.config import ExperimentConfig, MethodSpec, NetworkMode
from repro.experiments.metrics import (
    AggregateMetrics,
    FailureStats,
    UserMetrics,
    aggregate,
    compute_user_metrics,
)
from repro.experiments.shards import shard_by_user
from repro.runtime import registry
from repro.runtime.loop import RoundLoop
from repro.runtime.types import Delivery
from repro.sim.faults import RandomFaultPolicy
from repro.ml.crossval import CrossValResult, cross_validate
from repro.ml.dataset import FeatureExtractor, build_training_set
from repro.ml.forest import RandomForestClassifier
from repro.sim.battery import DiurnalBatteryModel
from repro.sim.device import MobileDevice
from repro.sim.energy import TransferEnergyModel
from repro.sim.engine import Simulator
from repro.sim.network import CellularOnlyNetwork, MarkovNetworkModel
from repro.trace.generator import Workload
from repro.trace.records import NotificationRecord


def _forest_factory(seed: int):
    """The content-utility classifier configuration (speed-tuned RF)."""
    return RandomForestClassifier(
        n_estimators=15,
        max_depth=8,
        min_samples_leaf=5,
        max_features="sqrt",
        random_state=seed,
    )


@dataclass
class UtilityAnnotations:
    """Per-notification content-utility scores plus classifier diagnostics."""

    scores: dict[int, float]
    cross_validation: CrossValResult | None = None

    @classmethod
    def train(
        cls,
        workload: Workload,
        seed: int = 97,
        max_training_samples: int = 8000,
        run_cross_validation: bool = False,
        oracle: bool = False,
    ) -> "UtilityAnnotations":
        """Train on attended records and score every record in the workload.

        ``oracle=True`` bypasses learning and scores from ground truth
        (ablation: perfect content utility).
        """
        if oracle:
            scores = {
                r.notification_id: (0.9 if r.clicked else 0.1)
                for r in workload.records
            }
            return cls(scores=scores)

        extractor = FeatureExtractor()
        x, y = build_training_set(workload.records, extractor)
        if len(x) > max_training_samples:
            rng = np.random.default_rng(seed)
            keep = rng.choice(len(x), size=max_training_samples, replace=False)
            x, y = x[keep], y[keep]

        cv = None
        if run_cross_validation:
            cv = cross_validate(
                lambda: _forest_factory(seed), x, y, n_folds=5, random_state=seed
            )

        forest = _forest_factory(seed).fit(x, y)
        # Vectorized scoring: one array pass over the whole workload
        # (bit-identical to per-record extraction -- see
        # repro.runtime.kernels.feature_matrix).
        all_features = extractor.features_for_records(workload.records)
        probabilities = forest.predict_proba(all_features)[:, 1]
        scores = {
            record.notification_id: float(p)
            for record, p in zip(workload.records, probabilities)
        }
        return cls(scores=scores, cross_validation=cv)


@dataclass
class UserRunOutcome:
    """One user's metrics plus queue-stability diagnostics.

    ``delivery_digest`` is filled only on request (``run_user(...,
    digest_deliveries=True)``): a SHA-256 over the user's realized
    delivery sequence, used by parity tests to compare execution engines
    without shipping the deliveries themselves across processes.
    """

    metrics: UserMetrics
    mean_backlog_bytes: float
    max_queue_length: int
    final_queue_length: int
    failures: FailureStats = field(default_factory=FailureStats)
    delivery_digest: str | None = None


@dataclass
class CellSummary:
    """Cross-user diagnostics of one cell, folded without the per-user list.

    Produced by streaming executors (``keep_per_user=False`` on the
    experiment pool) so :class:`ExperimentResult` keeps its backlog and
    failure views even when the per-user outcomes were discarded as they
    streamed back.
    """

    mean_backlog_bytes: float = 0.0
    max_queue_length: int = 0
    failures: FailureStats = field(default_factory=FailureStats)


@dataclass
class ExperimentResult:
    """One (method, configuration) cell of an experiment grid."""

    spec: MethodSpec
    config: ExperimentConfig
    aggregate: AggregateMetrics
    per_user: list[UserRunOutcome] = field(default_factory=list)
    summary: CellSummary | None = None

    @property
    def label(self) -> str:
        return self.spec.label

    @property
    def mean_backlog_bytes(self) -> float:
        if not self.per_user:
            return self.summary.mean_backlog_bytes if self.summary else 0.0
        return sum(u.mean_backlog_bytes for u in self.per_user) / len(self.per_user)

    @property
    def failures(self) -> FailureStats:
        """Cross-user delivery-failure totals for this cell."""
        if not self.per_user and self.summary is not None:
            return self.summary.failures
        totals = FailureStats()
        for user in self.per_user:
            totals.merge(user.failures)
        return totals


def _stream_seed(seed: int, user_id: int, salt: int) -> int:
    """Stable per-(user, purpose) seed from pure integer arithmetic.

    ``hash()`` is salted per process for strings and its tuple mix is an
    implementation detail that may change between Python versions; an
    explicit mix keeps every RNG stream stable across interpreters and
    processes by construction.  Distinct ``salt`` values keep the fault
    and device streams decorrelated.
    """
    return (seed * 1_000_003 + user_id * 7_919 + salt) & 0x7FFFFFFF


def _fault_stream_seed(seed: int, user_id: int) -> int:
    """Stable per-user seed for fault/backoff randomness."""
    return _stream_seed(seed, user_id, 13)


def _device_stream_seed(seed: int, user_id: int) -> int:
    """Stable per-user seed for connectivity/battery randomness."""
    return _stream_seed(seed, user_id, 29)


def delivery_digest(deliveries: Sequence[Delivery]) -> str:
    """SHA-256 over a delivery sequence (the golden-parity fingerprint).

    Hashes the exact fields the runtime-extraction golden tests pin:
    time, user, item, level, size, energy and realized utility, in
    delivery order.  Two engines that produce the same digest for every
    user produced bit-identical delivery streams.
    """
    digest = hashlib.sha256()
    for d in deliveries:
        digest.update(
            repr(
                (
                    d.time,
                    d.user_id,
                    d.item.item_id,
                    d.level,
                    d.size_bytes,
                    d.energy_joules,
                    d.utility,
                )
            ).encode()
        )
    return digest.hexdigest()


def _build_delivery_engine(
    config: ExperimentConfig, user_id: int
) -> DeliveryEngine | None:
    """Fault-tolerant delivery engine for one user, or None when disabled."""
    if config.faults is None:
        return None
    return DeliveryEngine(
        fault_policy=RandomFaultPolicy(config.faults),
        retry=config.retry,
        rng=random.Random(_fault_stream_seed(config.seed, user_id)),
    )


def _build_scheduler(
    spec: MethodSpec,
    config: ExperimentConfig,
    device: MobileDevice,
    utility_model: CombinedUtilityModel,
) -> RoundLoop:
    """One user's round loop, its policy resolved through the registry.

    The runner never imports concrete policy classes: ``spec`` carries a
    registry key plus parameters, so any registered policy -- including
    downstream plugins -- runs through the same harness.
    """
    data_budget = DataBudget(theta_bytes=config.theta_bytes_per_round)
    energy_budget = EnergyBudget(kappa_joules=config.kappa_joules_per_round)
    engine = _build_delivery_engine(config, device.user_id)
    policy = registry.create(spec.policy_name, **spec.policy_params(config))
    return RoundLoop(
        device,
        data_budget,
        energy_budget,
        utility_model,
        delivery_engine=engine,
        policy=policy,
    )


def _build_device(
    user_id: int, config: ExperimentConfig, duration_seconds: float
) -> MobileDevice:
    seed = _device_stream_seed(config.seed, user_id)
    if config.network_mode is NetworkMode.MARKOV:
        network = MarkovNetworkModel(rng=random.Random(seed))
    else:
        network = CellularOnlyNetwork()
    battery = DiurnalBatteryModel(rng=random.Random(seed + 1)).generate(
        duration_seconds + config.round_seconds,
        sample_period_seconds=config.round_seconds,
    )
    return MobileDevice(
        user_id=user_id,
        network=network,
        battery=battery,
        energy_model=TransferEnergyModel(),
        expected_batch=config.expected_batch,
    )


def run_user(
    user_id: int,
    records: Sequence[NotificationRecord],
    spec: MethodSpec,
    config: ExperimentConfig,
    annotations: UtilityAnnotations,
    duration_seconds: float,
    ladder=None,
    digest_deliveries: bool = False,
) -> UserRunOutcome:
    """Replay one user's notification stream under one policy.

    ``ladder`` is the presentation ladder of ``config.presentation_spec``;
    it is identical for every user of a cell, so cell-level callers build
    it once and pass it in (``None`` rebuilds it, for standalone use).
    """
    if ladder is None:
        ladder = build_audio_ladder(config.presentation_spec)
    items = []
    for record in records:
        item = record_to_item(record, ladder)
        item.content_utility = annotations.scores[record.notification_id]
        items.append(item)

    device = _build_device(user_id, config, duration_seconds)
    aging = (
        ExponentialAging(config.aging_tau_seconds)
        if config.aging_tau_seconds
        else None
    )
    utility_model = CombinedUtilityModel(aging=aging)
    scheduler = _build_scheduler(spec, config, device, utility_model)
    front = scheduler
    if config.feed_cadences is not None:
        from repro.core.multifeed import MultiFeedScheduler

        front = MultiFeedScheduler(scheduler, config.feed_cadences)

    deliveries: list[Delivery] = []
    backlog_samples: list[float] = []
    queue_samples: list[int] = []
    failures = FailureStats()

    simulator = Simulator()
    for item in items:
        simulator.schedule_at(item.created_at, lambda sim, it=item: front.enqueue(it))

    def round_tick(sim: Simulator) -> None:
        result = front.run_round(sim.now, config.round_seconds)
        deliveries.extend(result.deliveries)
        backlog_samples.append(result.backlog_bytes_after)
        queue_samples.append(result.queue_length_after)
        failures.observe(result)

    simulator.schedule_periodic(
        config.round_seconds,
        round_tick,
        start=config.round_seconds,
        until=duration_seconds + 1.0,
    )
    simulator.run(until=duration_seconds + 2.0)

    metrics = compute_user_metrics(user_id, records, deliveries)
    return UserRunOutcome(
        metrics=metrics,
        mean_backlog_bytes=(
            sum(backlog_samples) / len(backlog_samples) if backlog_samples else 0.0
        ),
        max_queue_length=max(queue_samples, default=0),
        final_queue_length=queue_samples[-1] if queue_samples else 0,
        failures=failures,
        delivery_digest=delivery_digest(deliveries) if digest_deliveries else None,
    )


def run_experiment(
    workload: Workload,
    spec: MethodSpec,
    config: ExperimentConfig,
    annotations: UtilityAnnotations | None = None,
    user_ids: Sequence[int] | None = None,
) -> ExperimentResult:
    """Run one policy over (a subset of) the workload's users."""
    if annotations is None:
        annotations = UtilityAnnotations.train(
            workload, seed=config.seed, oracle=config.use_oracle_utility
        )
    duration_seconds = workload.config.duration_hours * 3600.0
    users = list(user_ids) if user_ids is not None else workload.user_ids()
    by_user = shard_by_user(workload.records, users)
    ladder = build_audio_ladder(config.presentation_spec)

    outcomes = []
    for user_id in users:
        records = by_user[user_id]
        if not records:
            continue
        outcomes.append(
            run_user(
                user_id, records, spec, config, annotations, duration_seconds,
                ladder=ladder,
            )
        )
    if not outcomes:
        raise ValueError("no users with notifications to simulate")
    return ExperimentResult(
        spec=spec,
        config=config,
        aggregate=aggregate([o.metrics for o in outcomes]),
        per_user=outcomes,
    )


def sweep_budgets(
    workload: Workload,
    specs: Sequence[MethodSpec],
    budgets_mb: Sequence[float],
    base_config: ExperimentConfig | None = None,
    annotations: UtilityAnnotations | None = None,
    user_ids: Sequence[int] | None = None,
) -> dict[tuple[str, float], ExperimentResult]:
    """The Figures 3-5 grid: every policy at every weekly budget."""
    base_config = base_config or ExperimentConfig()
    if annotations is None:
        annotations = UtilityAnnotations.train(
            workload, seed=base_config.seed, oracle=base_config.use_oracle_utility
        )
    results: dict[tuple[str, float], ExperimentResult] = {}
    for budget in budgets_mb:
        config = base_config.with_budget(budget)
        for spec in specs:
            results[(spec.label, budget)] = run_experiment(
                workload, spec, config, annotations, user_ids
            )
    return results
