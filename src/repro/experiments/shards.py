"""Workload sharding: per-user record shards and cost-balanced batches.

Section V-C's scaling argument rests on users being perfect shards: no
state is shared between per-user round loops, so any partition of the
user set can be replayed independently and merged.  This module is the
single implementation of that partitioning, shared by the sequential
runner, the legacy one-shot parallel runner and the persistent
:class:`repro.experiments.pool.ExperimentPool`.

Two primitives:

* :func:`shard_by_user` -- group a trace's records by recipient,
  preserving the workload's timestamp order within each shard (the order
  the simulator replays them in);
* :func:`balanced_batches` -- partition users into worker batches whose
  *costs* (notification counts -- the dominant per-user simulation cost)
  are balanced, replacing a blind fixed ``chunksize``.  The assignment is
  the classic LPT greedy (largest job first onto the least-loaded batch)
  with deterministic tie-breaks, so the same workload always produces the
  same batches.
"""

from __future__ import annotations

import heapq
import os
from typing import Mapping, Sequence

from repro.trace.io import write_shard_store
from repro.trace.records import NotificationRecord

__all__ = ["balanced_batches", "shard_by_user", "write_user_shards"]


def shard_by_user(
    records: Sequence[NotificationRecord], user_ids: Sequence[int]
) -> dict[int, list[NotificationRecord]]:
    """Group ``records`` by recipient, restricted to ``user_ids``.

    Every requested user gets an entry (possibly empty); record order
    within a shard follows the input order, which for a
    :class:`~repro.trace.generator.Workload` is timestamp order.
    """
    by_user: dict[int, list[NotificationRecord]] = {u: [] for u in user_ids}
    for record in records:
        shard = by_user.get(record.recipient_id)
        if shard is not None:
            shard.append(record)
    return by_user


def balanced_batches(
    costs: Mapping[int, int], n_batches: int
) -> list[list[int]]:
    """Partition users into ``n_batches`` cost-balanced batches (LPT greedy).

    ``costs`` maps user id -> per-user cost (notification count).  Users
    are placed heaviest-first onto the currently lightest batch; ties on
    load break toward the lower batch index and ties on cost toward the
    lower user id, so the partition is a pure function of its inputs.

    Returns exactly ``min(n_batches, len(costs))`` non-empty batches
    (empty when ``costs`` is empty).  Every user appears in exactly one
    batch -- :func:`itertools.chain` over the result is a permutation of
    ``costs``'s keys.
    """
    if n_batches < 1:
        raise ValueError("n_batches must be >= 1")
    users = sorted(costs, key=lambda u: (-costs[u], u))
    n_batches = min(n_batches, len(users))
    batches: list[list[int]] = [[] for _ in range(n_batches)]
    heap = [(0, index) for index in range(n_batches)]  # (load, batch index)
    heapq.heapify(heap)
    for user in users:
        load, index = heapq.heappop(heap)
        batches[index].append(user)
        heapq.heappush(heap, (load + costs[user], index))
    return batches


def write_user_shards(
    path: "str | os.PathLike",
    by_user: Mapping[int, Sequence[NotificationRecord]],
    user_order: Sequence[int],
) -> int:
    """Persist per-user shards as a columnar store, once per sweep.

    Partitions are written in ``user_order`` (the canonical fold order),
    preserving each shard's record order, so workers that memory-map the
    store (:class:`repro.trace.io.TraceShardStore`) replay exactly the
    lists :func:`shard_by_user` produced.  Returns the record count.
    """
    return write_shard_store(
        path, ((user_id, by_user[user_id]) for user_id in user_order)
    )
