"""Topic-based pub/sub substrate (Spotify-style notification origin)."""

from repro.pubsub.topics import Publication, Topic, TopicKind
from repro.pubsub.subscriptions import SubscriptionStore
from repro.pubsub.matching import TopicMatcher
from repro.pubsub.broker import (
    Broker,
    BrokerStats,
    BreakerState,
    CircuitBreakerConfig,
    DeliveryMode,
    Notification,
)
from repro.pubsub.capacity import (
    CapacityConfig,
    CapacityLimitedBroker,
    CapacitySelection,
    select_satisfied_subscribers,
)
