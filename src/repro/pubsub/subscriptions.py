"""Subscription management: who follows which topic.

A straightforward doubly-indexed store: topic -> subscribers and
user -> topics.  Both directions are needed -- matching fans a publication
out to subscribers, while feature extraction and churn simulation walk a
user's subscription list.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable

from repro.pubsub.topics import Topic, TopicKind


class SubscriptionStore:
    """In-memory subscription index with O(1) subscribe/unsubscribe."""

    def __init__(self) -> None:
        self._by_topic: dict[Topic, set[int]] = defaultdict(set)
        self._by_user: dict[int, set[Topic]] = defaultdict(set)
        self._subscription_count = 0

    def subscribe(self, user_id: int, topic: Topic) -> bool:
        """Add a subscription; returns False if it already existed."""
        if user_id < 0:
            raise ValueError("user id must be >= 0")
        if user_id in self._by_topic[topic]:
            return False
        self._by_topic[topic].add(user_id)
        self._by_user[user_id].add(topic)
        self._subscription_count += 1
        return True

    def unsubscribe(self, user_id: int, topic: Topic) -> bool:
        """Remove a subscription; returns False if it did not exist."""
        if user_id not in self._by_topic.get(topic, set()):
            return False
        self._by_topic[topic].discard(user_id)
        self._by_user[user_id].discard(topic)
        self._subscription_count -= 1
        if not self._by_topic[topic]:
            del self._by_topic[topic]
        return True

    def subscribers(self, topic: Topic) -> frozenset[int]:
        """Users subscribed to ``topic`` (empty set if none)."""
        return frozenset(self._by_topic.get(topic, frozenset()))

    def topics_of(self, user_id: int) -> frozenset[Topic]:
        """Topics ``user_id`` follows."""
        return frozenset(self._by_user.get(user_id, frozenset()))

    def topics_of_kind(self, user_id: int, kind: TopicKind) -> frozenset[Topic]:
        return frozenset(
            topic for topic in self._by_user.get(user_id, ()) if topic.kind is kind
        )

    def is_subscribed(self, user_id: int, topic: Topic) -> bool:
        return user_id in self._by_topic.get(topic, set())

    def bulk_subscribe(self, user_id: int, topics: Iterable[Topic]) -> int:
        """Subscribe to many topics; returns how many were new."""
        return sum(1 for topic in topics if self.subscribe(user_id, topic))

    @property
    def total_subscriptions(self) -> int:
        return self._subscription_count

    @property
    def total_topics(self) -> int:
        return len(self._by_topic)

    def all_topics(self) -> frozenset[Topic]:
        return frozenset(self._by_topic)
