"""Publication-to-subscriber matching.

Topic-based matching is an index lookup, but the broker additionally
supports *filters* -- per-user predicates over publication payloads (e.g.
mute a friend's feed at night, only popular releases).  Filters are the
hook through which selective-delivery policies below the utility layer can
be expressed; the default configuration uses none.
"""

from __future__ import annotations

from typing import Callable

from repro.pubsub.subscriptions import SubscriptionStore
from repro.pubsub.topics import Publication

#: A per-user content filter: (user_id, publication) -> deliver?
MatchFilter = Callable[[int, Publication], bool]


class TopicMatcher:
    """Resolves a publication to the set of users who should be notified.

    Self-notifications are suppressed: the publisher never receives a
    notification about their own activity (a FRIEND-topic publisher is by
    construction the topic entity, not a subscriber, but ARTIST/PLAYLIST
    owners may follow their own pages).
    """

    def __init__(self, subscriptions: SubscriptionStore) -> None:
        self._subscriptions = subscriptions
        self._filters: list[MatchFilter] = []

    def add_filter(self, match_filter: MatchFilter) -> None:
        """Install a filter applied to every (user, publication) pair."""
        self._filters.append(match_filter)

    def match(self, publication: Publication) -> frozenset[int]:
        """Users to notify for ``publication`` after filtering."""
        candidates = self._subscriptions.subscribers(publication.topic)
        matched = set()
        for user_id in candidates:
            if user_id == publication.publisher_id:
                continue
            if all(f(user_id, publication) for f in self._filters):
                matched.add(user_id)
        return frozenset(matched)
