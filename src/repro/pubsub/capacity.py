"""Broker-side capacity management (the real-time mode's overload control).

Section II: "A large number of real-time notifications will cause
information overload for human users; methods for selecting a subset of
notifications in an efficient manner have been proposed in prior work [3]"
-- Setty et al., *Maximizing the number of satisfied subscribers in pub/sub
systems under capacity constraints* (INFOCOM 2014).  RichNote positions
itself against exactly this machinery: broker-side selection maximizes a
*count* of satisfied subscribers, whereas RichNote maximizes per-user
*utility*.  Implementing the broker-side selector lets the repository show
both layers working together (capacity filtering upstream, utility
scheduling downstream) and gives the examples a faithful "before" system.

Model (per round):

* the broker can push at most ``broker_capacity`` notifications;
* each subscriber absorbs at most ``user_capacity`` notifications (their
  attention budget);
* a subscriber is **satisfied** iff they receive *every* notification
  matched to them this round (and their demand fits their own capacity);
* objective: maximize the number of satisfied subscribers; leftover broker
  capacity then partially serves the remaining subscribers.

The greedy -- serve subscribers in ascending demand -- is optimal for the
satisfied-count objective: exchanging any served subscriber for an unserved
one with smaller demand never decreases the count.

Beyond the per-round *count* model, this module also generalizes capacity
to shared per-cell-tower **byte pools** (:class:`SharedCellCapacity`):
every user is mapped to a cell (:class:`CellTopology`) and all users on a
cell draw their round budgets from one pool, so a flash crowd on a tower
visibly degrades its bystanders ("Making Recommendations Bandwidth
Aware", PAPERS.md).  The pool plugs into
:class:`repro.runtime.loop.RoundLoop` through the duck-typed
``shared_capacity`` hook (``grant``/``consume``), keeping the layering
one-way: the runtime never imports pubsub.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.pubsub.broker import Broker, Notification


@dataclass(frozen=True)
class CapacityConfig:
    """Per-round capacities."""

    broker_capacity: int
    default_user_capacity: int = 50
    user_capacity_overrides: dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.broker_capacity < 0:
            raise ValueError("broker capacity must be >= 0")
        if self.default_user_capacity < 0:
            raise ValueError("user capacity must be >= 0")
        if any(c < 0 for c in self.user_capacity_overrides.values()):
            raise ValueError("user capacity overrides must be >= 0")

    def user_capacity(self, user_id: int) -> int:
        return self.user_capacity_overrides.get(user_id, self.default_user_capacity)


@dataclass
class CapacitySelection:
    """Outcome of one round of broker-side selection."""

    delivered: list[Notification] = field(default_factory=list)
    dropped: list[Notification] = field(default_factory=list)
    satisfied_users: frozenset[int] = frozenset()

    @property
    def satisfied_count(self) -> int:
        return len(self.satisfied_users)


def select_satisfied_subscribers(
    notifications: list[Notification], config: CapacityConfig
) -> CapacitySelection:
    """Greedy satisfied-subscriber maximization ([3]'s objective).

    Sort subscribers by this round's demand (ascending); fully serve them
    while broker capacity lasts (skipping users whose demand exceeds their
    own capacity -- they can never be satisfied); then spend leftover
    capacity partially serving the rest, smallest demand first.
    """
    by_user: dict[int, list[Notification]] = {}
    for notification in notifications:
        by_user.setdefault(notification.recipient_id, []).append(notification)

    remaining = config.broker_capacity
    selection = CapacitySelection()
    satisfied: set[int] = set()
    partial_queue: list[tuple[int, list[Notification]]] = []

    for user_id in sorted(by_user, key=lambda u: (len(by_user[u]), u)):
        batch = by_user[user_id]
        demand = len(batch)
        if demand <= config.user_capacity(user_id) and demand <= remaining:
            selection.delivered.extend(batch)
            satisfied.add(user_id)
            remaining -= demand
        else:
            partial_queue.append((user_id, batch))

    # Leftover capacity: partial service, capped by each user's capacity.
    for user_id, batch in partial_queue:
        if remaining <= 0:
            selection.dropped.extend(batch)
            continue
        take = min(remaining, config.user_capacity(user_id), len(batch))
        selection.delivered.extend(batch[:take])
        selection.dropped.extend(batch[take:])
        remaining -= take

    selection.satisfied_users = frozenset(satisfied)
    return selection


@dataclass(frozen=True)
class CellTopology:
    """Static user -> cell-tower assignment.

    ``cell_of`` maps user ids to cell ids; unmapped users fall back to
    ``default_cell``.  Real deployments would derive this from coarse
    location; the bench harness assigns it per scenario.
    """

    cell_of: dict[int, int] = field(default_factory=dict)
    default_cell: int = 0

    def cell(self, user_id: int) -> int:
        return self.cell_of.get(user_id, self.default_cell)

    @property
    def cells(self) -> tuple[int, ...]:
        """Every distinct cell id, sorted (including the default)."""
        return tuple(sorted(set(self.cell_of.values()) | {self.default_cell}))


@dataclass
class CellPoolStats:
    """Cumulative per-cell pool accounting."""

    requested_bytes: float = 0.0
    granted_bytes: float = 0.0
    consumed_bytes: float = 0.0
    #: Bytes requested but not granted because the pool ran dry --
    #: the direct measure of cross-user contention on the cell.
    denied_bytes: float = 0.0
    #: Grants truncated below the request (at least one coupled user).
    contended_grants: int = 0


class SharedCellCapacity:
    """Per-round shared byte pools, one per cell tower.

    Users mapped to the same cell draw their round budgets from one pool:
    :meth:`grant` clamps a user's requested budget to what the cell has
    left *without reserving it*, and :meth:`consume` draws down the pool
    by the bytes actually delivered over the air.  Within a round, users
    are served in the order their loops run -- exactly the sequential
    tower scheduling that makes a flash crowd starve late bystanders.

    Conservation invariant (per cell, checked by tests):
    ``consumed <= granted <= requested`` and consumed never exceeds the
    per-round pool.

    The object satisfies the ``shared_capacity`` duck-type of
    :class:`repro.runtime.loop.RoundLoop` (``grant``/``consume``); call
    :meth:`begin_round` once per round tick before any user's loop runs.
    """

    def __init__(
        self,
        topology: CellTopology,
        bytes_per_round: float | dict[int, float],
    ) -> None:
        if isinstance(bytes_per_round, dict):
            if any(v < 0 for v in bytes_per_round.values()):
                raise ValueError("cell pool sizes must be >= 0")
            self._pool_of = dict(bytes_per_round)
            self._default_pool = 0.0
        else:
            if bytes_per_round < 0:
                raise ValueError("bytes_per_round must be >= 0")
            self._pool_of = {}
            self._default_pool = float(bytes_per_round)
        self.topology = topology
        self._remaining: dict[int, float] = {}
        self.stats: dict[int, CellPoolStats] = {}
        self.rounds = 0
        self._refill()

    def pool_bytes(self, cell: int) -> float:
        """The per-round pool size of ``cell``."""
        return self._pool_of.get(cell, self._default_pool)

    def _cell_stats(self, cell: int) -> CellPoolStats:
        stats = self.stats.get(cell)
        if stats is None:
            stats = CellPoolStats()
            self.stats[cell] = stats
        return stats

    def _refill(self) -> None:
        self._remaining = {
            cell: self.pool_bytes(cell) for cell in self.topology.cells
        }

    def begin_round(self) -> None:
        """Refill every cell's pool; call once per round tick."""
        self.rounds += 1
        self._refill()

    def remaining(self, cell: int) -> float:
        remaining = self._remaining.get(cell)
        if remaining is None:
            remaining = self.pool_bytes(cell)
            self._remaining[cell] = remaining
        return remaining

    def grant(self, user_id: int, requested: float) -> float:
        """Clamp ``requested`` bytes to what the user's cell has left."""
        if requested < 0:
            raise ValueError("requested bytes must be >= 0")
        cell = self.topology.cell(user_id)
        granted = min(float(requested), self.remaining(cell))
        stats = self._cell_stats(cell)
        stats.requested_bytes += requested
        stats.granted_bytes += granted
        if granted < requested:
            stats.denied_bytes += requested - granted
            stats.contended_grants += 1
        return granted

    def consume(self, user_id: int, used: float) -> float:
        """Draw ``used`` delivered bytes from the user's cell pool.

        Returns the amount actually drawn (floored at an empty pool --
        over-consumption beyond the pool is clamped, not negative).
        """
        if used < 0:
            raise ValueError("consumed bytes must be >= 0")
        cell = self.topology.cell(user_id)
        remaining = self.remaining(cell)
        drawn = min(float(used), remaining)
        self._remaining[cell] = remaining - drawn
        self._cell_stats(cell).consumed_bytes += drawn
        return drawn


class CapacityLimitedBroker:
    """A broker whose round flushes pass through the capacity selector.

    Wraps a :class:`repro.pubsub.broker.Broker` in ROUND/BATCH mode: on
    :meth:`flush_round`, the pending notifications are filtered by the
    satisfied-subscriber selector and only the survivors reach the sinks.
    """

    def __init__(self, broker: Broker, config: CapacityConfig) -> None:
        if broker._sinks:
            raise ValueError(
                "register sinks on the CapacityLimitedBroker, not on the "
                "wrapped broker -- otherwise dropped notifications would "
                "still reach consumers on flush"
            )
        self.broker = broker
        self.config = config
        self.total_dropped = 0
        self.total_delivered = 0
        self._sinks = []

    def add_sink(self, sink) -> None:
        self._sinks.append(sink)

    def publish(self, publication) -> None:
        self.broker.publish(publication)

    def flush_round(self) -> CapacitySelection:
        pending = self.broker.flush()
        selection = select_satisfied_subscribers(pending, self.config)
        self.total_dropped += len(selection.dropped)
        self.total_delivered += len(selection.delivered)
        for notification in selection.delivered:
            for sink in self._sinks:
                sink(notification)
        return selection
