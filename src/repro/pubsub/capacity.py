"""Broker-side capacity management (the real-time mode's overload control).

Section II: "A large number of real-time notifications will cause
information overload for human users; methods for selecting a subset of
notifications in an efficient manner have been proposed in prior work [3]"
-- Setty et al., *Maximizing the number of satisfied subscribers in pub/sub
systems under capacity constraints* (INFOCOM 2014).  RichNote positions
itself against exactly this machinery: broker-side selection maximizes a
*count* of satisfied subscribers, whereas RichNote maximizes per-user
*utility*.  Implementing the broker-side selector lets the repository show
both layers working together (capacity filtering upstream, utility
scheduling downstream) and gives the examples a faithful "before" system.

Model (per round):

* the broker can push at most ``broker_capacity`` notifications;
* each subscriber absorbs at most ``user_capacity`` notifications (their
  attention budget);
* a subscriber is **satisfied** iff they receive *every* notification
  matched to them this round (and their demand fits their own capacity);
* objective: maximize the number of satisfied subscribers; leftover broker
  capacity then partially serves the remaining subscribers.

The greedy -- serve subscribers in ascending demand -- is optimal for the
satisfied-count objective: exchanging any served subscriber for an unserved
one with smaller demand never decreases the count.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.pubsub.broker import Broker, Notification


@dataclass(frozen=True)
class CapacityConfig:
    """Per-round capacities."""

    broker_capacity: int
    default_user_capacity: int = 50
    user_capacity_overrides: dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.broker_capacity < 0:
            raise ValueError("broker capacity must be >= 0")
        if self.default_user_capacity < 0:
            raise ValueError("user capacity must be >= 0")
        if any(c < 0 for c in self.user_capacity_overrides.values()):
            raise ValueError("user capacity overrides must be >= 0")

    def user_capacity(self, user_id: int) -> int:
        return self.user_capacity_overrides.get(user_id, self.default_user_capacity)


@dataclass
class CapacitySelection:
    """Outcome of one round of broker-side selection."""

    delivered: list[Notification] = field(default_factory=list)
    dropped: list[Notification] = field(default_factory=list)
    satisfied_users: frozenset[int] = frozenset()

    @property
    def satisfied_count(self) -> int:
        return len(self.satisfied_users)


def select_satisfied_subscribers(
    notifications: list[Notification], config: CapacityConfig
) -> CapacitySelection:
    """Greedy satisfied-subscriber maximization ([3]'s objective).

    Sort subscribers by this round's demand (ascending); fully serve them
    while broker capacity lasts (skipping users whose demand exceeds their
    own capacity -- they can never be satisfied); then spend leftover
    capacity partially serving the rest, smallest demand first.
    """
    by_user: dict[int, list[Notification]] = {}
    for notification in notifications:
        by_user.setdefault(notification.recipient_id, []).append(notification)

    remaining = config.broker_capacity
    selection = CapacitySelection()
    satisfied: set[int] = set()
    partial_queue: list[tuple[int, list[Notification]]] = []

    for user_id in sorted(by_user, key=lambda u: (len(by_user[u]), u)):
        batch = by_user[user_id]
        demand = len(batch)
        if demand <= config.user_capacity(user_id) and demand <= remaining:
            selection.delivered.extend(batch)
            satisfied.add(user_id)
            remaining -= demand
        else:
            partial_queue.append((user_id, batch))

    # Leftover capacity: partial service, capped by each user's capacity.
    for user_id, batch in partial_queue:
        if remaining <= 0:
            selection.dropped.extend(batch)
            continue
        take = min(remaining, config.user_capacity(user_id), len(batch))
        selection.delivered.extend(batch[:take])
        selection.dropped.extend(batch[take:])
        remaining -= take

    selection.satisfied_users = frozenset(satisfied)
    return selection


class CapacityLimitedBroker:
    """A broker whose round flushes pass through the capacity selector.

    Wraps a :class:`repro.pubsub.broker.Broker` in ROUND/BATCH mode: on
    :meth:`flush_round`, the pending notifications are filtered by the
    satisfied-subscriber selector and only the survivors reach the sinks.
    """

    def __init__(self, broker: Broker, config: CapacityConfig) -> None:
        if broker._sinks:
            raise ValueError(
                "register sinks on the CapacityLimitedBroker, not on the "
                "wrapped broker -- otherwise dropped notifications would "
                "still reach consumers on flush"
            )
        self.broker = broker
        self.config = config
        self.total_dropped = 0
        self.total_delivered = 0
        self._sinks = []

    def add_sink(self, sink) -> None:
        self._sinks.append(sink)

    def publish(self, publication) -> None:
        self.broker.publish(publication)

    def flush_round(self) -> CapacitySelection:
        pending = self.broker.flush()
        selection = select_satisfied_subscribers(pending, self.config)
        self.total_dropped += len(selection.dropped)
        self.total_delivered += len(selection.delivered)
        for notification in selection.delivered:
            for sink in self._sinks:
                sink(notification)
        return selection
