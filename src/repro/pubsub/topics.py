"""Topic-based pub/sub vocabulary for the Spotify-style workload.

Section II: "Spotify is known to use the topic-based pub/sub paradigm ...
The topics may correspond to users friends, artist pages or publicly
available music playlists.  The publications for these topics are
notifications about friends listening to music tracks, new album releases,
and updates to followed playlists respectively."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class TopicKind(str, Enum):
    """The three Spotify topic families."""

    FRIEND = "friend"  # a user's activity feed
    ARTIST = "artist"  # an artist's page
    PLAYLIST = "playlist"  # a public playlist


@dataclass(frozen=True)
class Topic:
    """A concrete topic: (kind, entity id).

    For FRIEND topics the entity is the *followed user*; subscribers are
    that user's friends.  For ARTIST/PLAYLIST the entity is the artist or
    playlist being followed.
    """

    kind: TopicKind
    entity_id: int

    def __post_init__(self) -> None:
        if self.entity_id < 0:
            raise ValueError("entity id must be >= 0")


@dataclass(frozen=True)
class Publication:
    """One event published to a topic.

    Attributes
    ----------
    topic:
        The topic this event belongs to.
    publisher_id:
        The user/artist/playlist-owner that caused the event (for FRIEND
        topics, the listening friend; used for social-tie features).
    timestamp:
        Seconds since trace epoch.
    payload:
        Content attributes: track/album/artist ids, popularity scores --
        whatever the feature extractor and presentation generator need.
    """

    topic: Topic
    publisher_id: int
    timestamp: float
    payload: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.timestamp < 0:
            raise ValueError("timestamp must be >= 0")
