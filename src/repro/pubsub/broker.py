"""The notification broker: publications in, per-user notifications out.

Section II describes Spotify's hybrid engine with two delivery modes
(real-time for friend feeds, batch for album/playlist updates) and RichNote's
round-based middle ground.  The broker supports all three:

* ``REALTIME`` -- notifications are handed to the sink as soon as the
  publication is matched;
* ``BATCH`` -- notifications accumulate until an explicit :meth:`flush`;
* ``ROUND`` -- notifications accumulate and are released by the periodic
  :meth:`flush`, which the experiment harness calls once per round (round
  duration is tuned per feed frequency: minutes for friend feeds, hours for
  artist/playlist feeds).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING, Callable

from repro.pubsub.matching import TopicMatcher
from repro.pubsub.subscriptions import SubscriptionStore
from repro.pubsub.topics import Publication, TopicKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.content import ContentItem
    from repro.runtime.loop import RoundLoop
    from repro.runtime.types import RoundResult


class DeliveryMode(str, Enum):
    REALTIME = "realtime"
    BATCH = "batch"
    ROUND = "round"


@dataclass(frozen=True)
class Notification:
    """A matched publication addressed to one recipient."""

    notification_id: int
    recipient_id: int
    publication: Publication

    @property
    def timestamp(self) -> float:
        return self.publication.timestamp

    @property
    def kind(self) -> TopicKind:
        return self.publication.topic.kind


#: Sink invoked with each released notification.
NotificationSink = Callable[[Notification], None]


@dataclass
class BrokerStats:
    """Cumulative broker counters (scalability diagnostics)."""

    publications: int = 0
    notifications: int = 0
    dropped_no_subscribers: int = 0
    #: Sink callbacks that raised; the failure is isolated per
    #: (sink, notification) -- the rest of the batch still flows.
    sink_errors: int = 0
    #: Deliveries skipped because a sink's circuit breaker was OPEN.
    sink_skipped: int = 0
    #: Breaker state changes (CLOSED->OPEN, OPEN->HALF_OPEN, ...).
    breaker_transitions: int = 0
    per_kind: dict[TopicKind, int] = field(
        default_factory=lambda: {kind: 0 for kind in TopicKind}
    )


class BreakerState(str, Enum):
    """Circuit-breaker states for one registered sink."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


@dataclass(frozen=True)
class CircuitBreakerConfig:
    """Per-sink breaker tuning.

    After ``failure_threshold`` consecutive sink exceptions the breaker
    OPENs and the sink is skipped for ``cooldown_skips`` deliveries; it
    then goes HALF_OPEN and lets one probe notification through -- success
    re-CLOSEs it, failure re-OPENs it.
    """

    failure_threshold: int = 3
    cooldown_skips: int = 8

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.cooldown_skips < 1:
            raise ValueError("cooldown_skips must be >= 1")


class SinkCircuit:
    """Breaker state machine guarding one sink.

    HALF_OPEN admits exactly one probe per window: ``allow()`` marks a
    probe in flight, and until :meth:`record_success` /
    :meth:`record_failure` resolves it every further ``allow()`` is
    refused.  With the broker's synchronous emit path the probe resolves
    before the next ``allow()``, but async adapters
    (:mod:`repro.service.sinks`) hold deliveries in flight across awaits
    -- without the in-flight latch a thundering herd of concurrent probes
    would all pass through a half-open breaker at once.
    """

    def __init__(self, config: CircuitBreakerConfig) -> None:
        self.config = config
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self._skips_remaining = 0
        self._probe_in_flight = False

    def allow(self) -> tuple[bool, bool]:
        """(may the sink be called, did the state transition)."""
        if self.state is BreakerState.OPEN:
            if self._skips_remaining > 0:
                self._skips_remaining -= 1
                return False, False
            self.state = BreakerState.HALF_OPEN
            self._probe_in_flight = True
            return True, True
        if self.state is BreakerState.HALF_OPEN:
            if self._probe_in_flight:
                return False, False
            self._probe_in_flight = True
            return True, False
        return True, False

    def record_success(self) -> bool:
        """Returns True when the breaker transitioned (re-closed)."""
        self._probe_in_flight = False
        self.consecutive_failures = 0
        if self.state is not BreakerState.CLOSED:
            self.state = BreakerState.CLOSED
            return True
        return False

    def record_failure(self) -> bool:
        """Returns True when the breaker transitioned (opened)."""
        self._probe_in_flight = False
        self.consecutive_failures += 1
        should_open = (
            self.state is BreakerState.HALF_OPEN
            or self.consecutive_failures >= self.config.failure_threshold
        )
        if should_open and self.state is not BreakerState.OPEN:
            self.state = BreakerState.OPEN
            self._skips_remaining = self.config.cooldown_skips
            return True
        return False


#: Backwards-compatible private alias (pre-service name).
_SinkCircuit = SinkCircuit


class Broker:
    """Topic-based pub/sub broker with pluggable delivery mode.

    Per-kind delivery modes are supported -- e.g. friend feeds REALTIME,
    album releases ROUND -- via ``mode_overrides``.
    """

    def __init__(
        self,
        subscriptions: SubscriptionStore | None = None,
        default_mode: DeliveryMode = DeliveryMode.ROUND,
        mode_overrides: dict[TopicKind, DeliveryMode] | None = None,
        breaker: CircuitBreakerConfig | None = None,
    ) -> None:
        self.subscriptions = subscriptions or SubscriptionStore()
        self.matcher = TopicMatcher(self.subscriptions)
        self._default_mode = default_mode
        self._mode_overrides = dict(mode_overrides or {})
        self._pending: list[Notification] = []
        self._sinks: list[NotificationSink] = []
        self._circuits: list[SinkCircuit] = []
        self._breaker_config = breaker or CircuitBreakerConfig()
        self._ids = itertools.count()
        self.stats = BrokerStats()

    def add_sink(self, sink: NotificationSink) -> None:
        """Register a consumer for released notifications."""
        self._sinks.append(sink)
        self._circuits.append(SinkCircuit(self._breaker_config))

    def breaker_states(self) -> list[BreakerState]:
        """Current breaker state per registered sink (diagnostics)."""
        return [circuit.state for circuit in self._circuits]

    def mode_for(self, kind: TopicKind) -> DeliveryMode:
        return self._mode_overrides.get(kind, self._default_mode)

    def publish(self, publication: Publication) -> list[Notification]:
        """Match and route one publication; returns the notifications made.

        REALTIME notifications are pushed to sinks immediately; BATCH/ROUND
        ones are queued for the next :meth:`flush`.
        """
        self.stats.publications += 1
        recipients = self.matcher.match(publication)
        if not recipients:
            self.stats.dropped_no_subscribers += 1
            return []
        notifications = [
            Notification(
                notification_id=next(self._ids),
                recipient_id=recipient,
                publication=publication,
            )
            for recipient in sorted(recipients)
        ]
        self.stats.notifications += len(notifications)
        self.stats.per_kind[publication.topic.kind] += len(notifications)
        if self.mode_for(publication.topic.kind) is DeliveryMode.REALTIME:
            for notification in notifications:
                self._emit(notification)
        else:
            self._pending.extend(notifications)
        return notifications

    def flush(self) -> list[Notification]:
        """Release all queued BATCH/ROUND notifications to the sinks.

        A sink that raises affects only that (sink, notification) pair:
        the exception is counted in :attr:`BrokerStats.sink_errors`, its
        circuit breaker advances, and the rest of the batch -- and the
        remaining sinks -- still receive their notifications.
        """
        released = self._pending
        self._pending = []
        for notification in released:
            self._emit(notification)
        return released

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    def _emit(self, notification: Notification) -> None:
        for sink, circuit in zip(self._sinks, self._circuits):
            allowed, transitioned = circuit.allow()
            if transitioned:
                self.stats.breaker_transitions += 1
            if not allowed:
                self.stats.sink_skipped += 1
                continue
            try:
                sink(notification)
            except Exception:
                self.stats.sink_errors += 1
                if circuit.record_failure():
                    self.stats.breaker_transitions += 1
            else:
                if circuit.record_success():
                    self.stats.breaker_transitions += 1


class SchedulerFleetSink:
    """A broker sink that routes notifications into per-user round loops.

    The deployed composition of Section IV: register the sink with
    :meth:`Broker.add_sink`, publish, and call :meth:`run_round` at every
    round boundary.  Loops are created lazily, one per recipient, by
    ``loop_factory(user_id)``; each released notification is converted to
    a :class:`~repro.core.content.ContentItem` by
    ``item_factory(notification)`` and enqueued to its recipient's loop.

    The sink never imports concrete policy classes --
    :meth:`with_policy` resolves the selection rule by registry name, so
    swapping the fleet from ``richnote`` to a downstream plugin policy is
    a one-string change.
    """

    def __init__(
        self,
        item_factory: "Callable[[Notification], ContentItem]",
        loop_factory: "Callable[[int], RoundLoop]",
    ) -> None:
        self._item_factory = item_factory
        self._loop_factory = loop_factory
        self._loops: dict[int, "RoundLoop"] = {}

    @classmethod
    def with_policy(
        cls,
        item_factory: "Callable[[Notification], ContentItem]",
        loop_factory: "Callable[[int], RoundLoop]",
        policy: str,
        **policy_params,
    ) -> "SchedulerFleetSink":
        """A fleet whose loops bind a fresh registry-created policy each.

        ``loop_factory(user_id)`` builds the bare loop (device, budgets,
        utility model); this wrapper then binds
        ``registry.create(policy, **policy_params)`` to it.  Policies are
        per-user instances, so stateful policies (e.g. ``richnote``'s
        Lyapunov history) never share state across users.
        """
        from repro.runtime import registry

        def bound_factory(user_id: int) -> "RoundLoop":
            loop = loop_factory(user_id)
            loop.bind_policy(registry.create(policy, **policy_params))
            return loop

        return cls(item_factory, bound_factory)

    def __call__(self, notification: Notification) -> None:
        self.loop_for(notification.recipient_id).enqueue(
            self._item_factory(notification)
        )

    def loop_for(self, user_id: int) -> "RoundLoop":
        """The (lazily created) round loop of one recipient."""
        loop = self._loops.get(user_id)
        if loop is None:
            loop = self._loop_factory(user_id)
            self._loops[user_id] = loop
        return loop

    @property
    def user_ids(self) -> list[int]:
        """Recipients with a live loop, sorted."""
        return sorted(self._loops)

    def run_round(
        self, now: float, round_seconds: float
    ) -> dict[int, "RoundResult"]:
        """Advance every user's loop one round; results keyed by user id."""
        return {
            user_id: self._loops[user_id].run_round(now, round_seconds)
            for user_id in sorted(self._loops)
        }
