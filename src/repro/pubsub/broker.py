"""The notification broker: publications in, per-user notifications out.

Section II describes Spotify's hybrid engine with two delivery modes
(real-time for friend feeds, batch for album/playlist updates) and RichNote's
round-based middle ground.  The broker supports all three:

* ``REALTIME`` -- notifications are handed to the sink as soon as the
  publication is matched;
* ``BATCH`` -- notifications accumulate until an explicit :meth:`flush`;
* ``ROUND`` -- notifications accumulate and are released by the periodic
  :meth:`flush`, which the experiment harness calls once per round (round
  duration is tuned per feed frequency: minutes for friend feeds, hours for
  artist/playlist feeds).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable

from repro.pubsub.matching import TopicMatcher
from repro.pubsub.subscriptions import SubscriptionStore
from repro.pubsub.topics import Publication, TopicKind


class DeliveryMode(str, Enum):
    REALTIME = "realtime"
    BATCH = "batch"
    ROUND = "round"


@dataclass(frozen=True)
class Notification:
    """A matched publication addressed to one recipient."""

    notification_id: int
    recipient_id: int
    publication: Publication

    @property
    def timestamp(self) -> float:
        return self.publication.timestamp

    @property
    def kind(self) -> TopicKind:
        return self.publication.topic.kind


#: Sink invoked with each released notification.
NotificationSink = Callable[[Notification], None]


@dataclass
class BrokerStats:
    """Cumulative broker counters (scalability diagnostics)."""

    publications: int = 0
    notifications: int = 0
    dropped_no_subscribers: int = 0
    per_kind: dict[TopicKind, int] = field(
        default_factory=lambda: {kind: 0 for kind in TopicKind}
    )


class Broker:
    """Topic-based pub/sub broker with pluggable delivery mode.

    Per-kind delivery modes are supported -- e.g. friend feeds REALTIME,
    album releases ROUND -- via ``mode_overrides``.
    """

    def __init__(
        self,
        subscriptions: SubscriptionStore | None = None,
        default_mode: DeliveryMode = DeliveryMode.ROUND,
        mode_overrides: dict[TopicKind, DeliveryMode] | None = None,
    ) -> None:
        self.subscriptions = subscriptions or SubscriptionStore()
        self.matcher = TopicMatcher(self.subscriptions)
        self._default_mode = default_mode
        self._mode_overrides = dict(mode_overrides or {})
        self._pending: list[Notification] = []
        self._sinks: list[NotificationSink] = []
        self._ids = itertools.count()
        self.stats = BrokerStats()

    def add_sink(self, sink: NotificationSink) -> None:
        """Register a consumer for released notifications."""
        self._sinks.append(sink)

    def mode_for(self, kind: TopicKind) -> DeliveryMode:
        return self._mode_overrides.get(kind, self._default_mode)

    def publish(self, publication: Publication) -> list[Notification]:
        """Match and route one publication; returns the notifications made.

        REALTIME notifications are pushed to sinks immediately; BATCH/ROUND
        ones are queued for the next :meth:`flush`.
        """
        self.stats.publications += 1
        recipients = self.matcher.match(publication)
        if not recipients:
            self.stats.dropped_no_subscribers += 1
            return []
        notifications = [
            Notification(
                notification_id=next(self._ids),
                recipient_id=recipient,
                publication=publication,
            )
            for recipient in sorted(recipients)
        ]
        self.stats.notifications += len(notifications)
        self.stats.per_kind[publication.topic.kind] += len(notifications)
        if self.mode_for(publication.topic.kind) is DeliveryMode.REALTIME:
            for notification in notifications:
                self._emit(notification)
        else:
            self._pending.extend(notifications)
        return notifications

    def flush(self) -> list[Notification]:
        """Release all queued BATCH/ROUND notifications to the sinks."""
        released = self._pending
        self._pending = []
        for notification in released:
            self._emit(notification)
        return released

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    def _emit(self, notification: Notification) -> None:
        for sink in self._sinks:
            sink(notification)
