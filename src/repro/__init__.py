"""RichNote: adaptive selection and delivery of rich media notifications.

A full reproduction of Uddin et al., *RichNote: Adaptive Selection and
Delivery of Rich Media Notifications to Mobile Users* (ICDCS 2016):

* :mod:`repro.core` -- the paper's contribution: presentation ladders,
  utility models, the greedy MCKP selector (Algorithm 1), the
  Lyapunov-controlled round scheduler (Algorithm 2) and the FIFO/UTIL
  baselines;
* :mod:`repro.pubsub` -- a topic-based pub/sub broker (the Spotify-style
  substrate notifications originate from);
* :mod:`repro.ml` -- a from-scratch Random Forest and evaluation tooling
  for the content-utility classifier;
* :mod:`repro.trace` -- the synthetic Spotify-like workload generator
  (catalog, social graph, publications, click/hover labels);
* :mod:`repro.sim` -- discrete-event simulation, connectivity, battery and
  transfer-energy models;
* :mod:`repro.survey` -- the presentation-utility survey pipeline
  (skyline pruning + curve fitting);
* :mod:`repro.experiments` -- the trace-driven evaluation harness that
  regenerates the paper's figures.

Quickstart::

    from repro import build_workload, ExperimentConfig, MethodSpec, Method
    from repro.experiments.runner import run_experiment

    workload = build_workload()
    result = run_experiment(
        workload, MethodSpec(Method.RICHNOTE), ExperimentConfig()
    )
    print(result.aggregate.row())
"""

from repro.core.content import ContentItem, ContentKind, Presentation, PresentationLadder
from repro.core.presentations import AudioPresentationSpec, build_audio_ladder
from repro.core.scheduler import Delivery, RichNoteScheduler, RoundResult
from repro.core.baselines import FifoScheduler, UtilScheduler
from repro.core.mckp import MckpInstance, MckpItem, select_presentations
from repro.core.lyapunov import LyapunovConfig, LyapunovController, LyapunovState
from repro.core.budgets import DataBudget, EnergyBudget
from repro.core.utility import (
    CombinedUtilityModel,
    ExponentialAging,
    LearnedContentUtility,
    OracleContentUtility,
)
from repro.experiments.config import ExperimentConfig, Method, MethodSpec, NetworkMode
from repro.trace.generator import TraceConfig, Workload, WorkloadSpec, build_workload

__version__ = "1.0.0"

__all__ = [
    "AudioPresentationSpec",
    "CombinedUtilityModel",
    "ContentItem",
    "ContentKind",
    "DataBudget",
    "Delivery",
    "EnergyBudget",
    "ExperimentConfig",
    "ExponentialAging",
    "FifoScheduler",
    "LearnedContentUtility",
    "LyapunovConfig",
    "LyapunovController",
    "LyapunovState",
    "MckpInstance",
    "MckpItem",
    "Method",
    "MethodSpec",
    "NetworkMode",
    "OracleContentUtility",
    "Presentation",
    "PresentationLadder",
    "RichNoteScheduler",
    "RoundResult",
    "TraceConfig",
    "UtilScheduler",
    "Workload",
    "WorkloadSpec",
    "build_audio_ladder",
    "build_workload",
    "select_presentations",
]
