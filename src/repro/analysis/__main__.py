"""``python -m repro.analysis`` -- run richlint from the command line."""

import sys

from repro.analysis.cli import main

sys.exit(main())
