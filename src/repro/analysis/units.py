"""R1: unit safety.

The paper's quantities live in specific units -- preview sizes in KB
(d-sec preview = d x 20 KB), budgets in bytes and MB, energy in joules
against a kappa = 3 kJ/h target, rounds in seconds against hour-long
periods.  The codebase encodes units in identifier suffixes (``_bytes``,
``_joules``, ``_seconds`` ...), which makes mixing detectable:

* ``RL101`` flags ``+``/``-``/comparisons whose operands carry
  *conflicting* unit suffixes (different magnitudes of one dimension, or
  different dimensions outright).  An operand that is itself an
  arithmetic expression is treated as unit-unknown, so the idiomatic fix
  -- multiplying through a conversion constant (``budget_mb * MB``)
  -- silences the rule naturally.
* ``RL102`` flags bare numeric literals fed to the budget APIs
  (``debit``/``credit``/``can_afford``/``replenish``): a literal carries
  no unit, so readers cannot audit the call.  Name the constant with a
  unit suffix instead.  Zero is exempt (it is unit-free).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import Finding, ModuleInfo, ProjectIndex, Rule

#: suffix -> (dimension, human magnitude label)
UNIT_SUFFIXES: dict[str, tuple[str, str]] = {
    "_bytes": ("data", "bytes"),
    "_kb": ("data", "KB"),
    "_mb": ("data", "MB"),
    "_gb": ("data", "GB"),
    "_joules": ("energy", "J"),
    "_kj": ("energy", "kJ"),
    "_ms": ("time", "ms"),
    "_seconds": ("time", "s"),
    "_secs": ("time", "s"),
    "_minutes": ("time", "min"),
    "_hours": ("time", "h"),
    "_days": ("time", "d"),
}

#: Budget/energy API methods whose sole argument is a physical quantity.
BUDGET_METHODS = frozenset({"debit", "credit", "can_afford", "replenish"})


def unit_of(node: ast.expr) -> tuple[str, str, str] | None:
    """(suffix, dimension, label) for a unit-suffixed Name/Attribute.

    Anything that is not a bare identifier -- including arithmetic that
    may embed a conversion constant -- is unit-unknown (``None``).
    """
    if isinstance(node, ast.Name):
        identifier = node.id
    elif isinstance(node, ast.Attribute):
        identifier = node.attr
    else:
        return None
    for suffix, (dimension, label) in UNIT_SUFFIXES.items():
        if identifier.endswith(suffix):
            return suffix, dimension, label
    return None


def _conflict_message(
    left: tuple[str, str, str], right: tuple[str, str, str], context: str
) -> str | None:
    if left[0] == right[0]:
        return None
    if left[1] == right[1]:
        return (
            f"{context} mixes {left[1]} magnitudes {left[2]} and {right[2]} "
            f"({left[0]} vs {right[0]}) without a conversion constant"
        )
    return (
        f"{context} mixes incompatible dimensions {left[1]} ({left[2]}) and "
        f"{right[1]} ({right[2]})"
    )


class UnitMixRule(Rule):
    code = "RL101"
    name = "unit-mix"
    summary = "additive/comparison arithmetic across conflicting unit suffixes"

    def check(self, module: ModuleInfo, index: ProjectIndex) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub)):
                left, right = unit_of(node.left), unit_of(node.right)
                if left is None or right is None:
                    continue
                op = "+" if isinstance(node.op, ast.Add) else "-"
                message = _conflict_message(left, right, f"'{op}'")
                if message is not None:
                    yield self.finding(module, node, message)
            elif isinstance(node, ast.Compare):
                operands = [node.left, *node.comparators]
                units = [unit_of(operand) for operand in operands]
                known = [unit for unit in units if unit is not None]
                for i in range(len(known) - 1):
                    message = _conflict_message(known[i], known[i + 1], "comparison")
                    if message is not None:
                        yield self.finding(module, node, message)
                        break


class BareLiteralBudgetRule(Rule):
    code = "RL102"
    name = "bare-literal"
    summary = "bare numeric literal passed to a budget/energy API"

    def check(self, module: ModuleInfo, index: ProjectIndex) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if not (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in BUDGET_METHODS
            ):
                continue
            arguments = list(node.args) + [kw.value for kw in node.keywords]
            for argument in arguments:
                value = argument
                if isinstance(value, ast.UnaryOp) and isinstance(
                    value.op, (ast.USub, ast.UAdd)
                ):
                    value = value.operand
                if (
                    isinstance(value, ast.Constant)
                    and isinstance(value.value, (int, float))
                    and not isinstance(value.value, bool)
                    and value.value != 0
                ):
                    yield self.finding(
                        module,
                        argument,
                        f"bare literal {ast.unparse(argument)} passed to "
                        f".{node.func.attr}(); bind it to a unit-suffixed "
                        "name (e.g. *_bytes, *_joules) so the unit is auditable",
                    )
