"""Pass-1 project call graph: who is async, who blocks, who spawns tasks.

The flow-aware rules need cross-module facts that no single AST walk can
see: an ``async def`` in ``service/server.py`` that calls a helper in
another module is only safe if that helper never blocks the event loop.
:func:`build_call_graph` runs over every parsed module and records, per
function:

* whether it is ``async def``;
* every call target, canonicalized through the module's imports
  (``from repro.x import helper`` + ``helper()`` resolves to
  ``repro.x.helper``), with plain local calls qualified by the module's
  own dotted name and ``self.method()`` calls by the enclosing class;
* the *directly blocking* calls it makes (``time.sleep``, sync
  ``open``, ``subprocess``, sockets ...);
* the coroutines it spawns as tasks (``asyncio.ensure_future`` /
  ``create_task``).

:meth:`CallGraph.blocking_chain` then propagates blocking-ness through
*synchronous* project calls to a fixpoint: a sync function that calls a
sync function that calls ``time.sleep`` is itself blocking, and awaiting
an ``async def`` never is (the event loop keeps running).  The chain of
qualnames from the queried function down to the primitive blocking call
is preserved so findings can show the path.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import PurePosixPath
from typing import TYPE_CHECKING, Iterator, Sequence

from repro.analysis._names import ImportMap, resolve_call_target

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.engine import ModuleInfo

#: Exact dotted call targets that block the calling thread.
BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "open",
        "io.open",
        "input",
        "os.system",
        "os.popen",
        "os.wait",
        "os.waitpid",
        "socket.create_connection",
        "socket.getaddrinfo",
        "urllib.request.urlopen",
        "select.select",
    }
)

#: Dotted prefixes whose every member is treated as blocking.
BLOCKING_PREFIXES = (
    "subprocess.",
    "requests.",
    "http.client.",
)

#: Call targets that create a Task from a coroutine.
TASK_SPAWNERS = frozenset({"asyncio.ensure_future", "asyncio.create_task"})

#: asyncio awaitable factories: calling one returns a coroutine/future
#: that must be awaited (or spawned) to have any effect.
ASYNC_STDLIB = frozenset(
    {
        "asyncio.sleep",
        "asyncio.gather",
        "asyncio.wait",
        "asyncio.wait_for",
        "asyncio.to_thread",
        "asyncio.open_connection",
        "asyncio.start_server",
    }
)


def module_dotted(relpath: str) -> str:
    """Dotted module name for a repo-relative path.

    ``src/repro/service/server.py`` -> ``repro.service.server``;
    fixture files resolve to their stem so single-file analysis works.
    """
    parts = list(PurePosixPath(relpath).parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts.pop()
    if "src" in parts:
        parts = parts[parts.index("src") + 1 :]
    return ".".join(parts)


def is_blocking_target(target: str) -> bool:
    """Whether a canonical dotted call target is a known-blocking primitive."""
    return target in BLOCKING_CALLS or target.startswith(BLOCKING_PREFIXES)


@dataclass(frozen=True)
class BlockingCall:
    """One directly blocking call site inside a function."""

    target: str
    line: int
    col: int


@dataclass(frozen=True)
class CallSite:
    """One resolved call from a function to a dotted target."""

    target: str
    line: int


@dataclass(frozen=True)
class FunctionInfo:
    """Everything pass 1 learned about one function definition."""

    qualname: str
    module: str  # relpath of the defining module
    name: str
    line: int
    is_async: bool
    class_name: str | None
    calls: tuple[CallSite, ...]
    blocking_calls: tuple[BlockingCall, ...]
    #: Qualnames of coroutines this function hands to ensure_future /
    #: create_task (its spawned task roots).
    spawns: tuple[str, ...]


@dataclass
class CallGraph:
    """Project-wide function facts, keyed by dotted qualname."""

    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    _blocking: dict[str, tuple[str, ...]] | None = None

    def lookup(self, qualname: str) -> FunctionInfo | None:
        return self.functions.get(qualname)

    def is_async(self, qualname: str) -> bool:
        info = self.functions.get(qualname)
        return info is not None and info.is_async

    def class_methods(self, module: str, class_name: str) -> list[FunctionInfo]:
        return [
            info
            for info in self.functions.values()
            if info.module == module and info.class_name == class_name
        ]

    def blocking_chain(self, qualname: str) -> tuple[str, ...] | None:
        """The call chain by which ``qualname`` blocks, or None.

        The chain runs from the function itself down to the primitive
        blocking target, e.g. ``("repro.x.outer", "repro.x.inner",
        "time.sleep")``.  Only *synchronous* project calls propagate:
        an ``async def`` callee suspends instead of blocking.
        """
        if self._blocking is None:
            self._blocking = self._propagate_blocking()
        return self._blocking.get(qualname)

    def _propagate_blocking(self) -> dict[str, tuple[str, ...]]:
        chains: dict[str, tuple[str, ...]] = {}
        for qualname, info in self.functions.items():
            if info.blocking_calls:
                chains[qualname] = (qualname, info.blocking_calls[0].target)
        changed = True
        while changed:
            changed = False
            for qualname, info in self.functions.items():
                if qualname in chains:
                    continue
                for call in info.calls:
                    callee = self.functions.get(call.target)
                    if callee is None or callee.is_async:
                        continue
                    tail = chains.get(call.target)
                    if tail is not None:
                        chains[qualname] = (qualname, *tail)
                        changed = True
                        break
        return chains


def iter_functions(
    tree: ast.Module,
) -> Iterator[tuple[ast.FunctionDef | ast.AsyncFunctionDef, str | None]]:
    """(function node, enclosing class name) pairs, at any nesting depth."""

    def walk(node: ast.AST, class_name: str | None) -> Iterator:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                yield from walk(child, child.name)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield child, class_name
                yield from walk(child, class_name)
            else:
                yield from walk(child, class_name)

    yield from walk(tree, None)


def own_nodes(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterator[ast.AST]:
    """Nodes of the function body, excluding nested function/class bodies."""

    def walk(node: ast.AST) -> Iterator[ast.AST]:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
            ):
                continue
            yield child
            yield from walk(child)

    for stmt in func.body:
        yield stmt
        yield from walk(stmt)


def resolve_target(
    call: ast.Call,
    imports: ImportMap,
    module: str,
    class_name: str | None,
    local_names: frozenset[str],
) -> str | None:
    """Canonical dotted target of a call, qualified for project locals.

    ``self.method()`` -> ``<module>.<Class>.method``; a bare name that is
    defined at the module's top level -> ``<module>.<name>``; everything
    else falls back to the import-canonicalized dotted path.
    """
    func = call.func
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id == "self"
        and class_name is not None
    ):
        return f"{module}.{class_name}.{func.attr}"
    target = resolve_call_target(call, imports)
    if target is None:
        return None
    head = target.partition(".")[0]
    if target in local_names or (head in local_names and "." not in target):
        return f"{module}.{target}"
    return target


def build_call_graph(modules: Sequence["ModuleInfo"]) -> CallGraph:
    """Pass 1: one :class:`FunctionInfo` per function, across all modules."""
    graph = CallGraph()
    for module in modules:
        dotted = module_dotted(module.relpath)
        imports = ImportMap(module.tree)
        local_names = frozenset(
            node.name
            for node in module.tree.body
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            )
        )
        for func, class_name in iter_functions(module.tree):
            prefix = f"{dotted}.{class_name}" if class_name else dotted
            qualname = f"{prefix}.{func.name}"
            calls: list[CallSite] = []
            blocking: list[BlockingCall] = []
            spawns: list[str] = []
            for node in own_nodes(func):
                if not isinstance(node, ast.Call):
                    continue
                target = resolve_target(
                    node, imports, dotted, class_name, local_names
                )
                if target is None:
                    continue
                calls.append(CallSite(target=target, line=node.lineno))
                if is_blocking_target(target):
                    blocking.append(
                        BlockingCall(
                            target=target,
                            line=node.lineno,
                            col=node.col_offset,
                        )
                    )
                if target in TASK_SPAWNERS and node.args:
                    inner = node.args[0]
                    if isinstance(inner, ast.Call):
                        spawned = resolve_target(
                            inner, imports, dotted, class_name, local_names
                        )
                        if spawned is not None:
                            spawns.append(spawned)
            graph.functions[qualname] = FunctionInfo(
                qualname=qualname,
                module=module.relpath,
                name=func.name,
                line=func.lineno,
                is_async=isinstance(func, ast.AsyncFunctionDef),
                class_name=class_name,
                calls=tuple(calls),
                blocking_calls=tuple(blocking),
                spawns=tuple(spawns),
            )
    return graph
