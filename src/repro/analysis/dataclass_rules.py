"""R4: dataclass hygiene.

The codebase leans hard on dataclasses: frozen value types for
configuration and queue snapshots, mutable ones for accumulating stats.
Two foot-guns recur:

* ``RL401`` -- a mutable default (``= []``, ``= {}``, ``= set()``,
  ``field(default=[...])``) is evaluated once at class-definition time
  and shared by every instance; state leaks across schedulers/users.
  Use ``field(default_factory=...)``.
* ``RL402`` -- an *unfrozen* dataclass (with default ``eq=True``) has
  ``__hash__ = None``; instances cannot key dicts/sets, and making them
  hashable by hand invites silent key drift when a field mutates.  Keys
  must be ``frozen=True`` dataclasses (or plain immutables).  The class
  registry is built project-wide in pass 1, so usage in one module is
  checked against a declaration in another.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis._names import terminal_name
from repro.analysis.engine import (
    DataclassInfo,
    Finding,
    ModuleInfo,
    ProjectIndex,
    Rule,
)

_MUTABLE_FACTORIES = {"list", "dict", "set", "bytearray"}


def _is_mutable_literal(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _MUTABLE_FACTORIES
    )


class MutableDefaultRule(Rule):
    code = "RL401"
    name = "mutable-default"
    summary = "mutable default on a dataclass field"

    def check(self, module: ModuleInfo, index: ProjectIndex) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if node.name not in index.dataclasses:
                continue
            for statement in node.body:
                default: ast.expr | None = None
                if isinstance(statement, ast.AnnAssign):
                    default = statement.value
                elif isinstance(statement, ast.Assign):
                    default = statement.value
                if default is None:
                    continue
                if _is_mutable_literal(default):
                    yield self.finding(
                        module,
                        statement,
                        f"mutable default on dataclass {node.name}: shared "
                        "across instances; use field(default_factory=...)",
                    )
                elif (
                    isinstance(default, ast.Call)
                    and isinstance(default.func, ast.Name)
                    and default.func.id == "field"
                ):
                    for keyword in default.keywords:
                        if keyword.arg == "default" and _is_mutable_literal(
                            keyword.value
                        ):
                            yield self.finding(
                                module,
                                statement,
                                f"field(default=<mutable>) on dataclass "
                                f"{node.name}; use default_factory",
                            )


def _unhashable_target(
    node: ast.expr, index: ProjectIndex
) -> DataclassInfo | None:
    """The unhashable-dataclass info if ``node`` constructs one."""
    if not isinstance(node, ast.Call):
        return None
    name = terminal_name(node.func)
    if name is None:
        return None
    info = index.dataclasses.get(name)
    if info is not None and not info.hashable:
        return info
    return None


class UnfrozenKeyRule(Rule):
    code = "RL402"
    name = "unfrozen-key"
    summary = "unfrozen dataclass instance used as a dict/set key"

    def check(self, module: ModuleInfo, index: ProjectIndex) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Subscript):
                info = _unhashable_target(node.slice, index)
                if info is not None:
                    yield self._usage(module, node, info, "as a subscript key")
            elif isinstance(node, ast.Dict):
                for key in node.keys:
                    if key is None:
                        continue
                    info = _unhashable_target(key, index)
                    if info is not None:
                        yield self._usage(module, key, info, "as a dict key")
            elif isinstance(node, ast.Set):
                for element in node.elts:
                    info = _unhashable_target(element, index)
                    if info is not None:
                        yield self._usage(module, element, info, "in a set")
            elif isinstance(node, ast.Compare):
                operands = [node.left, *node.comparators]
                for position, op in enumerate(node.ops):
                    if not isinstance(op, (ast.In, ast.NotIn)):
                        continue
                    info = _unhashable_target(operands[position], index)
                    if info is not None:
                        yield self._usage(
                            module, node, info, "in a membership test"
                        )
            elif isinstance(node, ast.Call):
                if (
                    isinstance(node.func, ast.Name)
                    and node.func.id == "hash"
                    and node.args
                ):
                    info = _unhashable_target(node.args[0], index)
                    if info is not None:
                        yield self._usage(module, node, info, "passed to hash()")

    def _usage(
        self, module: ModuleInfo, node: ast.AST, info: DataclassInfo, context: str
    ) -> Finding:
        return self.finding(
            module,
            node,
            f"unfrozen dataclass {info.name} (declared at {info.path}:"
            f"{info.line}) used {context}: unfrozen+eq dataclasses are "
            "unhashable; declare it frozen=True or key on an immutable field",
        )
