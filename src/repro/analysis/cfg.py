"""Per-function control-flow graphs and reaching definitions.

The first richlint generation inspected one AST node at a time; the
RL7xx async-safety family needs to answer questions *about paths*: is
this blocking call actually reachable, is there an ``await`` between
``lock.acquire()`` and ``lock.release()``, which binding of ``lock``
reaches this ``with`` statement.  :func:`build_cfg` lowers one function
body into basic blocks connected by control-flow edges, and
:meth:`ControlFlowGraph.reaching_definitions` runs the classic forward
may-analysis over them.

Scope and approximations (deliberate -- this is a linter, not a
verifier):

* Nested ``def`` / ``async def`` / ``class`` bodies are *not* inlined:
  the statement defines a name in the enclosing scope, but its body runs
  on some other activation, so its statements belong to its own CFG
  (callers build one per function node).
* ``try``: every block of the protected body gets an edge to every
  handler (an exception can surface anywhere), the ``else`` runs only
  off the body's normal exit, and ``finally`` joins all normal exits.
  ``return`` / ``raise`` edges go straight to the exit block without
  detouring through ``finally`` -- conservative for reachability, and
  the analyses built on top only need may-information.
* ``while True:`` (a constant-true test) has no fall-through edge, so
  statements after a break-less infinite loop are correctly unreachable.

Compound statements contribute only their *header* expressions (an
``if`` test, a ``for`` iterable, a ``with`` context expression) to the
block that evaluates them; their bodies live in successor blocks.  Every
header/simple statement -- and each expression node inside it -- is
mapped back to its block, so rules can ask :meth:`ControlFlowGraph.block_of`
for any AST node they encounter.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

#: Statement kinds that terminate a block by jumping somewhere else.
_JUMPS = (ast.Return, ast.Raise, ast.Break, ast.Continue)


@dataclass
class BasicBlock:
    """A maximal straight-line run of (shallow) statements."""

    index: int
    statements: list[ast.stmt] = field(default_factory=list)
    successors: list[int] = field(default_factory=list)
    predecessors: list[int] = field(default_factory=list)


@dataclass(frozen=True)
class Definition:
    """One binding of ``name`` produced by ``node`` (a statement)."""

    name: str
    line: int
    #: id() of the defining statement -- stable within one tree walk.
    site: int


class ControlFlowGraph:
    """Blocks + edges for one function, with reachability and def queries."""

    def __init__(self, func: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self.func = func
        self.blocks: list[BasicBlock] = []
        self._node_block: dict[int, int] = {}
        self.entry = self._new_block()
        self.exit = self._new_block()
        self._reachable: set[int] | None = None
        self._reaching_in: list[dict[str, frozenset[Definition]]] | None = None

    # -- construction (used by build_cfg only) ---------------------------------

    def _new_block(self) -> int:
        block = BasicBlock(index=len(self.blocks))
        self.blocks.append(block)
        return block.index

    def _edge(self, src: int, dst: int) -> None:
        if dst not in self.blocks[src].successors:
            self.blocks[src].successors.append(dst)
            self.blocks[dst].predecessors.append(src)

    def _place(self, block: int, stmt: ast.stmt, exprs: Iterator[ast.expr]) -> None:
        """Record ``stmt`` (and its owned expressions) as living in ``block``."""
        self.blocks[block].statements.append(stmt)
        self._node_block[id(stmt)] = block
        for expr in exprs:
            for node in _walk_expr(expr):
                self._node_block[id(node)] = block

    # -- queries ---------------------------------------------------------------

    def block_of(self, node: ast.AST) -> int | None:
        """The block that evaluates ``node``, or None for unmapped nodes."""
        return self._node_block.get(id(node))

    def reachable(self) -> set[int]:
        """Block indices reachable from the entry block."""
        if self._reachable is None:
            seen = {self.entry}
            frontier = [self.entry]
            while frontier:
                current = frontier.pop()
                for successor in self.blocks[current].successors:
                    if successor not in seen:
                        seen.add(successor)
                        frontier.append(successor)
            self._reachable = seen
        return self._reachable

    def is_reachable(self, node: ast.AST) -> bool:
        """Whether the statement/expression can execute at all."""
        block = self.block_of(node)
        return block is not None and block in self.reachable()

    def reaching_definitions(self) -> list[dict[str, frozenset[Definition]]]:
        """Per-block *entry* state: name -> definitions that may reach it.

        Standard worklist dataflow: ``in[b] = union(out[p] for p in
        preds)``, ``out[b] = gen[b] | (in[b] - kill[b])``, to a fixpoint.
        Function parameters are definitions at the entry block.
        """
        if self._reaching_in is not None:
            return self._reaching_in

        gen_kill: list[dict[str, frozenset[Definition]]] = []
        for block in self.blocks:
            state: dict[str, frozenset[Definition]] = {}
            for stmt in block.statements:
                for definition in _definitions_of(stmt):
                    state[definition.name] = frozenset({definition})
            gen_kill.append(state)

        entry_state: dict[str, frozenset[Definition]] = {}
        for arg in _parameters(self.func):
            definition = Definition(
                name=arg.arg, line=arg.lineno, site=id(arg)
            )
            entry_state[arg.arg] = frozenset({definition})

        in_states: list[dict[str, frozenset[Definition]]] = [
            {} for _ in self.blocks
        ]
        out_states: list[dict[str, frozenset[Definition]]] = [
            {} for _ in self.blocks
        ]
        in_states[self.entry] = dict(entry_state)

        worklist = list(range(len(self.blocks)))
        while worklist:
            index = worklist.pop(0)
            merged: dict[str, frozenset[Definition]] = (
                dict(entry_state) if index == self.entry else {}
            )
            for pred in self.blocks[index].predecessors:
                for name, defs in out_states[pred].items():
                    merged[name] = merged.get(name, frozenset()) | defs
            in_states[index] = merged
            out_state = dict(merged)
            out_state.update(gen_kill[index])  # gen kills same-name defs
            if out_state != out_states[index]:
                out_states[index] = out_state
                for successor in self.blocks[index].successors:
                    if successor not in worklist:
                        worklist.append(successor)

        self._reaching_in = in_states
        return in_states

    def definitions_reaching(self, node: ast.AST) -> frozenset[Definition]:
        """Definitions of ``node``'s Name that may be live where it sits.

        ``node`` must be an ``ast.Name`` mapped to a block; bindings made
        *earlier in the same block* shadow the block-entry state.
        """
        if not isinstance(node, ast.Name):
            return frozenset()
        block = self.block_of(node)
        if block is None:
            return frozenset()
        state = dict(self.reaching_definitions()[block])
        for stmt in self.blocks[block].statements:
            if stmt.lineno >= getattr(node, "lineno", 0):
                break
            for definition in _definitions_of(stmt):
                state[definition.name] = frozenset({definition})
        return state.get(node.id, frozenset())


def _walk_expr(expr: ast.expr) -> Iterator[ast.AST]:
    """All nodes of an owned expression, skipping lambda bodies (their
    calls run on a later activation, not where the lambda is built)."""
    yield expr
    if isinstance(expr, ast.Lambda):
        return
    for child in ast.iter_child_nodes(expr):
        if isinstance(child, ast.expr):
            yield from _walk_expr(child)
        else:  # comprehension clauses, keywords, slices ...
            yield child
            for grandchild in ast.walk(child):
                if grandchild is not child:
                    yield grandchild


def _parameters(func: ast.FunctionDef | ast.AsyncFunctionDef) -> list[ast.arg]:
    args = func.args
    extra = [a for a in (args.vararg, args.kwarg) if a is not None]
    return [*args.posonlyargs, *args.args, *args.kwonlyargs, *extra]


def _target_names(target: ast.expr) -> Iterator[str]:
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, ast.Starred):
        yield from _target_names(target.value)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _target_names(element)


def _definitions_of(stmt: ast.stmt) -> Iterator[Definition]:
    """Shallow name bindings a placed statement produces."""

    def make(name: str) -> Definition:
        return Definition(name=name, line=stmt.lineno, site=id(stmt))

    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            for name in _target_names(target):
                yield make(name)
    elif isinstance(stmt, ast.AugAssign):
        for name in _target_names(stmt.target):
            yield make(name)
    elif isinstance(stmt, ast.AnnAssign):
        if stmt.value is not None:
            for name in _target_names(stmt.target):
                yield make(name)
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        for name in _target_names(stmt.target):
            yield make(name)
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            if item.optional_vars is not None:
                for name in _target_names(item.optional_vars):
                    yield make(name)
    elif isinstance(stmt, ast.Import):
        for alias in stmt.names:
            yield make(alias.asname or alias.name.split(".")[0])
    elif isinstance(stmt, ast.ImportFrom):
        for alias in stmt.names:
            if alias.name != "*":
                yield make(alias.asname or alias.name)
    elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        yield make(stmt.name)
    # Walrus bindings inside any header expression also define names.
    for expr in _header_exprs(stmt):
        for node in _walk_expr(expr):
            if isinstance(node, ast.NamedExpr) and isinstance(
                node.target, ast.Name
            ):
                yield Definition(
                    name=node.target.id, line=stmt.lineno, site=id(stmt)
                )


def _header_exprs(stmt: ast.stmt) -> list[ast.expr]:
    """The expressions a compound statement evaluates in *its own* block."""
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter, stmt.target]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        exprs: list[ast.expr] = []
        for item in stmt.items:
            exprs.append(item.context_expr)
            if item.optional_vars is not None:
                exprs.append(item.optional_vars)
        return exprs
    if isinstance(stmt, ast.Match):
        return [stmt.subject]
    if isinstance(stmt, ast.Assign):
        return [*stmt.targets, stmt.value]
    if isinstance(stmt, ast.AugAssign):
        return [stmt.target, stmt.value]
    if isinstance(stmt, ast.AnnAssign):
        return [stmt.target] + ([stmt.value] if stmt.value is not None else [])
    if isinstance(stmt, ast.Return):
        return [stmt.value] if stmt.value is not None else []
    if isinstance(stmt, ast.Raise):
        return [e for e in (stmt.exc, stmt.cause) if e is not None]
    if isinstance(stmt, ast.Expr):
        return [stmt.value]
    if isinstance(stmt, ast.Assert):
        return [stmt.test] + ([stmt.msg] if stmt.msg is not None else [])
    if isinstance(stmt, ast.Delete):
        return list(stmt.targets)
    return []


class _Builder:
    """Lowers one function body into a :class:`ControlFlowGraph`."""

    def __init__(self, func: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self.cfg = ControlFlowGraph(func)
        #: (loop_head, loop_after) for continue/break targets.
        self._loops: list[tuple[int, int]] = []

    def build(self) -> ControlFlowGraph:
        first = self.cfg._new_block()
        self.cfg._edge(self.cfg.entry, first)
        last = self._body(self.cfg.func.body, first)
        self.cfg._edge(last, self.cfg.exit)
        return self.cfg

    def _body(self, statements: list[ast.stmt], current: int) -> int:
        for stmt in statements:
            current = self._statement(stmt, current)
        return current

    def _statement(self, stmt: ast.stmt, current: int) -> int:
        place = self.cfg._place
        if isinstance(stmt, ast.If):
            place(current, stmt, iter(_header_exprs(stmt)))
            after = self.cfg._new_block()
            then_entry = self.cfg._new_block()
            self.cfg._edge(current, then_entry)
            self.cfg._edge(self._body(stmt.body, then_entry), after)
            if stmt.orelse:
                else_entry = self.cfg._new_block()
                self.cfg._edge(current, else_entry)
                self.cfg._edge(self._body(stmt.orelse, else_entry), after)
            else:
                self.cfg._edge(current, after)
            return after
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._loop(stmt, current)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            place(current, stmt, iter(_header_exprs(stmt)))
            return self._body(stmt.body, current)
        if isinstance(stmt, ast.Try) or (
            hasattr(ast, "TryStar") and isinstance(stmt, ast.TryStar)
        ):
            return self._try(stmt, current)
        if isinstance(stmt, ast.Match):
            place(current, stmt, iter(_header_exprs(stmt)))
            after = self.cfg._new_block()
            self.cfg._edge(current, after)  # no case may match
            for case in stmt.cases:
                case_entry = self.cfg._new_block()
                self.cfg._edge(current, case_entry)
                self.cfg._edge(self._body(case.body, case_entry), after)
            return after
        # Simple statements (incl. nested def/class, which are opaque).
        place(current, stmt, iter(_header_exprs(stmt)))
        if isinstance(stmt, _JUMPS):
            if isinstance(stmt, (ast.Return, ast.Raise)):
                self.cfg._edge(current, self.cfg.exit)
            elif self._loops:
                head, after = self._loops[-1]
                self.cfg._edge(
                    current, head if isinstance(stmt, ast.Continue) else after
                )
            return self.cfg._new_block()  # dead until something jumps here
        return current

    def _loop(
        self, stmt: ast.While | ast.For | ast.AsyncFor, current: int
    ) -> int:
        head = self.cfg._new_block()
        self.cfg._edge(current, head)
        self.cfg._place(head, stmt, iter(_header_exprs(stmt)))
        after = self.cfg._new_block()
        body_entry = self.cfg._new_block()
        self.cfg._edge(head, body_entry)
        infinite = (
            isinstance(stmt, ast.While)
            and isinstance(stmt.test, ast.Constant)
            and bool(stmt.test.value)
        )
        self._loops.append((head, after))
        body_exit = self._body(stmt.body, body_entry)
        self._loops.pop()
        self.cfg._edge(body_exit, head)
        if stmt.orelse:
            else_entry = self.cfg._new_block()
            if not infinite:
                self.cfg._edge(head, else_entry)
            self.cfg._edge(self._body(stmt.orelse, else_entry), after)
        elif not infinite:
            self.cfg._edge(head, after)
        return after

    def _try(self, stmt: ast.Try, current: int) -> int:
        body_entry = self.cfg._new_block()
        self.cfg._edge(current, body_entry)
        first_body_block = len(self.cfg.blocks)
        body_exit = self._body(stmt.body, body_entry)
        body_blocks = [body_entry, *range(first_body_block, len(self.cfg.blocks))]

        normal_exits = [body_exit]
        if stmt.orelse:
            else_entry = self.cfg._new_block()
            self.cfg._edge(body_exit, else_entry)
            normal_exits = [self._body(stmt.orelse, else_entry)]

        handler_exits: list[int] = []
        for handler in stmt.handlers:
            handler_entry = self.cfg._new_block()
            # An exception can surface from any protected block.
            for block in body_blocks:
                self.cfg._edge(block, handler_entry)
            if handler.name:
                # The bound exception name is a definition at handler entry.
                binder = ast.Assign(
                    targets=[
                        ast.Name(id=handler.name, ctx=ast.Store(), lineno=handler.lineno, col_offset=handler.col_offset)
                    ],
                    value=ast.Constant(value=None, lineno=handler.lineno, col_offset=handler.col_offset),
                    lineno=handler.lineno,
                    col_offset=handler.col_offset,
                )
                self.cfg._place(handler_entry, binder, iter(()))
            handler_exits.append(self._body(handler.body, handler_entry))

        joins = normal_exits + handler_exits
        if stmt.finalbody:
            finally_entry = self.cfg._new_block()
            for join in joins:
                self.cfg._edge(join, finally_entry)
            return self._body(stmt.finalbody, finally_entry)
        after = self.cfg._new_block()
        for join in joins:
            self.cfg._edge(join, after)
        return after


def build_cfg(func: ast.FunctionDef | ast.AsyncFunctionDef) -> ControlFlowGraph:
    """Build the control-flow graph for one function definition."""
    return _Builder(func).build()


def function_nodes(tree: ast.AST) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    """Every function definition in the tree, outermost first."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node
