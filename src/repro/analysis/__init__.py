"""richlint: AST-based domain-invariant analysis for the RichNote codebase.

Generic linters check style; this package checks the *physics* of the
reproduction.  The pipeline is dense with implicit invariants -- bytes vs
KB vs MB (a d-second preview is d x 20 KB, metadata is 200 B), joules vs
the paper's kappa = 3 kJ/h energy budget, Lyapunov queue updates that must
never mint negative backlog -- and the refund/conservation logic of the
fault-tolerant delivery path makes unit and determinism bugs the dominant
risk class.  richlint parses the tree with :mod:`ast` and enforces rules a
generic linter cannot express:

=========  ================  ==================================================
Code       Name              What it catches
=========  ================  ==================================================
``RL101``  unit-mix          ``+``/``-``/comparison between identifiers whose
                             unit suffixes conflict (``_bytes`` vs ``_kb``,
                             ``_joules`` vs ``_kj``, ``_seconds`` vs ``_hours``)
``RL102``  bare-literal      bare numeric literals passed to budget APIs
                             (``debit``/``credit``/``can_afford``/``replenish``)
``RL201``  global-rng        module-global RNG state (``random.random()``,
                             ``np.random.shuffle``, ``random.seed`` ...)
``RL202``  unseeded-rng      ``random.Random()`` / ``default_rng()`` without a
                             seed argument
``RL203``  wallclock         ``time.time()`` / ``datetime.now()`` inside the
                             deterministic zones (``core/``, ``sim/``,
                             ``experiments/``)
``RL204``  set-iteration     iteration over a ``set`` in scheduling hot paths
                             (``core/``) -- set order is hash-randomized
``RL205``  wallclock-duration  durations computed by differencing wall-clock
                             reads (``time.time() - started``) anywhere; the
                             wall clock steps under NTP/DST, so elapsed-time
                             math needs ``time.monotonic()``
``RL301``  float-eq          ``==``/``!=`` on float-typed utility/budget
                             quantities (exact-zero guards are exempt)
``RL401``  mutable-default   mutable dataclass field defaults
``RL402``  unfrozen-key      unfrozen (hash-less) dataclass instances used as
                             dict/set keys
``RL501``  early-return      a ``return`` inside the debit..credit window of a
                             function marked ``@conserves`` (skips the refund
                             path, breaking ``debited == delivered + refunded
                             + wasted``)
=========  ================  ==================================================

Rule families are selectable as ``R1`` .. ``R5`` (prefix groups).  Findings
are suppressed inline with ``# richlint: ignore[RL204] -- reason`` (same
line or the comment line directly above), or parked in a baseline file so
existing debt does not block CI.

Entry points: ``python -m repro.analysis`` and ``richnote lint``.
"""

from repro.analysis.engine import (
    AnalysisReport,
    Finding,
    analyze_paths,
    analyze_source,
    default_rules,
)
from repro.analysis.markers import conserves

__all__ = [
    "AnalysisReport",
    "Finding",
    "analyze_paths",
    "analyze_source",
    "conserves",
    "default_rules",
]
