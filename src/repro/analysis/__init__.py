"""richlint: AST-based domain-invariant analysis for the RichNote codebase.

Generic linters check style; this package checks the *physics* of the
reproduction.  The pipeline is dense with implicit invariants -- bytes vs
KB vs MB (a d-second preview is d x 20 KB, metadata is 200 B), joules vs
the paper's kappa = 3 kJ/h energy budget, Lyapunov queue updates that must
never mint negative backlog -- and the refund/conservation logic of the
fault-tolerant delivery path makes unit and determinism bugs the dominant
risk class.  richlint parses the tree with :mod:`ast` and enforces rules a
generic linter cannot express:

=========  ================  ==================================================
Code       Name              What it catches
=========  ================  ==================================================
``RL101``  unit-mix          ``+``/``-``/comparison between identifiers whose
                             unit suffixes conflict (``_bytes`` vs ``_kb``,
                             ``_joules`` vs ``_kj``, ``_seconds`` vs ``_hours``)
``RL102``  bare-literal      bare numeric literals passed to budget APIs
                             (``debit``/``credit``/``can_afford``/``replenish``)
``RL201``  global-rng        module-global RNG state (``random.random()``,
                             ``np.random.shuffle``, ``random.seed`` ...)
``RL202``  unseeded-rng      ``random.Random()`` / ``default_rng()`` without a
                             seed argument
``RL203``  wallclock         ``time.time()`` / ``datetime.now()`` inside the
                             deterministic zones (``core/``, ``sim/``,
                             ``experiments/``)
``RL204``  set-iteration     iteration over a ``set`` in scheduling hot paths
                             (``core/``) -- set order is hash-randomized
``RL205``  wallclock-duration  durations computed by differencing wall-clock
                             reads (``time.time() - started``) anywhere; the
                             wall clock steps under NTP/DST, so elapsed-time
                             math needs ``time.monotonic()``
``RL301``  float-eq          ``==``/``!=`` on float-typed utility/budget
                             quantities (exact-zero guards are exempt)
``RL401``  mutable-default   mutable dataclass field defaults
``RL402``  unfrozen-key      unfrozen (hash-less) dataclass instances used as
                             dict/set keys
``RL501``  early-return      a ``return`` inside the debit..credit window of a
                             function marked ``@conserves`` (skips the refund
                             path, breaking ``debited == delivered + refunded
                             + wasted``)
``RL601``  layering          imports that violate the layer order (``core``
                             must not import ``service``, etc.)
``RL701``  blocking-in-async   a known-blocking call (``time.sleep``, ``open``,
                             ``subprocess.*`` ...) reachable inside an ``async
                             def`` -- directly or through a chain of sync
                             project helpers (flow-aware: dead code is ignored)
``RL702``  unawaited-coroutine  a coroutine created but never awaited: a bare
                             ``worker()`` expression statement, or a coroutine
                             assigned to a name that is never read
``RL703``  fire-and-forget-task  ``asyncio.ensure_future(...)`` /
                             ``create_task(...)`` whose handle is discarded --
                             the event loop holds only weak task references,
                             so the task can be garbage-collected mid-flight
``RL704``  await-under-sync-lock  an ``await`` while holding a ``threading``
                             lock (``with lock:`` around an await, or an
                             ``acquire()`` with an await before ``release()``)
``RL705``  unguarded-shared-state  instance state written from two or more
                             task contexts (spawned tasks / async entry
                             points) with no declared write discipline
=========  ================  ==================================================

Rule families are selectable as ``R1`` .. ``R7`` (prefix groups).  Findings
are suppressed inline with ``# richlint: ignore[RL204] -- reason`` (same
line or the comment line directly above), or parked in a baseline file so
existing debt does not block CI.

The R7 family is *flow-aware*: rules consult per-function control-flow
graphs (:mod:`repro.analysis.cfg`) and a cross-module call graph
(:mod:`repro.analysis.callgraph`) built during the index pass, instead of
pattern-matching isolated AST nodes.  RL705 accepts a declaration-site
marker -- ``self.stats = ServiceStats()  # richlint: guarded-by(event-loop)``
-- naming the discipline (an event-loop-confined write set, a lock, a
single-writer queue) that makes the shared writes safe.

Entry points: ``python -m repro.analysis`` and ``richnote lint``.
"""

from repro.analysis.callgraph import CallGraph, build_call_graph
from repro.analysis.cfg import ControlFlowGraph, build_cfg
from repro.analysis.engine import (
    AnalysisReport,
    Finding,
    analyze_paths,
    analyze_source,
    default_rules,
)
from repro.analysis.markers import conserves
from repro.analysis.sarif import render_sarif, write_sarif

__all__ = [
    "AnalysisReport",
    "CallGraph",
    "ControlFlowGraph",
    "Finding",
    "analyze_paths",
    "analyze_source",
    "build_call_graph",
    "build_cfg",
    "conserves",
    "default_rules",
    "render_sarif",
    "write_sarif",
]
