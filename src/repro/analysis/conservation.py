"""R5: conservation markers.

The fault-tolerant delivery path promises byte conservation: over any
run, ``debited == delivered + refunded + wasted``.  The chaos suite
checks the *numbers* at runtime; this rule guards the *shape* of the
code so a refactor cannot silently open a leak.

A function opts in by carrying the :func:`repro.analysis.markers.conserves`
decorator (bare or with the invariant string) or a ``# richlint:
conserves`` comment on its ``def`` line.  ``RL501`` then flags any
``return`` statement in the *debit window*: lexically after the first
``.debit(...)`` call and before the last ``credit``/``refund`` call (or,
when the function never credits, before its final statement).  A return
inside that window exits with budget debited but neither delivered nor
refunded -- exactly the early-return class of bug that breaks
conservation.  Nested function definitions are skipped; a deliberate
early exit can be suppressed with ``# richlint: ignore[RL501] -- reason``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis._names import terminal_name
from repro.analysis.engine import Finding, ModuleInfo, ProjectIndex, Rule

_DEBIT_NAMES = frozenset({"debit"})
_CREDIT_NAMES = frozenset({"credit", "refund"})


def _is_conserving(
    node: ast.FunctionDef | ast.AsyncFunctionDef, module: ModuleInfo
) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if terminal_name(target) == "conserves":
            return True
    return module.has_conserves_comment(node.lineno)


def _walk_function_scope(node: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested defs/lambdas."""
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield child
        yield from _walk_function_scope(child)


def _call_lines(body: list[ast.stmt], names: frozenset[str]) -> list[int]:
    lines: list[int] = []
    for statement in body:
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for node in [statement, *_walk_function_scope(statement)]:
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in names
            ):
                lines.append(node.lineno)
    return lines


class ConservationEarlyReturnRule(Rule):
    code = "RL501"
    name = "early-return"
    summary = "return inside the debit..credit window of a @conserves function"

    def check(self, module: ModuleInfo, index: ProjectIndex) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not _is_conserving(node, module):
                continue
            yield from self._check_function(module, node)

    def _check_function(
        self, module: ModuleInfo, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        debit_lines = _call_lines(node.body, _DEBIT_NAMES)
        if not debit_lines:
            return
        window_start = min(debit_lines)
        credit_lines = _call_lines(node.body, _CREDIT_NAMES)
        final_statement = node.body[-1]
        if credit_lines:
            window_end = max(credit_lines)
        else:
            # No refund path at all: any non-final return after the first
            # debit abandons the accounting.
            window_end = getattr(node, "end_lineno", final_statement.lineno) or (
                final_statement.lineno
            )

        for statement in node.body:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for inner in [statement, *_walk_function_scope(statement)]:
                if not isinstance(inner, ast.Return):
                    continue
                if inner is final_statement:
                    continue  # the function's own terminal return
                if window_start < inner.lineno < window_end:
                    yield self.finding(
                        module,
                        inner,
                        "return inside the debit..credit window of a "
                        "@conserves function: this path exits with budget "
                        "debited but not delivered/refunded, breaking "
                        "debited == delivered + refunded + wasted",
                    )
