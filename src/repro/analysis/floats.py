"""R3: float hygiene.

Utilities, budgets and energy shares are floats produced by long chains
of arithmetic (proportional energy attribution, Lyapunov scaling,
logistic scores).  Exact ``==``/``!=`` on such quantities is a latent
bug: two mathematically equal expressions routinely differ in the last
ulp.  ``RL301`` flags equality comparisons where either operand is

* a non-zero float literal (``if upper == 1.0``), or
* an identifier whose name marks it as a float quantity -- a unit suffix
  (``_bytes``, ``_joules``, ...) or a utility/budget keyword.

Comparisons against a literal ``0``/``0.0`` are exempt: the budget and
queue code floors values at exactly ``0.0`` (``max(0.0, ...)``, the
Lyapunov ``[.]^+`` update), so exact-zero sentinels are well defined.
The fix for a true positive is ``math.isclose`` / an explicit tolerance,
or restructuring to compare exact quantities (indices, ints).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import Finding, ModuleInfo, ProjectIndex, Rule
from repro.analysis.units import UNIT_SUFFIXES

#: Identifier fragments that mark a float-valued domain quantity.
_FLOAT_KEYWORDS = ("utility", "joule", "budget", "fraction", "ratio", "prob")


def _identifier(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _is_float_hinted(node: ast.expr) -> bool:
    identifier = _identifier(node)
    if identifier is None:
        return False
    lowered = identifier.lower()
    if any(lowered.endswith(suffix) for suffix in UNIT_SUFFIXES):
        return True
    return any(keyword in lowered for keyword in _FLOAT_KEYWORDS)


def _is_zero_constant(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, (int, float))
        and not isinstance(node.value, bool)
        and node.value == 0
    )


def _is_nonzero_float_constant(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, float)
        and node.value != 0.0
    )


class FloatEqualityRule(Rule):
    code = "RL301"
    name = "float-eq"
    summary = "exact ==/!= on float-typed utility/budget quantities"

    def check(self, module: ModuleInfo, index: ProjectIndex) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for position, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                pair = (operands[position], operands[position + 1])
                if any(_is_zero_constant(operand) for operand in pair):
                    continue  # exact-zero sentinel: well defined here
                if any(_is_nonzero_float_constant(operand) for operand in pair):
                    yield self.finding(
                        module,
                        node,
                        "exact equality against a float literal; use "
                        "math.isclose or compare an exact quantity",
                    )
                    break
                if any(_is_float_hinted(operand) for operand in pair):
                    yield self.finding(
                        module,
                        node,
                        "exact ==/!= between float-typed domain quantities; "
                        "use math.isclose or an explicit tolerance",
                    )
                    break
