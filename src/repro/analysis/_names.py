"""Shared AST name-resolution helpers for richlint rules.

Rules need to know what ``np.random.shuffle`` *is*, not what it is
spelled as.  :class:`ImportMap` records every import alias in a module;
:func:`resolve_call_target` then canonicalizes a call's function
expression to a dotted path (``numpy.random.shuffle``) regardless of
``import numpy as np`` / ``from numpy import random`` spelling.
"""

from __future__ import annotations

import ast


class ImportMap:
    """Local alias -> canonical dotted module/attribute path."""

    def __init__(self, tree: ast.Module) -> None:
        self.aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    # ``import numpy.random`` binds ``numpy``; with asname
                    # the alias points at the full dotted module.
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self.aliases[local] = target
            elif isinstance(node, ast.ImportFrom):
                if node.level:  # relative imports never shadow stdlib targets
                    continue
                base = node.module or ""
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.aliases[local] = f"{base}.{alias.name}" if base else alias.name

    def canonical(self, dotted: str) -> str:
        """Rewrite the first segment through the alias table."""
        head, _, rest = dotted.partition(".")
        base = self.aliases.get(head)
        if base is None:
            return dotted
        return f"{base}.{rest}" if rest else base


def dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` for a Name/Attribute chain; ``None`` for anything else."""
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))


def resolve_call_target(call: ast.Call, imports: ImportMap) -> str | None:
    """Canonical dotted path of a call's target, or ``None`` if dynamic."""
    raw = dotted_name(call.func)
    if raw is None:
        return None
    return imports.canonical(raw)


def terminal_name(node: ast.expr) -> str | None:
    """The last identifier of a Name/Attribute chain (``a.b.C`` -> ``C``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None
