"""SARIF 2.1.0 emitter for richlint reports.

Static Analysis Results Interchange Format (SARIF) is the lingua franca
consumed by GitHub code scanning, VS Code SARIF viewers, and most result
aggregators.  One richlint run maps to one SARIF ``run``:

- every registered rule (plus the synthetic parse-error rule RL901)
  appears in ``tool.driver.rules`` so viewers can show help text even
  for rules with zero results;
- active findings and parse errors become ``error``-level results;
- inline-suppressed findings are kept as results carrying an
  ``inSource`` suppression with the author's justification, so the
  suppression inventory survives the format conversion;
- baselined findings are kept with ``baselineState: "unchanged"``;
- richlint's line-number-free fingerprints ride along in
  ``partialFingerprints`` under ``richlintFingerprint/v1`` so result
  identity is stable across unrelated edits, mirroring the baseline.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Sequence

from repro.analysis.engine import (
    PARSE_ERROR_CODE,
    AnalysisReport,
    Finding,
    Rule,
    _fingerprints,
    default_rules,
)

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://docs.oasis-open.org/sarif/sarif/v2.1.0/errata01/os/schemas/"
    "sarif-schema-2.1.0.json"
)
FINGERPRINT_KEY = "richlintFingerprint/v1"
TOOL_URI = "https://github.com/richnote/richnote"


def _rule_descriptors(rules: Sequence[Rule]) -> list[dict]:
    descriptors = [
        {
            "id": rule.code,
            "name": rule.name,
            "shortDescription": {"text": rule.summary},
            "defaultConfiguration": {"level": "error"},
        }
        for rule in rules
    ]
    descriptors.append(
        {
            "id": PARSE_ERROR_CODE,
            "name": "parse-error",
            "shortDescription": {"text": "file could not be parsed"},
            "defaultConfiguration": {"level": "error"},
        }
    )
    return descriptors


def _result(
    finding: Finding,
    rule_index: dict[str, int],
    fingerprint: str | None,
) -> dict:
    result = {
        "ruleId": finding.code,
        "level": "error",
        "message": {"text": f"{finding.name}: {finding.message}"},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path.replace("\\", "/"),
                    },
                    # SARIF columns are 1-based; richlint's are 0-based.
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.col + 1,
                    },
                }
            }
        ],
    }
    if finding.code in rule_index:
        result["ruleIndex"] = rule_index[finding.code]
    if fingerprint is not None:
        result["partialFingerprints"] = {FINGERPRINT_KEY: fingerprint}
    return result


def render_sarif(
    report: AnalysisReport, rules: Sequence[Rule] | None = None
) -> dict:
    """Build a SARIF 2.1.0 log ``dict`` for one analysis report."""
    rules = list(default_rules() if rules is None else rules)
    descriptors = _rule_descriptors(rules)
    rule_index = {desc["id"]: i for i, desc in enumerate(descriptors)}

    def prints(findings: Sequence[Finding]) -> list[str]:
        return _fingerprints(findings, report.modules_by_path)

    results: list[dict] = []
    for finding in report.parse_errors:
        results.append(_result(finding, rule_index, None))
    for finding, fingerprint in zip(report.findings, prints(report.findings)):
        results.append(_result(finding, rule_index, fingerprint))
    suppressed = [finding for finding, _ in report.suppressed]
    for (finding, reason), fingerprint in zip(
        report.suppressed, prints(suppressed)
    ):
        result = _result(finding, rule_index, fingerprint)
        result["level"] = "note"
        result["suppressions"] = [
            {"kind": "inSource", "justification": reason or "unspecified"}
        ]
        results.append(result)
    for finding, fingerprint in zip(
        report.baselined, prints(report.baselined)
    ):
        result = _result(finding, rule_index, fingerprint)
        result["level"] = "note"
        result["baselineState"] = "unchanged"
        results.append(result)

    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "richlint",
                        "informationUri": TOOL_URI,
                        "rules": descriptors,
                    }
                },
                "columnKind": "utf16CodeUnits",
                "results": results,
            }
        ],
    }


def write_sarif(
    path: Path | str,
    report: AnalysisReport,
    rules: Sequence[Rule] | None = None,
) -> None:
    log = render_sarif(report, rules)
    Path(path).write_text(
        json.dumps(log, indent=2) + "\n", encoding="utf-8"
    )
