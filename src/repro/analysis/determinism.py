"""R2: determinism.

Bit-reproducible runs are the contract of the whole reproduction: every
figure is regenerated from a seed, and the chaos suite replays fault
schedules from fixed seeds.  Four rules guard that contract:

* ``RL201`` -- calls that read or mutate *module-global* RNG state
  (``random.random()``, ``random.seed()``, ``np.random.shuffle`` ...).
  Global streams are shared across call sites, so unrelated code reorders
  draws; every consumer must take an explicit ``random.Random(seed)`` /
  ``default_rng(seed)`` stream instead.
* ``RL202`` -- ``random.Random()`` / ``np.random.default_rng()`` with no
  seed argument: a fresh OS-entropy stream that differs run to run.
* ``RL203`` -- wall-clock reads (``time.time()``, ``datetime.now()``)
  inside the deterministic zones ``core/``, ``sim/``, ``experiments/``:
  simulation time is the only clock there.
* ``RL204`` -- iterating a ``set`` in scheduling hot paths (``core/``):
  str/object hashes are randomized per process, so iteration order -- and
  therefore tie-breaks in selection -- would differ between runs.
  Iterate a list, or ``sorted(...)`` the set first.
* ``RL205`` -- *durations* computed by differencing wall-clock reads
  (``time.time() - started``), anywhere in the tree.  The wall clock
  steps under NTP corrections and DST changes, so elapsed-time math must
  use ``time.monotonic()`` / ``time.perf_counter()`` (or the service's
  ``Clock`` abstraction) instead.  Unlike RL203 this rule is unscoped:
  a latency measurement is wrong in *any* layer.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis._names import ImportMap, resolve_call_target
from repro.analysis.engine import Finding, ModuleInfo, ProjectIndex, Rule

#: random-module constructors that accept an explicit seed.
_SEEDABLE = {"random.Random", "numpy.random.default_rng"}

#: numpy.random attributes that are fine to call/construct explicitly.
_NUMPY_EXPLICIT = {
    "numpy.random.default_rng",
    "numpy.random.Generator",
    "numpy.random.SeedSequence",
    "numpy.random.PCG64",
    "numpy.random.Philox",
    "numpy.random.MT19937",
    "numpy.random.BitGenerator",
}

_WALLCLOCK = {
    "time.time",
    "time.time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}


def _has_seed_argument(call: ast.Call) -> bool:
    return bool(call.args) or bool(call.keywords)


class GlobalRngRule(Rule):
    code = "RL201"
    name = "global-rng"
    summary = "call into module-global RNG state"

    def check(self, module: ModuleInfo, index: ProjectIndex) -> Iterator[Finding]:
        imports = ImportMap(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = resolve_call_target(node, imports)
            if target is None:
                continue
            if target == "random.SystemRandom":
                yield self.finding(
                    module,
                    node,
                    "random.SystemRandom draws OS entropy and can never be "
                    "seeded; use random.Random(seed)",
                )
            elif target.startswith("random.") and target not in _SEEDABLE:
                yield self.finding(
                    module,
                    node,
                    f"{target}() uses the interpreter-global RNG stream; "
                    "thread an explicit random.Random(seed) through instead",
                )
            elif (
                target.startswith("numpy.random.")
                and target not in _NUMPY_EXPLICIT
            ):
                yield self.finding(
                    module,
                    node,
                    f"{target}() uses numpy's global RNG state; use "
                    "np.random.default_rng(seed)",
                )


class UnseededRngRule(Rule):
    code = "RL202"
    name = "unseeded-rng"
    summary = "RNG constructed without an explicit seed"

    def check(self, module: ModuleInfo, index: ProjectIndex) -> Iterator[Finding]:
        imports = ImportMap(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = resolve_call_target(node, imports)
            if target in _SEEDABLE and not _has_seed_argument(node):
                yield self.finding(
                    module,
                    node,
                    f"{target}() without a seed draws OS entropy; pass an "
                    "explicit seed so runs replay",
                )


class WallClockRule(Rule):
    code = "RL203"
    name = "wallclock"
    summary = "wall-clock read inside a deterministic zone"
    scope = ("core", "sim", "experiments")

    def check(self, module: ModuleInfo, index: ProjectIndex) -> Iterator[Finding]:
        imports = ImportMap(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = resolve_call_target(node, imports)
            if target in _WALLCLOCK:
                yield self.finding(
                    module,
                    node,
                    f"{target}() reads the wall clock inside a deterministic "
                    "zone; use simulation time (the `now` parameter) instead",
                )


class WallClockDurationRule(Rule):
    code = "RL205"
    name = "wallclock-duration"
    summary = "duration computed by differencing the wall clock"

    def check(self, module: ModuleInfo, index: ProjectIndex) -> Iterator[Finding]:
        imports = ImportMap(module.tree)

        def is_wallclock_call(node: ast.expr) -> bool:
            return (
                isinstance(node, ast.Call)
                and resolve_call_target(node, imports) in _WALLCLOCK
            )

        for _, body in _scopes(module.tree):
            statements = [
                statement
                for statement in body
                if not isinstance(
                    statement, (ast.FunctionDef, ast.AsyncFunctionDef)
                )
            ]
            # Pass 1: names bound to a wall-clock read in this scope.
            wall_names: set[str] = set()
            for statement in statements:
                for node in _walk_same_scope(statement):
                    if isinstance(node, ast.Assign) and is_wallclock_call(
                        node.value
                    ):
                        for target in node.targets:
                            if isinstance(target, ast.Name):
                                wall_names.add(target.id)
                    elif (
                        isinstance(node, ast.AnnAssign)
                        and isinstance(node.target, ast.Name)
                        and node.value is not None
                        and is_wallclock_call(node.value)
                    ):
                        wall_names.add(node.target.id)
            # Pass 2: any subtraction touching a wall-clock read or one of
            # those names is duration math on a steppable clock.
            for statement in statements:
                for node in _walk_same_scope(statement):
                    if not (
                        isinstance(node, ast.BinOp)
                        and isinstance(node.op, ast.Sub)
                    ):
                        continue
                    for operand in (node.left, node.right):
                        if is_wallclock_call(operand) or (
                            isinstance(operand, ast.Name)
                            and operand.id in wall_names
                        ):
                            yield self.finding(
                                module,
                                node,
                                "duration computed from the wall clock, "
                                "which steps under NTP/DST; use "
                                "time.monotonic() or time.perf_counter() "
                                "for elapsed-time math",
                            )
                            break


class _SetNameCollector(ast.NodeVisitor):
    """Names bound to set values within one scope (no nested functions)."""

    def __init__(self) -> None:
        self.names: set[str] = set()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:  # noqa: N802
        pass  # do not descend: nested scopes track their own bindings

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]
    visit_Lambda = visit_FunctionDef  # type: ignore[assignment]

    def visit_Assign(self, node: ast.Assign) -> None:  # noqa: N802
        if _is_set_expr(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.names.add(target.id)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:  # noqa: N802
        if isinstance(node.target, ast.Name) and (
            _is_set_expr(node.value) or _is_set_annotation(node.annotation)
        ):
            self.names.add(node.target.id)
        self.generic_visit(node)


def _is_set_expr(node: ast.expr | None) -> bool:
    if node is None:
        return False
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in {"set", "frozenset"}
    )


def _is_set_annotation(node: ast.expr | None) -> bool:
    if node is None:
        return False
    target = node
    if isinstance(target, ast.Subscript):
        target = target.value
    if isinstance(target, ast.Name):
        return target.id in {"set", "frozenset", "Set", "FrozenSet", "AbstractSet"}
    if isinstance(target, ast.Attribute):
        return target.attr in {"Set", "FrozenSet", "AbstractSet"}
    return False


def _scopes(tree: ast.Module) -> Iterator[tuple[ast.AST, list[ast.stmt]]]:
    yield tree, tree.body
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, node.body


class SetIterationRule(Rule):
    code = "RL204"
    name = "set-iteration"
    summary = "iteration over a set in a scheduling hot path"
    scope = ("core",)

    def check(self, module: ModuleInfo, index: ProjectIndex) -> Iterator[Finding]:
        for scope_node, body in _scopes(module.tree):
            collector = _SetNameCollector()
            for statement in body:
                collector.visit(statement)
            if isinstance(scope_node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for argument in [
                    *scope_node.args.posonlyargs,
                    *scope_node.args.args,
                    *scope_node.args.kwonlyargs,
                ]:
                    if _is_set_annotation(argument.annotation):
                        collector.names.add(argument.arg)
            yield from self._check_scope(module, body, collector.names)

    def _check_scope(
        self, module: ModuleInfo, body: list[ast.stmt], set_names: set[str]
    ) -> Iterator[Finding]:
        for statement in body:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # nested scopes are visited by _scopes separately
            for node in _walk_same_scope(statement):
                iters: list[ast.expr] = []
                if isinstance(node, (ast.For, ast.AsyncFor)):
                    iters.append(node.iter)
                elif isinstance(
                    node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
                ):
                    iters.extend(gen.iter for gen in node.generators)
                for iterable in iters:
                    if _is_set_expr(iterable) or (
                        isinstance(iterable, ast.Name) and iterable.id in set_names
                    ):
                        yield self.finding(
                            module,
                            iterable,
                            "iterating a set in a scheduling hot path: hash "
                            "randomization makes the order differ between "
                            "runs; iterate a list or sorted(...) instead",
                        )


def _walk_same_scope(node: ast.AST) -> Iterator[ast.AST]:
    yield node
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield from _walk_same_scope(child)
