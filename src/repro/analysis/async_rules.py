"""R7: async safety for the live service's event-loop hot path.

The live notification pipeline (:mod:`repro.service`) is an asyncio
program whose p99 delivery latency depends on the event loop never
stalling and no task silently vanishing.  Five flow-aware rules guard
it, built on :mod:`repro.analysis.cfg` (per-function CFGs + reaching
definitions) and :mod:`repro.analysis.callgraph` (the cross-module
pass-1 index):

* ``RL701`` -- a blocking call (``time.sleep``, sync ``open``,
  ``subprocess``, sockets ...) *reachable* inside an ``async def``.
  Calls to project functions are resolved through the call graph, so a
  sync helper two modules away that ends in ``time.sleep`` also trips,
  with the call chain in the message.  Dead code after a ``return`` is
  not flagged -- that is the CFG earning its keep.
* ``RL702`` -- a coroutine created but never awaited: a bare-expression
  call to an ``async def`` (or asyncio awaitable factory), or a
  coroutine assigned to a name that is never used again.  The coroutine
  object is garbage-collected without running; the work silently never
  happens.
* ``RL703`` -- fire-and-forget task: ``asyncio.ensure_future(...)`` /
  ``create_task(...)`` as a bare expression statement.  The event loop
  keeps only a *weak* reference to tasks, so a discarded handle can be
  garbage-collected mid-flight -- deliveries evaporate under load.
  Retain the handle (``self._delivery_tasks.append(...)``).
* ``RL704`` -- ``await`` while holding a synchronous lock
  (``threading.Lock`` et al.), either inside ``with lock:`` or on a CFG
  path between ``lock.acquire()`` and ``lock.release()``.  A sync lock
  held across a suspension point blocks every other task that touches
  it -- the textbook asyncio deadlock.
* ``RL705`` -- shared mutable ``self.<attr>`` state written from two or
  more concurrent task contexts of the same class (spawned task roots
  and externally-driven ``async def`` entry points, per the call graph)
  without a ``# richlint: guarded-by(<name>)`` annotation on any of its
  write sites.  The annotation names the discipline that serializes the
  writes (``event-loop``, a specific lock, ...) -- the async twin of the
  ``@conserves`` marker.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis._names import ImportMap, terminal_name
from repro.analysis.callgraph import (
    ASYNC_STDLIB,
    TASK_SPAWNERS,
    is_blocking_target,
    iter_functions,
    module_dotted,
    own_nodes,
    resolve_target,
)
from repro.analysis.cfg import ControlFlowGraph, build_cfg
from repro.analysis.engine import Finding, ModuleInfo, ProjectIndex, Rule

#: Constructors of locks that block the calling *thread* (not the task).
_SYNC_LOCK_CTORS = frozenset(
    {
        "threading.Lock",
        "threading.RLock",
        "threading.Semaphore",
        "threading.BoundedSemaphore",
        "threading.Condition",
        "multiprocessing.Lock",
        "multiprocessing.RLock",
        "_thread.allocate_lock",
    }
)

#: Method names that mutate their receiver in place.
_MUTATORS = frozenset(
    {
        "append",
        "appendleft",
        "extend",
        "insert",
        "add",
        "remove",
        "discard",
        "pop",
        "popleft",
        "popitem",
        "clear",
        "update",
        "setdefault",
    }
)

_GUARDED_BY_RE = re.compile(
    r"#\s*richlint:\s*guarded-by\(\s*(?P<name>[^)]+?)\s*\)"
)


def parse_guards(lines: list[str]) -> dict[int, str]:
    """Line -> guard name for every ``# richlint: guarded-by(...)``.

    Like suppressions, a guard on a pure comment line also covers the
    line directly below it.
    """
    guards: dict[int, str] = {}
    for number, text in enumerate(lines, start=1):
        match = _GUARDED_BY_RE.search(text)
        if match is None:
            continue
        name = match.group("name").strip()
        guards[number] = name
        if text.lstrip().startswith("#"):
            guards.setdefault(number + 1, name)
    return guards


class _ModuleContext:
    """Per-module resolution state shared by the R7 rules."""

    def __init__(self, module: ModuleInfo) -> None:
        self.module = module
        self.dotted = module_dotted(module.relpath)
        self.imports = ImportMap(module.tree)
        self.local_names = frozenset(
            node.name
            for node in module.tree.body
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            )
        )
        #: (class name, attr) -> True for ``self.X = threading.Lock()``
        #: style bindings anywhere in the class body.
        self.class_locks: set[tuple[str, str]] = set()
        for node in module.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            for sub in ast.walk(node):
                if not isinstance(sub, ast.Assign):
                    continue
                if not self.is_sync_lock_ctor(sub.value):
                    continue
                for target in sub.targets:
                    attr = _self_attr_root(target)
                    if attr is not None:
                        self.class_locks.add((node.name, attr))

    def resolve(self, call: ast.Call, class_name: str | None) -> str | None:
        return resolve_target(
            call, self.imports, self.dotted, class_name, self.local_names
        )

    def is_sync_lock_ctor(self, expr: ast.expr) -> bool:
        return (
            isinstance(expr, ast.Call)
            and self.resolve(expr, None) in _SYNC_LOCK_CTORS
        )

    def is_sync_lock(
        self,
        expr: ast.expr,
        class_name: str | None,
        cfg: ControlFlowGraph,
        assigns: dict[int, ast.stmt],
    ) -> bool:
        """Whether ``expr`` evaluates to a synchronous lock here.

        Three resolutions, in order: a direct constructor call, a local
        name whose *reaching definitions* include a lock construction
        (the reaching-defs analysis doing real work), or ``self.X``
        bound to a lock anywhere in the enclosing class.
        """
        if self.is_sync_lock_ctor(expr):
            return True
        if isinstance(expr, ast.Name):
            for definition in cfg.definitions_reaching(expr):
                stmt = assigns.get(definition.site)
                if (
                    isinstance(stmt, ast.Assign)
                    and self.is_sync_lock_ctor(stmt.value)
                ):
                    return True
            return False
        attr = _self_attr_root(expr)
        return (
            attr is not None
            and expr_is_simple_self_attr(expr)
            and class_name is not None
            and (class_name, attr) in self.class_locks
        )


def expr_is_simple_self_attr(expr: ast.expr) -> bool:
    return (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
    )


def _self_attr_root(node: ast.expr) -> str | None:
    """The first attribute after ``self`` in any chain rooted at it.

    ``self.stats.ingested`` -> ``stats``; ``self._q[k]`` -> ``_q``;
    anything not rooted at ``self`` -> None.
    """
    current = node
    attr: str | None = None
    while True:
        if isinstance(current, ast.Attribute):
            attr = current.attr
            current = current.value
        elif isinstance(current, ast.Subscript):
            current = current.value
        elif isinstance(current, ast.Name):
            return attr if current.id == "self" else None
        else:
            return None


def _assign_sites(func: ast.FunctionDef | ast.AsyncFunctionDef) -> dict[int, ast.stmt]:
    """id(stmt) -> stmt for the function's own statements (def-site lookup)."""
    sites: dict[int, ast.stmt] = {}
    for node in own_nodes(func):
        if isinstance(node, ast.stmt):
            sites[id(node)] = node
    for stmt in func.body:
        sites[id(stmt)] = stmt
    return sites


def _own_calls(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterator[ast.Call]:
    for node in own_nodes(func):
        if isinstance(node, ast.Call):
            yield node


class BlockingCallInAsyncRule(Rule):
    code = "RL701"
    name = "blocking-in-async"
    summary = "blocking call reachable inside an async def"

    def check(self, module: ModuleInfo, index: ProjectIndex) -> Iterator[Finding]:
        context = _ModuleContext(module)
        for func, class_name in iter_functions(module.tree):
            if not isinstance(func, ast.AsyncFunctionDef):
                continue
            cfg = build_cfg(func)
            for call in _own_calls(func):
                if not cfg.is_reachable(call):
                    continue
                target = context.resolve(call, class_name)
                if target is None:
                    continue
                if is_blocking_target(target):
                    yield self.finding(
                        module,
                        call,
                        f"{target}() blocks the event loop inside async def "
                        f"{func.name}(); every other task stalls behind it -- "
                        "use the asyncio equivalent (asyncio.sleep, "
                        "asyncio.to_thread, aiofiles ...)",
                    )
                    continue
                info = index.calls.lookup(target)
                if info is None or info.is_async:
                    continue
                chain = index.calls.blocking_chain(target)
                if chain is not None:
                    yield self.finding(
                        module,
                        call,
                        f"call into {target}() blocks the event loop inside "
                        f"async def {func.name}() via "
                        f"{' -> '.join(chain)}; run it in a worker "
                        "(asyncio.to_thread) or make the chain async",
                    )


class UnawaitedCoroutineRule(Rule):
    code = "RL702"
    name = "unawaited-coroutine"
    summary = "coroutine created but never awaited"

    def _is_coroutine_call(
        self, call: ast.Call, context: _ModuleContext,
        class_name: str | None, index: ProjectIndex,
    ) -> str | None:
        target = context.resolve(call, class_name)
        if target is None:
            return None
        if target in ASYNC_STDLIB or index.calls.is_async(target):
            return target
        return None

    def check(self, module: ModuleInfo, index: ProjectIndex) -> Iterator[Finding]:
        context = _ModuleContext(module)
        for func, class_name in iter_functions(module.tree):
            loaded_names = {
                node.id
                for node in ast.walk(func)
                if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load)
            }
            for node in own_nodes(func):
                if isinstance(node, ast.Expr) and isinstance(
                    node.value, ast.Call
                ):
                    target = self._is_coroutine_call(
                        node.value, context, class_name, index
                    )
                    if target is not None:
                        yield self.finding(
                            module,
                            node,
                            f"{target}() returns a coroutine that is never "
                            "awaited: the call builds the coroutine object "
                            "and discards it, so the body never runs -- "
                            "await it or spawn it as a task",
                        )
                elif (
                    isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and isinstance(node.value, ast.Call)
                ):
                    name = node.targets[0].id
                    target = self._is_coroutine_call(
                        node.value, context, class_name, index
                    )
                    if target is not None and name not in loaded_names:
                        yield self.finding(
                            module,
                            node,
                            f"coroutine {target}() is assigned to "
                            f"{name!r} but {name!r} is never used: the "
                            "coroutine is garbage-collected without "
                            "running -- await it or pass it to a task",
                        )


class FireAndForgetTaskRule(Rule):
    code = "RL703"
    name = "fire-and-forget-task"
    summary = "task spawned as a bare expression; its handle is discarded"

    def check(self, module: ModuleInfo, index: ProjectIndex) -> Iterator[Finding]:
        context = _ModuleContext(module)
        for func, class_name in iter_functions(module.tree):
            for node in own_nodes(func):
                if not (
                    isinstance(node, ast.Expr)
                    and isinstance(node.value, ast.Call)
                ):
                    continue
                call = node.value
                target = context.resolve(call, class_name)
                spawner = (
                    target in TASK_SPAWNERS
                    or terminal_name(call.func) in ("create_task", "ensure_future")
                )
                if spawner:
                    label = target or terminal_name(call.func)
                    yield self.finding(
                        module,
                        node,
                        f"{label}(...) spawns a task but discards its "
                        "handle; the event loop holds only a weak "
                        "reference, so the task can be garbage-collected "
                        "mid-flight -- retain it (e.g. append to a task "
                        "list) and await/reap it later",
                    )


class AwaitUnderSyncLockRule(Rule):
    code = "RL704"
    name = "await-under-sync-lock"
    summary = "await while holding a synchronous (threading) lock"

    def check(self, module: ModuleInfo, index: ProjectIndex) -> Iterator[Finding]:
        context = _ModuleContext(module)
        for func, class_name in iter_functions(module.tree):
            if not isinstance(func, ast.AsyncFunctionDef):
                continue
            cfg = build_cfg(func)
            assigns = _assign_sites(func)
            yield from self._with_blocks(module, context, func, class_name, cfg, assigns)
            yield from self._acquire_paths(module, context, func, class_name, cfg, assigns)

    def _with_blocks(self, module, context, func, class_name, cfg, assigns):
        for node in own_nodes(func):
            if not isinstance(node, ast.With):
                continue
            held = [
                item.context_expr
                for item in node.items
                if context.is_sync_lock(
                    item.context_expr, class_name, cfg, assigns
                )
            ]
            if not held:
                continue
            if any(
                isinstance(inner, ast.Await)
                for stmt in node.body
                for inner in _walk_no_nested(stmt)
            ):
                lock_src = ast.unparse(held[0])
                yield self.finding(
                    module,
                    node,
                    f"await inside `with {lock_src}:`: a synchronous lock "
                    "held across a suspension point stalls every task "
                    "that touches it -- use asyncio.Lock, or release "
                    "before awaiting",
                )

    def _acquire_paths(self, module, context, func, class_name, cfg, assigns):
        acquires: list[tuple[ast.stmt, ast.Call, str]] = []
        for node in own_nodes(func):
            if not (
                isinstance(node, ast.Expr)
                and isinstance(node.value, ast.Call)
                and isinstance(node.value.func, ast.Attribute)
                and node.value.func.attr == "acquire"
            ):
                continue
            base = node.value.func.value
            if context.is_sync_lock(base, class_name, cfg, assigns):
                acquires.append((node, node.value, ast.unparse(base)))
        for stmt, call, base_src in acquires:
            if self._await_while_held(stmt, base_src, cfg):
                yield self.finding(
                    module,
                    stmt,
                    f"await on a path between {base_src}.acquire() and "
                    f"{base_src}.release(): the synchronous lock stays "
                    "held across the suspension -- use asyncio.Lock, or "
                    "release before awaiting",
                )

    def _await_while_held(
        self, acquire_stmt: ast.stmt, base_src: str, cfg: ControlFlowGraph
    ) -> bool:
        """BFS from the acquire block until matching ``release()`` blocks."""
        start = cfg.block_of(acquire_stmt)
        if start is None:
            return False

        def releases(block_index: int) -> int | None:
            """Line of the first matching release in the block, if any."""
            for stmt in cfg.blocks[block_index].statements:
                for node in _walk_no_nested(stmt):
                    if (
                        isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr == "release"
                        and ast.unparse(node.func.value) == base_src
                    ):
                        return node.lineno
            return None

        seen = {start}
        frontier = [start]
        while frontier:
            index = frontier.pop()
            released_at = releases(index)
            low = acquire_stmt.lineno if index == start else 0
            high = released_at if released_at is not None else float("inf")
            for stmt in cfg.blocks[index].statements:
                for node in _walk_no_nested(stmt):
                    if (
                        isinstance(node, ast.Await)
                        and low < node.lineno
                        and node.lineno <= high
                    ):
                        return True
            if released_at is not None:
                continue  # lock released: do not cross into successors
            for successor in cfg.blocks[index].successors:
                if successor not in seen:
                    seen.add(successor)
                    frontier.append(successor)
        return False


class UnguardedSharedStateRule(Rule):
    code = "RL705"
    name = "unguarded-shared-state"
    summary = "shared service state written from multiple tasks, no guard marker"

    def check(self, module: ModuleInfo, index: ProjectIndex) -> Iterator[Finding]:
        context = _ModuleContext(module)
        guards = parse_guards(module.lines)
        for node in module.tree.body:
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(module, context, index, node, guards)

    def _check_class(self, module, context, index, cls, guards):
        prefix = f"{context.dotted}.{cls.name}."
        infos = index.calls.class_methods(module.relpath, cls.name)
        if not infos:
            return
        by_name = {info.name: info for info in infos}
        method_nodes = {
            child.name: child
            for child in cls.body
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
        }

        def suffix(qualname: str) -> str | None:
            return qualname[len(prefix):] if qualname.startswith(prefix) else None

        spawned = {
            name
            for info in infos
            for name in map(suffix, info.spawns)
            if name in by_name
        }
        called_by_others = {
            name
            for info in infos
            for name in (suffix(call.target) for call in info.calls)
            if name in by_name and name != info.name
        }
        async_entries = {
            info.name
            for info in infos
            if info.is_async and info.name not in called_by_others
        }
        roots = spawned | async_entries
        if len(roots) < 2:
            return

        reach: dict[str, set[str]] = {}
        for root in roots:
            seen = {root}
            frontier = [root]
            while frontier:
                current = frontier.pop()
                info = by_name.get(current)
                if info is None:
                    continue
                for call in info.calls:
                    callee = suffix(call.target)
                    if callee in by_name and callee not in seen:
                        seen.add(callee)
                        frontier.append(callee)
            reach[root] = seen

        # (attr) -> [(method, first write stmt)], plus guard detection over
        # every write site in the class (including __init__).
        writes: dict[str, dict[str, ast.stmt]] = {}
        guarded: dict[str, str] = {}
        for name, func in method_nodes.items():
            for stmt, attr in _self_writes(func):
                guard = guards.get(stmt.lineno)
                if guard is not None:
                    guarded.setdefault(attr, guard)
                writes.setdefault(attr, {}).setdefault(name, stmt)

        for attr in sorted(writes):
            if attr in guarded:
                continue
            writers = writes[attr]
            contexts = sorted(
                root for root in roots if reach[root] & set(writers)
            )
            if len(contexts) < 2:
                continue
            for method_name in sorted(writers):
                if not any(method_name in reach[root] for root in roots):
                    continue  # construction-time writes (__init__ etc.)
                yield self.finding(
                    module,
                    writers[method_name],
                    f"self.{attr} is written from {len(contexts)} concurrent "
                    f"task contexts ({', '.join(contexts)}) with no guard "
                    "annotation; serialize access or mark the write site "
                    "with `# richlint: guarded-by(<discipline>)`",
                )


def _walk_no_nested(node: ast.AST) -> Iterator[ast.AST]:
    """Walk a statement without descending into nested function bodies."""
    yield node
    for child in ast.iter_child_nodes(node):
        if isinstance(
            child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)
        ):
            continue
        yield from _walk_no_nested(child)


def _self_writes(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterator[tuple[ast.stmt, str]]:
    """(statement, root attr) for every write to ``self.<attr>...``."""
    for node in own_nodes(func):
        if not isinstance(node, ast.stmt):
            continue
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                for leaf in _unpack_targets(target):
                    attr = _self_attr_root(leaf)
                    if attr is not None:
                        yield node, attr
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                attr = _self_attr_root(target)
                if attr is not None:
                    yield node, attr
        elif isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
            call = node.value
            if (
                isinstance(call.func, ast.Attribute)
                and call.func.attr in _MUTATORS
            ):
                attr = _self_attr_root(call.func.value)
                if attr is not None:
                    yield node, attr


def _unpack_targets(target: ast.expr) -> Iterator[ast.expr]:
    if isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _unpack_targets(element)
    elif isinstance(target, ast.Starred):
        yield from _unpack_targets(target.value)
    else:
        yield target
