"""Runtime-inert markers that richlint recognizes in the AST.

This module must stay dependency-free (it is imported by ``core/``), and
the decorators must be zero-cost at runtime: they only exist so the
analyzer -- and human readers -- can see which functions promise an
accounting invariant.
"""

from __future__ import annotations

from typing import Callable, TypeVar, overload

F = TypeVar("F", bound=Callable)


@overload
def conserves(invariant: F) -> F: ...
@overload
def conserves(invariant: str) -> Callable[[F], F]: ...


def conserves(invariant):
    """Mark a function as *conserving*: every debit it performs is matched
    by delivery, refund, or waste accounting on every exit path.

    Usable bare (``@conserves``) or with the invariant spelled out for
    documentation (``@conserves("debited == delivered + refunded +
    wasted")``).  richlint rule ``RL501`` flags any ``return`` statement
    added between the function's first ``debit`` call and its last
    ``credit``/``refund`` call -- the lexical window in which an early
    return would strand debited budget.
    """
    if callable(invariant):
        return invariant

    def mark(fn: F) -> F:
        return fn

    return mark
