"""richlint's rule engine: file loading, suppressions, baseline, dispatch.

The engine runs in two passes.  Pass 1 parses every target file and builds
a project-wide index (currently: which dataclasses are declared where, and
whether they are hashable), so rules can reason across modules.  Pass 2
runs each enabled rule over each module and filters the raw findings
through inline suppressions and the baseline file.
"""

from __future__ import annotations

import ast
import fnmatch
import hashlib
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.callgraph import CallGraph

#: Rule code for files the analyzer itself cannot parse.
PARSE_ERROR_CODE = "RL901"

_SUPPRESS_RE = re.compile(
    r"#\s*richlint:\s*ignore"
    r"(?:\[(?P<codes>[A-Za-z0-9_,\- ]+)\])?"
    r"(?:\s*--\s*(?P<reason>.*))?"
)

_CONSERVES_COMMENT_RE = re.compile(r"#\s*richlint:\s*conserves\b")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    code: str
    name: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: {self.code} [{self.name}] {self.message}"


@dataclass(frozen=True)
class DataclassInfo:
    """Project-index entry for one ``@dataclass`` declaration."""

    name: str
    path: str
    line: int
    frozen: bool
    eq: bool

    @property
    def hashable(self) -> bool:
        # dataclass semantics: eq=True (default) without frozen=True sets
        # __hash__ = None; eq=False keeps identity hashing.
        return self.frozen or not self.eq


@dataclass
class ProjectIndex:
    """Cross-module facts collected in pass 1."""

    dataclasses: dict[str, DataclassInfo] = field(default_factory=dict)
    #: Project call graph (async-ness, blocking-ness, task spawns per
    #: function); always populated by :func:`build_index`.
    call_graph: "CallGraph | None" = None

    @property
    def calls(self) -> "CallGraph":
        if self.call_graph is None:  # pragma: no cover - build_index sets it
            raise RuntimeError("ProjectIndex built without a call graph")
        return self.call_graph


@dataclass
class Suppression:
    codes: frozenset[str] | None  # None = all rules
    reason: str


@dataclass
class ModuleInfo:
    """One parsed source file plus everything rules need to inspect it."""

    path: Path
    relpath: str
    source: str
    lines: list[str]
    tree: ast.Module
    suppressions: dict[int, Suppression] = field(default_factory=dict)

    @property
    def parts(self) -> tuple[str, ...]:
        return Path(self.relpath).parts

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def has_conserves_comment(self, lineno: int) -> bool:
        return bool(_CONSERVES_COMMENT_RE.search(self.line_text(lineno)))


class Rule:
    """Base class: subclasses set the class vars and implement :meth:`check`.

    ``scope`` restricts a rule to files whose relative path contains one of
    the named directory parts (e.g. ``("core", "sim")``); ``None`` means
    the rule applies everywhere.
    """

    code: str = "RL000"
    name: str = "abstract"
    summary: str = ""
    scope: tuple[str, ...] | None = None

    def applies_to(self, module: ModuleInfo) -> bool:
        if self.scope is None:
            return True
        parts = set(module.parts)
        return any(part in parts for part in self.scope)

    def check(self, module: ModuleInfo, index: ProjectIndex) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, module: ModuleInfo, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            code=self.code,
            name=self.name,
            path=module.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


def default_rules() -> list[Rule]:
    """Every shipped rule, in code order."""
    # Imported here so ``engine`` has no import-time dependency on the rule
    # modules (they import ``engine`` for the base class).
    from repro.analysis.async_rules import (
        AwaitUnderSyncLockRule,
        BlockingCallInAsyncRule,
        FireAndForgetTaskRule,
        UnawaitedCoroutineRule,
        UnguardedSharedStateRule,
    )
    from repro.analysis.conservation import ConservationEarlyReturnRule
    from repro.analysis.dataclass_rules import MutableDefaultRule, UnfrozenKeyRule
    from repro.analysis.determinism import (
        GlobalRngRule,
        SetIterationRule,
        UnseededRngRule,
        WallClockDurationRule,
        WallClockRule,
    )
    from repro.analysis.floats import FloatEqualityRule
    from repro.analysis.layering import LayeringRule
    from repro.analysis.units import BareLiteralBudgetRule, UnitMixRule

    return [
        UnitMixRule(),
        BareLiteralBudgetRule(),
        GlobalRngRule(),
        UnseededRngRule(),
        WallClockRule(),
        SetIterationRule(),
        WallClockDurationRule(),
        FloatEqualityRule(),
        MutableDefaultRule(),
        UnfrozenKeyRule(),
        ConservationEarlyReturnRule(),
        LayeringRule(),
        BlockingCallInAsyncRule(),
        UnawaitedCoroutineRule(),
        FireAndForgetTaskRule(),
        AwaitUnderSyncLockRule(),
        UnguardedSharedStateRule(),
    ]


# -- selection -----------------------------------------------------------------


def _normalize_code(token: str, rules: Sequence[Rule]) -> set[str]:
    """Expand one selector token to concrete rule codes.

    Accepts a full code (``RL204``), a family (``R2`` or ``RL2``), or a
    rule name (``set-iteration``).  Unknown tokens raise ``ValueError`` so
    typos in CI configs fail loudly instead of silently selecting nothing.
    """
    token = token.strip()
    if not token:
        return set()
    upper = token.upper()
    by_code = {rule.code for rule in rules if rule.code == upper}
    if by_code:
        return by_code
    family = None
    if re.fullmatch(r"R\d", upper):
        family = f"RL{upper[1]}"
    elif re.fullmatch(r"RL\d", upper):
        family = upper
    if family is not None:
        members = {rule.code for rule in rules if rule.code.startswith(family)}
        if members:
            return members
    by_name = {rule.code for rule in rules if rule.name == token.lower()}
    if by_name:
        return by_name
    raise ValueError(f"unknown richlint rule selector: {token!r}")


def resolve_selectors(
    tokens: Iterable[str] | None, rules: Sequence[Rule]
) -> set[str] | None:
    """Expand a comma/list of selectors; ``None``/empty means "no filter"."""
    if not tokens:
        return None
    codes: set[str] = set()
    for token in tokens:
        for part in token.split(","):
            codes |= _normalize_code(part, rules)
    return codes or None


# -- suppressions --------------------------------------------------------------


def parse_suppressions(lines: Sequence[str]) -> dict[int, Suppression]:
    """Map line number -> suppression for every ``# richlint: ignore``.

    A suppression on a *pure comment line* also covers the line directly
    below it, so long expressions can carry the ignore above them.
    """
    table: dict[int, Suppression] = {}
    for number, text in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        raw_codes = match.group("codes")
        codes = (
            frozenset(c.strip().upper() for c in raw_codes.split(",") if c.strip())
            if raw_codes
            else None
        )
        suppression = Suppression(codes=codes, reason=(match.group("reason") or "").strip())
        table[number] = suppression
        if text.lstrip().startswith("#"):
            table.setdefault(number + 1, suppression)
    return table


def _suppressed(finding: Finding, module: ModuleInfo, rules_by_code: dict[str, Rule]) -> bool:
    suppression = module.suppressions.get(finding.line)
    if suppression is None:
        return False
    if suppression.codes is None:
        return True
    if finding.code in suppression.codes:
        return True
    rule = rules_by_code.get(finding.code)
    name = rule.name.upper() if rule is not None else ""
    for token in suppression.codes:
        if token == name:
            return True
        if re.fullmatch(r"R\d", token) and finding.code.startswith(f"RL{token[1]}"):
            return True
    return False


# -- baseline ------------------------------------------------------------------


def fingerprint(finding: Finding, occurrence: int, line_text: str) -> str:
    """Stable, line-number-free identity for baselining.

    Built from path, rule and the *text* of the offending line (plus an
    occurrence counter for duplicates), so unrelated edits above the
    finding do not churn the baseline.
    """
    payload = f"{finding.path}::{finding.code}::{line_text.strip()}::{occurrence}"
    return hashlib.sha1(payload.encode("utf-8")).hexdigest()[:16]


def _fingerprints(
    findings: Sequence[Finding], modules_by_path: dict[str, ModuleInfo]
) -> list[str]:
    counters: dict[tuple[str, str, str], int] = {}
    prints: list[str] = []
    for finding in findings:
        module = modules_by_path.get(finding.path)
        text = module.line_text(finding.line) if module is not None else ""
        key = (finding.path, finding.code, text.strip())
        occurrence = counters.get(key, 0)
        counters[key] = occurrence + 1
        prints.append(fingerprint(finding, occurrence, text))
    return prints


def load_baseline(path: Path | None) -> set[str]:
    if path is None or not path.exists():
        return set()
    data = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(data, dict) or "entries" not in data:
        raise ValueError(f"malformed baseline file: {path}")
    return {entry["fingerprint"] for entry in data["entries"]}


def write_baseline(
    path: Path,
    findings: Sequence[Finding],
    modules_by_path: dict[str, ModuleInfo],
) -> None:
    prints = _fingerprints(findings, modules_by_path)
    entries = [
        {
            "path": finding.path,
            "code": finding.code,
            "line": finding.line,
            "fingerprint": print_,
        }
        for finding, print_ in sorted(
            zip(findings, prints), key=lambda pair: (pair[0].path, pair[0].line)
        )
    ]
    payload = {"version": 1, "entries": entries}
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


# -- loading and running -------------------------------------------------------


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    seen: set[Path] = set()
    for path in paths:
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            if "__pycache__" in candidate.parts:
                continue
            resolved = candidate.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            yield candidate


def _relpath(path: Path, root: Path | None) -> str:
    if root is not None:
        try:
            return path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            pass
    try:
        return path.resolve().relative_to(Path.cwd()).as_posix()
    except ValueError:
        return path.as_posix()


def load_module(path: Path, root: Path | None = None) -> ModuleInfo | Finding:
    """Parse one file; returns a parse-error :class:`Finding` on failure."""
    relpath = _relpath(path, root)
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as error:
        return Finding(
            code=PARSE_ERROR_CODE,
            name="syntax-error",
            path=relpath,
            line=error.lineno or 1,
            col=(error.offset or 1) - 1,
            message=f"could not parse: {error.msg}",
        )
    lines = source.splitlines()
    return ModuleInfo(
        path=path,
        relpath=relpath,
        source=source,
        lines=lines,
        tree=tree,
        suppressions=parse_suppressions(lines),
    )


def _dataclass_decorator(node: ast.ClassDef) -> ast.expr | None:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return decorator
        if isinstance(target, ast.Attribute) and target.attr == "dataclass":
            return decorator
    return None


def _bool_kwarg(decorator: ast.expr, name: str, default: bool) -> bool:
    if not isinstance(decorator, ast.Call):
        return default
    for keyword in decorator.keywords:
        if keyword.arg == name and isinstance(keyword.value, ast.Constant):
            return bool(keyword.value.value)
    return default


def build_index(modules: Sequence[ModuleInfo]) -> ProjectIndex:
    # Imported here: callgraph imports engine for ModuleInfo.
    from repro.analysis.callgraph import build_call_graph

    index = ProjectIndex(call_graph=build_call_graph(modules))
    for module in modules:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            decorator = _dataclass_decorator(node)
            if decorator is None:
                continue
            index.dataclasses[node.name] = DataclassInfo(
                name=node.name,
                path=module.relpath,
                line=node.lineno,
                frozen=_bool_kwarg(decorator, "frozen", False),
                eq=_bool_kwarg(decorator, "eq", True),
            )
    return index


@dataclass
class AnalysisReport:
    """Everything one richlint run learned."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[tuple[Finding, str]] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    parse_errors: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    modules_by_path: dict[str, ModuleInfo] = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        return not self.findings and not self.parse_errors


def analyze_paths(
    paths: Sequence[Path | str],
    root: Path | str | None = None,
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
    baseline: Path | str | None = None,
    exclude: Sequence[str] = (),
    rules: Sequence[Rule] | None = None,
) -> AnalysisReport:
    """Run richlint over files/directories and return a full report."""
    rule_list = list(rules) if rules is not None else default_rules()
    selected = resolve_selectors(
        [select] if isinstance(select, str) else select, rule_list
    )
    ignored = resolve_selectors(
        [ignore] if isinstance(ignore, str) else ignore, rule_list
    )
    active = [
        rule
        for rule in rule_list
        if (selected is None or rule.code in selected)
        and (ignored is None or rule.code not in ignored)
    ]
    rules_by_code = {rule.code: rule for rule in rule_list}

    root_path = Path(root) if root is not None else None
    report = AnalysisReport()
    modules: list[ModuleInfo] = []
    for file_path in iter_python_files([Path(p) for p in paths]):
        relpath = _relpath(file_path, root_path)
        if any(fnmatch.fnmatch(relpath, pattern) for pattern in exclude):
            continue
        loaded = load_module(file_path, root_path)
        if isinstance(loaded, Finding):
            report.parse_errors.append(loaded)
            continue
        modules.append(loaded)
    report.files_checked = len(modules)
    report.modules_by_path = {module.relpath: module for module in modules}

    index = build_index(modules)
    baseline_prints = load_baseline(Path(baseline) if baseline else None)

    raw: list[Finding] = []
    for module in modules:
        for rule in active:
            if not rule.applies_to(module):
                continue
            raw.extend(rule.check(module, index))
    raw.sort(key=lambda f: (f.path, f.line, f.col, f.code))

    survivors: list[Finding] = []
    for finding in raw:
        module = report.modules_by_path[finding.path]
        if _suppressed(finding, module, rules_by_code):
            reason = module.suppressions[finding.line].reason
            report.suppressed.append((finding, reason))
        else:
            survivors.append(finding)

    if baseline_prints:
        prints = _fingerprints(survivors, report.modules_by_path)
        for finding, print_ in zip(survivors, prints):
            if print_ in baseline_prints:
                report.baselined.append(finding)
            else:
                report.findings.append(finding)
    else:
        report.findings = survivors
    return report


def analyze_source(
    source: str,
    relpath: str = "module.py",
    rules: Sequence[Rule] | None = None,
) -> list[Finding]:
    """Analyze a source string (test/fixture helper, no filesystem).

    ``relpath`` controls scope matching, so passing ``"core/x.py"``
    exercises the hot-path-scoped rules.
    """
    tree = ast.parse(source)
    lines = source.splitlines()
    module = ModuleInfo(
        path=Path(relpath),
        relpath=relpath,
        source=source,
        lines=lines,
        tree=tree,
        suppressions=parse_suppressions(lines),
    )
    index = build_index([module])
    rule_list = list(rules) if rules is not None else default_rules()
    rules_by_code = {rule.code: rule for rule in rule_list}
    findings: list[Finding] = []
    for rule in rule_list:
        if rule.applies_to(module):
            findings.extend(rule.check(module, index))
    findings.sort(key=lambda f: (f.line, f.col, f.code))
    return [f for f in findings if not _suppressed(f, module, rules_by_code)]
