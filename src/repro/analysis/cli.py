"""Command-line front end for richlint.

Invocable three ways, all sharing this module::

    python -m repro.analysis src/repro
    richnote lint src/repro tests --warn-only
    make analyze

Exit codes: 0 clean (or ``--warn-only``), 1 findings/parse errors,
2 usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from repro.analysis.engine import (
    AnalysisReport,
    analyze_paths,
    default_rules,
    load_baseline,
    write_baseline,
)

DEFAULT_BASELINE = "richlint-baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="richnote lint",
        description=(
            "richlint: AST-based domain-invariant analysis (unit safety, "
            "determinism, float hygiene, dataclass hygiene, conservation)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma list of rules to run (codes RL204, families R2, or names)",
    )
    parser.add_argument(
        "--ignore-rules",
        default=None,
        metavar="RULES",
        help="comma list of rules to skip (same selectors as --select)",
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help=f"baseline file of accepted findings (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file; report all findings",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="write current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--warn-only",
        action="store_true",
        help="report findings but always exit 0",
    )
    parser.add_argument(
        "--exclude",
        action="append",
        default=[],
        metavar="GLOB",
        help="relpath glob(s) to skip, e.g. 'tests/fixtures/*'",
    )
    parser.add_argument(
        "--root",
        default=None,
        help="directory paths are reported relative to (default: cwd)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format",
    )
    parser.add_argument(
        "--sarif-out",
        default=None,
        metavar="PATH",
        help="also write a SARIF 2.1.0 log to PATH (any --format)",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="append baseline-size and suppression stats to the summary",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also list inline-suppressed and baselined findings",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list rules and exit"
    )
    return parser


def _render_text(report: AnalysisReport, show_suppressed: bool) -> str:
    lines: list[str] = []
    for finding in report.parse_errors:
        lines.append(finding.render())
    for finding in report.findings:
        lines.append(finding.render())
    if show_suppressed:
        for finding, reason in report.suppressed:
            note = f" ({reason})" if reason else ""
            lines.append(f"suppressed: {finding.render()}{note}")
        for finding in report.baselined:
            lines.append(f"baselined: {finding.render()}")
    total = len(report.findings) + len(report.parse_errors)
    summary = (
        f"richlint: {report.files_checked} files, {total} finding(s), "
        f"{len(report.suppressed)} suppressed, {len(report.baselined)} baselined"
    )
    lines.append(summary)
    return "\n".join(lines)


def _render_stats(baseline: Path | None, report: AnalysisReport) -> str:
    """One-line baseline drift summary for ``richnote lint --stats``.

    The baseline is technical debt; surfacing its raw entry count on
    every run is what keeps the burn-down honest.
    """
    if baseline is not None and baseline.exists():
        entries = len(load_baseline(baseline))
        origin = str(baseline)
    else:
        entries = 0
        origin = "none" if baseline is None else f"{baseline} (missing)"
    return (
        f"richlint-stats: baseline={origin} entries={entries} "
        f"matched_this_run={len(report.baselined)} "
        f"suppressed_inline={len(report.suppressed)}"
    )


def _render_json(report: AnalysisReport) -> str:
    def encode(finding) -> dict:
        return {
            "code": finding.code,
            "name": finding.name,
            "path": finding.path,
            "line": finding.line,
            "col": finding.col,
            "message": finding.message,
        }

    payload = {
        "files_checked": report.files_checked,
        "findings": [encode(f) for f in report.findings + report.parse_errors],
        "suppressed": [
            {**encode(f), "reason": reason} for f, reason in report.suppressed
        ],
        "baselined": [encode(f) for f in report.baselined],
    }
    return json.dumps(payload, indent=2)


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in default_rules():
            scope = f" [{'/'.join(rule.scope)} only]" if rule.scope else ""
            print(f"{rule.code}  {rule.name:<16} {rule.summary}{scope}")
        return 0

    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        parser.error(f"no such path(s): {', '.join(missing)}")

    baseline = None if args.no_baseline else Path(args.baseline)
    try:
        report = analyze_paths(
            paths=args.paths,
            root=args.root,
            select=args.select,
            ignore=args.ignore_rules,
            baseline=None if args.update_baseline else baseline,
            exclude=tuple(args.exclude),
        )
    except ValueError as error:
        parser.error(str(error))

    if args.update_baseline:
        if baseline is None:
            parser.error("--update-baseline conflicts with --no-baseline")
        write_baseline(baseline, report.findings, report.modules_by_path)
        print(
            f"richlint: wrote {len(report.findings)} finding(s) to {baseline}"
        )
        return 0

    if args.sarif_out:
        from repro.analysis.sarif import write_sarif

        write_sarif(Path(args.sarif_out), report)

    if args.format == "sarif":
        from repro.analysis.sarif import render_sarif

        print(json.dumps(render_sarif(report), indent=2))
    elif args.format == "json":
        print(_render_json(report))
    else:
        print(_render_text(report, args.show_suppressed))
        if args.stats:
            print(_render_stats(baseline, report))

    if args.warn_only:
        return 0
    return 0 if report.clean else 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
