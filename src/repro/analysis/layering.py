"""R6: runtime layering.

The runtime refactor split scheduling into three one-way layers::

    kernels  ->  policy / registry / loop  ->  orchestration
    (array math)     (decision rules)          (experiments, pubsub, cli)

``RL601`` guards the arrows.  Two invariants are enforced on every
``import`` / ``from ... import`` in the scoped trees:

* ``runtime/kernels.py`` is the bottom layer: it may use the standard
  library and numpy, but must not import the policy layer
  (``repro.runtime.policy``, ``.registry``, ``.loop``) or anything in the
  orchestration layer.  Kernels stay pure array math so they can be
  benchmarked, vectorized and reasoned about in isolation.
* no module under ``repro.core`` or ``repro.runtime`` may import
  ``repro.experiments`` or ``repro.cli``.  Orchestration sits *above*
  the runtime; when a lower layer needs behaviour chosen up top, the
  dependency is inverted through :mod:`repro.runtime.registry`.
* no module under ``repro.core`` or ``repro.runtime`` may import
  ``repro.service``.  The live service composes the runtime (ISSUE 9's
  multi-channel refactor routes channels *through* the loop's
  duck-typed hooks precisely so this arrow stays one-way).
* the per-channel cost/latency tables in ``repro.core._channel_costs``
  are private to :mod:`repro.core.channels`: every other module must go
  through a :class:`~repro.core.channels.Channel` so a table edit can
  never bypass the billed-bytes accounting.

Relative imports are resolved against the module's own path before the
check, so ``from . import loop`` inside the kernels file still trips.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import Finding, ModuleInfo, ProjectIndex, Rule

#: Layers (as ``repro.``-stripped dotted prefixes) nothing in core/runtime
#: may depend on.
_ORCHESTRATION_PREFIXES = ("experiments", "cli")

#: The live service also sits above core/runtime; flagged separately so
#: the message can point at the loop's duck-typed hooks (the sanctioned
#: way for the runtime to reach service-chosen behaviour).
_SERVICE_PREFIX = ("service",)

#: Private per-channel cost tables; only ``core/channels.py`` may read
#: them.
_CHANNEL_COST_PREFIX = ("core._channel_costs",)

#: Additional prefixes banned from the kernel file only.
_POLICY_PREFIXES = (
    "runtime.policy",
    "runtime.registry",
    "runtime.loop",
    "pubsub",
)


def _normalize(dotted: str) -> str:
    """Strip the optional ``repro.`` package prefix from a dotted name."""
    if dotted == "repro":
        return ""
    if dotted.startswith("repro."):
        return dotted[len("repro.") :]
    return dotted


def _matches(dotted: str, prefixes: tuple[str, ...]) -> str | None:
    for prefix in prefixes:
        if dotted == prefix or dotted.startswith(prefix + "."):
            return prefix
    return None


def _package_parts(module: ModuleInfo) -> tuple[str, ...]:
    """The module's package path with everything above ``repro`` dropped."""
    parts = module.parts
    if "repro" in parts:
        parts = parts[parts.index("repro") + 1 :]
    return parts[:-1]


def _imported_names(
    node: ast.Import | ast.ImportFrom, module: ModuleInfo
) -> Iterator[str]:
    """Every dotted module name a statement pulls in, ``repro.``-stripped."""
    if isinstance(node, ast.Import):
        for alias in node.names:
            yield _normalize(alias.name)
        return
    if node.level:
        package = _package_parts(module)
        base_parts = package[: len(package) - (node.level - 1)]
        base = ".".join(base_parts)
        if node.module:
            base = f"{base}.{node.module}" if base else node.module
    else:
        base = _normalize(node.module or "")
    if base:
        yield base
    for alias in node.names:
        if alias.name == "*":
            continue
        yield f"{base}.{alias.name}" if base else _normalize(alias.name)


class LayeringRule(Rule):
    code = "RL601"
    name = "layering"
    summary = "import that crosses the kernels -> policy -> orchestration layering"
    scope = ("core", "runtime")

    def check(self, module: ModuleInfo, index: ProjectIndex) -> Iterator[Finding]:
        is_kernels = (
            module.parts[-1] == "kernels.py" and "runtime" in module.parts
        )
        is_channels = module.parts[-2:] == ("core", "channels.py")
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.Import, ast.ImportFrom)):
                continue
            flagged: set[str] = set()
            for dotted in _imported_names(node, module):
                hit = _matches(dotted, _ORCHESTRATION_PREFIXES)
                if hit is not None and hit not in flagged:
                    flagged.add(hit)
                    yield self.finding(
                        module,
                        node,
                        f"layer violation: repro.{hit} is orchestration and "
                        "sits above core/runtime; invert the dependency "
                        "through repro.runtime.registry instead",
                    )
                    continue
                hit = _matches(dotted, _SERVICE_PREFIX)
                if hit is not None and hit not in flagged:
                    flagged.add(hit)
                    yield self.finding(
                        module,
                        node,
                        "layer violation: repro.service composes the "
                        "runtime, never the reverse; expose the behaviour "
                        "as a duck-typed hook on the loop (like "
                        "shared_capacity) instead",
                    )
                    continue
                if not is_channels:
                    hit = _matches(dotted, _CHANNEL_COST_PREFIX)
                    if hit is not None and hit not in flagged:
                        flagged.add(hit)
                        yield self.finding(
                            module,
                            node,
                            "repro.core._channel_costs is private to "
                            "core/channels.py; read per-channel pricing "
                            "through a Channel so billed-bytes accounting "
                            "cannot be bypassed",
                        )
                        continue
                if not is_kernels:
                    continue
                hit = _matches(dotted, _POLICY_PREFIXES)
                if hit is not None and hit not in flagged:
                    flagged.add(hit)
                    yield self.finding(
                        module,
                        node,
                        "runtime.kernels is the bottom layer (pure array "
                        f"math); importing repro.{hit} makes the kernels "
                        "depend on the decision layer built on top of them",
                    )
