"""Latent ground-truth interest model driving synthetic click behaviour.

This is the *hidden* process the Random Forest must recover.  The paper
learned content utility from real Spotify click/hover logs; our substitute
generates those logs from a logistic model over the same feature families
the paper lists (Section V-A):

* social tie between sender and recipient ("a notification from a friend or
  favorite artist has a higher utility");
* popularity of track / album / artist;
* timestamp (day/night, weekday/weekend);

plus irreducible per-notification noise in the logit, which caps achievable
classifier accuracy at a realistic level (the paper reports accuracy 0.689
-- far from separable).

The model is intentionally NOT exposed to the scheduler or classifier; only
its sampled outcomes (hover / click events) are.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field


def sigmoid(z: float) -> float:
    if z >= 0:
        return 1.0 / (1.0 + math.exp(-z))
    ez = math.exp(z)
    return ez / (1.0 + ez)


@dataclass(frozen=True)
class InterestFeatures:
    """Observable features of one (notification, recipient) pair."""

    tie_strength: float  # 0 when sender is not a friend
    favorite_genre: bool
    popularity: int  # track popularity, 1-100
    hour_of_day: float
    is_weekend: bool

    def __post_init__(self) -> None:
        if not 0.0 <= self.tie_strength <= 1.0:
            raise ValueError("tie strength must be in [0, 1]")
        if not 1 <= self.popularity <= 100:
            raise ValueError("popularity must be 1-100")
        if not 0.0 <= self.hour_of_day < 24.0:
            raise ValueError("hour must be in [0, 24)")


@dataclass
class LatentInterestModel:
    """Logistic ground truth: P(click | attended, features).

    Parameters are logit weights.  Defaults are calibrated so that the
    attended-click base rate lands near 40% and the Bayes-optimal accuracy
    sits in the low 0.7s, mirroring the paper's classifier headroom.
    """

    intercept: float = -1.9
    weight_tie: float = 2.6
    weight_favorite: float = 1.1
    weight_popularity: float = 1.6  # applied to popularity / 100
    weight_evening: float = 0.6  # 18:00-23:00 boost
    weight_weekend: float = 0.3
    noise_std: float = 0.9
    attention_probability: float = 0.55
    rng: random.Random = field(default_factory=random.Random)

    def __post_init__(self) -> None:
        if not 0.0 < self.attention_probability <= 1.0:
            raise ValueError("attention probability must be in (0, 1]")
        if self.noise_std < 0:
            raise ValueError("noise std must be >= 0")

    def click_logit(self, features: InterestFeatures) -> float:
        """Noise-free logit of the click probability."""
        evening = 18.0 <= features.hour_of_day < 23.0
        return (
            self.intercept
            + self.weight_tie * features.tie_strength
            + self.weight_favorite * float(features.favorite_genre)
            + self.weight_popularity * (features.popularity / 100.0)
            + self.weight_evening * float(evening)
            + self.weight_weekend * float(features.is_weekend)
        )

    def click_probability(self, features: InterestFeatures) -> float:
        """Noise-free P(click | attended) -- the Bayes posterior mean."""
        return sigmoid(self.click_logit(features))

    def sample_attention(self) -> bool:
        """Did the user give the notification any mouse attention?

        Non-attended notifications are filtered from the training set
        (Section V-A: "First we filter out notifications without
        corresponding mouse activity").
        """
        return self.rng.random() < self.attention_probability

    def sample_click(self, features: InterestFeatures) -> bool:
        """Sample the click outcome given attention, with logit noise."""
        logit = self.click_logit(features)
        if self.noise_std > 0:
            logit += self.rng.gauss(0.0, self.noise_std)
        return self.rng.random() < sigmoid(logit)

    def sample_click_delay(self) -> float:
        """Seconds between a notification's arrival and the recorded click.

        Exponential with a two-hour mean, capped at a day: mobile users
        check their phones periodically, so trace click timestamps trail
        notification timestamps by minutes to hours.  (The delay scale
        matters to the precision metric, which only credits deliveries that
        happen before the recorded click time.)
        """
        return min(86400.0, self.rng.expovariate(1.0 / 7200.0))
