"""Synthetic social graph with weighted ties.

Stands in for "the Spotify de-identified social graph [1]" the paper joins
with mouse activity to obtain "available social ties between the recipient
and the sender of the notification".

Generator: preferential attachment (new users befriend existing users with
probability proportional to degree) followed by triadic closure passes
(friends-of-friends become friends), which yields the heavy-tailed degree
distribution and clustering of real social graphs.  Each edge carries a
*tie strength* in (0, 1] -- interaction intensity -- drawn Beta-like and
symmetric.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


def _edge_key(a: int, b: int) -> tuple[int, int]:
    return (a, b) if a < b else (b, a)


class SocialGraph:
    """Undirected weighted friendship graph."""

    def __init__(self) -> None:
        self._adjacency: dict[int, set[int]] = {}
        self._weights: dict[tuple[int, int], float] = {}

    def add_user(self, user_id: int) -> None:
        self._adjacency.setdefault(user_id, set())

    def add_friendship(self, a: int, b: int, strength: float = 0.5) -> None:
        """Create/overwrite an undirected tie with the given strength."""
        if a == b:
            raise ValueError("self-friendship is not allowed")
        if not 0.0 < strength <= 1.0:
            raise ValueError(f"tie strength must be in (0, 1], got {strength}")
        self.add_user(a)
        self.add_user(b)
        self._adjacency[a].add(b)
        self._adjacency[b].add(a)
        self._weights[_edge_key(a, b)] = strength

    def friends(self, user_id: int) -> frozenset[int]:
        return frozenset(self._adjacency.get(user_id, frozenset()))

    def are_friends(self, a: int, b: int) -> bool:
        return b in self._adjacency.get(a, set())

    def tie_strength(self, a: int, b: int) -> float:
        """Strength of the tie, 0.0 when not friends."""
        return self._weights.get(_edge_key(a, b), 0.0)

    def degree(self, user_id: int) -> int:
        return len(self._adjacency.get(user_id, ()))

    @property
    def user_count(self) -> int:
        return len(self._adjacency)

    @property
    def edge_count(self) -> int:
        return len(self._weights)

    def users(self) -> list[int]:
        return sorted(self._adjacency)

    def edges(self) -> list[tuple[int, int, float]]:
        return [(a, b, w) for (a, b), w in sorted(self._weights.items())]

    def clustering_coefficient(self, user_id: int) -> float:
        """Local clustering: fraction of friend pairs that are friends."""
        friends = list(self._adjacency.get(user_id, ()))
        k = len(friends)
        if k < 2:
            return 0.0
        closed = 0
        for i in range(k):
            for j in range(i + 1, k):
                if self.are_friends(friends[i], friends[j]):
                    closed += 1
        return closed / (k * (k - 1) / 2)


@dataclass(frozen=True)
class SocialGraphConfig:
    """Generation knobs."""

    n_users: int = 200
    attachment_edges: int = 4  # edges each arriving user creates
    closure_rounds: int = 1  # triadic-closure passes
    closure_probability: float = 0.1
    seed: int = 11

    def __post_init__(self) -> None:
        if self.n_users < 2:
            raise ValueError("need at least two users")
        if self.attachment_edges < 1:
            raise ValueError("attachment edges must be >= 1")
        if not 0.0 <= self.closure_probability <= 1.0:
            raise ValueError("closure probability must be in [0, 1]")


def generate_social_graph(config: SocialGraphConfig | None = None) -> SocialGraph:
    """Preferential attachment + triadic closure, deterministic per seed."""
    config = config or SocialGraphConfig()
    rng = random.Random(config.seed)
    graph = SocialGraph()

    def draw_strength() -> float:
        # Beta(2, 5)-like: most ties weak, a few strong.
        return min(1.0, max(1e-6, rng.betavariate(2.0, 5.0)))

    # Seed clique of m+1 users so attachment targets exist.
    m = min(config.attachment_edges, config.n_users - 1)
    for user_id in range(m + 1):
        graph.add_user(user_id)
    for a in range(m + 1):
        for b in range(a + 1, m + 1):
            graph.add_friendship(a, b, draw_strength())

    # Preferential attachment via the repeated-endpoints trick.
    endpoints: list[int] = []
    for a, b, _ in graph.edges():
        endpoints.extend((a, b))
    for user_id in range(m + 1, config.n_users):
        targets: set[int] = set()
        while len(targets) < m:
            targets.add(rng.choice(endpoints))
        for target in targets:
            graph.add_friendship(user_id, target, draw_strength())
            endpoints.extend((user_id, target))

    # Triadic closure.
    for _ in range(config.closure_rounds):
        new_edges: list[tuple[int, int]] = []
        for user_id in graph.users():
            friends = list(graph.friends(user_id))
            rng.shuffle(friends)
            for i in range(len(friends)):
                for j in range(i + 1, len(friends)):
                    a, b = friends[i], friends[j]
                    if not graph.are_friends(a, b) and (
                        rng.random() < config.closure_probability
                    ):
                        new_edges.append((a, b))
        for a, b in new_edges:
            if not graph.are_friends(a, b):
                graph.add_friendship(a, b, draw_strength())

    return graph
