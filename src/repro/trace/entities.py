"""Synthetic music catalog: artists, albums, tracks, playlists, users.

The Spotify traces behind the paper are proprietary; this module builds the
catalog their notifications referred to.  Design targets that matter for
the algorithms downstream:

* **popularity** is a 1-100 score "based on their streaming frequencies in
  Spotify" (Section V-A) -- we draw artist popularity from a Zipf-like
  heavy-tailed distribution and let album/track popularity regress to the
  artist's with noise, matching the strong hierarchy of real catalogs;
* **genres** give users a preference structure the latent interest model
  and the classifier features can both see;
* **users** carry an activity level (how much they listen, hence how many
  friend-feed publications they generate) drawn heavy-tailed, because the
  evaluation focuses on "top 10k users with maximum number of delivered
  notifications".
"""

from __future__ import annotations

import random
from dataclasses import dataclass

GENRES = (
    "pop",
    "rock",
    "hiphop",
    "electronic",
    "jazz",
    "classical",
    "metal",
    "country",
    "latin",
    "rnb",
)


@dataclass(frozen=True)
class Artist:
    artist_id: int
    name: str
    genre: str
    popularity: int  # 1-100

    def __post_init__(self) -> None:
        if not 1 <= self.popularity <= 100:
            raise ValueError(f"popularity must be 1-100, got {self.popularity}")


@dataclass(frozen=True)
class Album:
    album_id: int
    artist_id: int
    name: str
    popularity: int
    track_count: int

    def __post_init__(self) -> None:
        if not 1 <= self.popularity <= 100:
            raise ValueError(f"popularity must be 1-100, got {self.popularity}")
        if self.track_count < 1:
            raise ValueError("album needs at least one track")


@dataclass(frozen=True)
class Track:
    track_id: int
    album_id: int
    artist_id: int
    name: str
    popularity: int
    duration_seconds: float

    def __post_init__(self) -> None:
        if not 1 <= self.popularity <= 100:
            raise ValueError(f"popularity must be 1-100, got {self.popularity}")
        if self.duration_seconds <= 0:
            raise ValueError("duration must be positive")


@dataclass
class Playlist:
    playlist_id: int
    owner_user_id: int
    name: str
    track_ids: list[int]
    genre: str

    def __post_init__(self) -> None:
        if not self.track_ids:
            raise ValueError("playlist needs at least one track")


@dataclass(frozen=True)
class User:
    user_id: int
    favorite_genres: tuple[str, ...]
    activity_level: float  # mean listens per hour while active

    def __post_init__(self) -> None:
        if not self.favorite_genres:
            raise ValueError("user needs at least one favorite genre")
        if self.activity_level <= 0:
            raise ValueError("activity level must be positive")


@dataclass(frozen=True)
class CatalogConfig:
    """Sizing and distribution knobs for catalog synthesis."""

    n_users: int = 200
    n_artists: int = 100
    albums_per_artist_mean: float = 3.0
    tracks_per_album_mean: float = 10.0
    n_playlists: int = 50
    playlist_length_mean: float = 25.0
    zipf_exponent: float = 1.2  # popularity skew across artists
    favorite_genres_per_user: int = 3
    seed: int = 7

    def __post_init__(self) -> None:
        if min(self.n_users, self.n_artists, self.n_playlists) < 1:
            raise ValueError("counts must be positive")
        if self.zipf_exponent <= 0:
            raise ValueError("zipf exponent must be positive")
        if not 1 <= self.favorite_genres_per_user <= len(GENRES):
            raise ValueError("favorite genre count out of range")


class Catalog:
    """The full synthetic catalog with id-indexed lookups."""

    def __init__(
        self,
        users: list[User],
        artists: list[Artist],
        albums: list[Album],
        tracks: list[Track],
        playlists: list[Playlist],
    ) -> None:
        self.users = {u.user_id: u for u in users}
        self.artists = {a.artist_id: a for a in artists}
        self.albums = {a.album_id: a for a in albums}
        self.tracks = {t.track_id: t for t in tracks}
        self.playlists = {p.playlist_id: p for p in playlists}
        for album in albums:
            if album.artist_id not in self.artists:
                raise ValueError(f"album {album.album_id} has unknown artist")
        for track in tracks:
            if track.album_id not in self.albums:
                raise ValueError(f"track {track.track_id} has unknown album")
        for playlist in playlists:
            for track_id in playlist.track_ids:
                if track_id not in self.tracks:
                    raise ValueError(
                        f"playlist {playlist.playlist_id} has unknown track"
                    )

    def tracks_of_artist(self, artist_id: int) -> list[Track]:
        return [t for t in self.tracks.values() if t.artist_id == artist_id]

    def genre_of_track(self, track_id: int) -> str:
        return self.artists[self.tracks[track_id].artist_id].genre


def _zipf_popularity(rank: int, n: int, exponent: float) -> int:
    """Map a rank (0 = most popular) to a 1-100 popularity score."""
    # Normalized Zipf mass relative to rank 1, scaled into [1, 100].
    weight = (1.0 / (rank + 1)) ** exponent
    top = 1.0
    score = 1 + round(99 * (weight / top))
    return max(1, min(100, score))


def generate_catalog(config: CatalogConfig | None = None) -> Catalog:
    """Synthesize a catalog per ``config`` (deterministic under its seed)."""
    config = config or CatalogConfig()
    rng = random.Random(config.seed)

    artists: list[Artist] = []
    for artist_id in range(config.n_artists):
        artists.append(
            Artist(
                artist_id=artist_id,
                name=f"artist-{artist_id}",
                genre=rng.choice(GENRES),
                popularity=_zipf_popularity(
                    artist_id, config.n_artists, config.zipf_exponent
                ),
            )
        )

    albums: list[Album] = []
    tracks: list[Track] = []
    album_id = 0
    track_id = 0
    for artist in artists:
        n_albums = max(1, round(rng.expovariate(1.0 / config.albums_per_artist_mean)))
        for _ in range(n_albums):
            n_tracks = max(
                1, round(rng.expovariate(1.0 / config.tracks_per_album_mean))
            )
            album_pop = _regressed_popularity(artist.popularity, rng)
            albums.append(
                Album(
                    album_id=album_id,
                    artist_id=artist.artist_id,
                    name=f"album-{album_id}",
                    popularity=album_pop,
                    track_count=n_tracks,
                )
            )
            for _ in range(n_tracks):
                tracks.append(
                    Track(
                        track_id=track_id,
                        album_id=album_id,
                        artist_id=artist.artist_id,
                        name=f"track-{track_id}",
                        popularity=_regressed_popularity(album_pop, rng),
                        duration_seconds=rng.uniform(120.0, 420.0),
                    )
                )
                track_id += 1
            album_id += 1

    users: list[User] = []
    for user_id in range(config.n_users):
        favorites = tuple(rng.sample(GENRES, config.favorite_genres_per_user))
        # Heavy-tailed activity: most users listen a little, a few a lot.
        activity = max(0.05, rng.paretovariate(1.5) * 0.2)
        users.append(
            User(
                user_id=user_id,
                favorite_genres=favorites,
                activity_level=activity,
            )
        )

    all_track_ids = [t.track_id for t in tracks]
    playlists: list[Playlist] = []
    for playlist_id in range(config.n_playlists):
        length = max(
            1,
            min(
                len(all_track_ids),
                round(rng.expovariate(1.0 / config.playlist_length_mean)),
            ),
        )
        playlists.append(
            Playlist(
                playlist_id=playlist_id,
                owner_user_id=rng.randrange(config.n_users),
                name=f"playlist-{playlist_id}",
                track_ids=rng.sample(all_track_ids, length),
                genre=rng.choice(GENRES),
            )
        )

    return Catalog(users, artists, albums, tracks, playlists)


def _regressed_popularity(parent_popularity: int, rng: random.Random) -> int:
    """Child popularity: regress to the parent's with +-15 noise."""
    return max(1, min(100, parent_popularity + rng.randint(-15, 15)))
