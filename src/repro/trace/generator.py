"""Synthetic notification trace generation.

Replaces the de-identified Spotify production trace (Jan 1-7 2015) with a
generative pipeline that exercises the identical code path:

1. build a catalog (:mod:`repro.trace.entities`) and a social graph
   (:mod:`repro.trace.socialgraph`);
2. derive topic subscriptions -- every user follows their friends' feeds,
   a handful of artists (popularity- and genre-biased) and playlists;
3. generate publications: friend listens (Poisson per user, diurnally
   modulated), album releases and playlist updates;
4. fan publications out through the pub/sub broker
   (:mod:`repro.pubsub.broker`) to produce per-recipient notifications;
5. label each notification with synthetic mouse activity from the latent
   interest model (:mod:`repro.trace.interactions`).

The result is a timestamp-sorted list of
:class:`repro.trace.records.NotificationRecord` -- the exact shape the
paper's evaluation replays per user.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.pubsub.broker import Broker, DeliveryMode, Notification
from repro.pubsub.subscriptions import SubscriptionStore
from repro.pubsub.topics import Publication, Topic, TopicKind
from repro.trace.entities import Catalog, CatalogConfig, generate_catalog
from repro.trace.interactions import InteractionSimulator
from repro.trace.interest import LatentInterestModel
from repro.trace.records import NotificationRecord
from repro.trace.socialgraph import (
    SocialGraph,
    SocialGraphConfig,
    generate_social_graph,
)


def poisson_sample(rng: random.Random, lam: float) -> int:
    """Knuth's Poisson sampler (adequate for the small per-step rates here)."""
    if lam < 0:
        raise ValueError("rate must be >= 0")
    if lam == 0:
        return 0
    if lam > 30:
        # Normal approximation for large rates keeps the loop bounded.
        return max(0, round(rng.gauss(lam, math.sqrt(lam))))
    threshold = math.exp(-lam)
    k = 0
    product = rng.random()
    while product > threshold:
        k += 1
        product *= rng.random()
    return k


def diurnal_factor(hour_of_day: float) -> float:
    """Listening-activity multiplier over the day.

    Low overnight, rising through the day, peaking in the evening --
    a stylized fit to music-streaming diurnal curves.
    """
    hour = hour_of_day % 24.0
    if hour < 7.0:
        return 0.15
    # Sine hump across 07:00-24:00 peaking around 19:00.
    return 0.2 + 1.0 * max(0.0, math.sin(math.pi * (hour - 7.0) / 17.0))


@dataclass(frozen=True)
class TraceConfig:
    """Workload knobs for the synthetic trace."""

    duration_hours: float = 168.0  # one week, matching the paper's trace
    listen_rate_scale: float = 1.0
    album_release_rate_per_artist_per_hour: float = 0.004
    playlist_update_rate_per_playlist_per_hour: float = 0.01
    artist_follows_per_user: int = 5
    playlist_follows_per_user: int = 3
    favorite_pick_probability: float = 0.6  # chance a listen is in-genre
    seed: int = 23

    def __post_init__(self) -> None:
        if self.duration_hours <= 0:
            raise ValueError("duration must be positive")
        if self.listen_rate_scale < 0:
            raise ValueError("rate scale must be >= 0")
        if not 0.0 <= self.favorite_pick_probability <= 1.0:
            raise ValueError("favorite pick probability must be in [0, 1]")


@dataclass
class Workload:
    """Everything an experiment needs: the world plus the labelled trace.

    ``catalog``/``graph``/``subscriptions`` are ``None`` for workloads
    rehydrated from a serialized trace (:meth:`from_records`): the trace
    records embed every feature the schedulers and classifier consume, so
    the world objects are only needed for *generating* new traces.
    """

    catalog: Catalog | None
    graph: SocialGraph | None
    subscriptions: SubscriptionStore | None
    records: list[NotificationRecord]
    config: TraceConfig

    @classmethod
    def from_records(
        cls,
        records: list[NotificationRecord],
        duration_hours: float | None = None,
    ) -> "Workload":
        """Wrap a loaded trace (e.g. from :func:`repro.trace.io.read_trace`).

        The horizon defaults to the last notification's timestamp rounded
        up to a whole hour.
        """
        if not records:
            raise ValueError("cannot build a workload from an empty trace")
        if duration_hours is None:
            last = max(r.timestamp for r in records)
            duration_hours = max(1.0, math.ceil(last / 3600.0))
        return cls(
            catalog=None,
            graph=None,
            subscriptions=None,
            records=sorted(records, key=lambda r: r.timestamp),
            config=TraceConfig(duration_hours=duration_hours),
        )

    def records_for_user(self, user_id: int) -> list[NotificationRecord]:
        return [r for r in self.records if r.recipient_id == user_id]

    def user_ids(self) -> list[int]:
        return sorted({r.recipient_id for r in self.records})

    def top_users(self, k: int) -> list[int]:
        """The k users with the most notifications (the paper's 'top 10k')."""
        counts: dict[int, int] = {}
        for record in self.records:
            counts[record.recipient_id] = counts.get(record.recipient_id, 0) + 1
        return sorted(counts, key=lambda u: (-counts[u], u))[:k]


class TraceGenerator:
    """Builds a :class:`Workload` from catalog + graph + config."""

    def __init__(
        self,
        catalog: Catalog,
        graph: SocialGraph,
        config: TraceConfig | None = None,
        interest_model: LatentInterestModel | None = None,
    ) -> None:
        self.catalog = catalog
        self.graph = graph
        self.config = config or TraceConfig()
        self._rng = random.Random(self.config.seed)
        self.interest_model = interest_model or LatentInterestModel(
            rng=random.Random(self.config.seed + 1)
        )
        self._tracks_by_genre: dict[str, list[int]] = {}
        for track in catalog.tracks.values():
            genre = catalog.artists[track.artist_id].genre
            self._tracks_by_genre.setdefault(genre, []).append(track.track_id)
        self._all_tracks = sorted(catalog.tracks)

    # -- subscriptions ---------------------------------------------------------

    def build_subscriptions(self) -> SubscriptionStore:
        """Friend feeds + artist follows + playlist follows."""
        store = SubscriptionStore()
        rng = self._rng
        artists = list(self.catalog.artists.values())
        artist_weights = [a.popularity for a in artists]
        playlist_ids = sorted(self.catalog.playlists)

        for user_id in sorted(self.catalog.users):
            user = self.catalog.users[user_id]
            # Follow every friend's activity feed.
            for friend in self.graph.friends(user_id):
                store.subscribe(user_id, Topic(TopicKind.FRIEND, friend))
            # Follow artists, biased to favourites by genre then popularity.
            in_genre = [a for a in artists if a.genre in user.favorite_genres]
            pool = in_genre if in_genre else artists
            pool_weights = [a.popularity for a in pool]
            follows = min(self.config.artist_follows_per_user, len(artists))
            chosen: set[int] = set()
            guard = 0
            while len(chosen) < follows and guard < 50 * follows:
                guard += 1
                if rng.random() < 0.8:
                    pick = rng.choices(pool, weights=pool_weights, k=1)[0]
                else:
                    pick = rng.choices(artists, weights=artist_weights, k=1)[0]
                chosen.add(pick.artist_id)
            for artist_id in chosen:
                store.subscribe(user_id, Topic(TopicKind.ARTIST, artist_id))
            # Follow a few playlists.
            follows = min(self.config.playlist_follows_per_user, len(playlist_ids))
            for playlist_id in rng.sample(playlist_ids, follows):
                store.subscribe(user_id, Topic(TopicKind.PLAYLIST, playlist_id))
        return store

    # -- publications ------------------------------------------------------------

    def _pick_track_for_user(self, user_id: int) -> int:
        """A listen: favourite-genre-biased, popularity-weighted track pick."""
        rng = self._rng
        user = self.catalog.users[user_id]
        if rng.random() < self.config.favorite_pick_probability:
            genre = rng.choice(user.favorite_genres)
            candidates = self._tracks_by_genre.get(genre)
            if candidates:
                weights = [self.catalog.tracks[t].popularity for t in candidates]
                return rng.choices(candidates, weights=weights, k=1)[0]
        weights = [self.catalog.tracks[t].popularity for t in self._all_tracks]
        return rng.choices(self._all_tracks, weights=weights, k=1)[0]

    def _payload_for_track(self, track_id: int) -> dict:
        track = self.catalog.tracks[track_id]
        album = self.catalog.albums[track.album_id]
        artist = self.catalog.artists[track.artist_id]
        return {
            "track_id": track.track_id,
            "album_id": album.album_id,
            "artist_id": artist.artist_id,
            "track_popularity": track.popularity,
            "album_popularity": album.popularity,
            "artist_popularity": artist.popularity,
        }

    def generate_publications(self) -> list[Publication]:
        """All publications over the horizon, time-sorted."""
        rng = self._rng
        config = self.config
        publications: list[Publication] = []
        hours = int(math.ceil(config.duration_hours))

        for hour in range(hours):
            hour_start = hour * 3600.0
            factor = diurnal_factor(hour % 24)
            # Friend listens.
            for user_id, user in self.catalog.users.items():
                lam = user.activity_level * factor * config.listen_rate_scale
                for _ in range(poisson_sample(rng, lam)):
                    track_id = self._pick_track_for_user(user_id)
                    publications.append(
                        Publication(
                            topic=Topic(TopicKind.FRIEND, user_id),
                            publisher_id=user_id,
                            timestamp=hour_start + rng.uniform(0.0, 3600.0),
                            payload=self._payload_for_track(track_id),
                        )
                    )
            # Album releases.
            for artist_id in self.catalog.artists:
                lam = config.album_release_rate_per_artist_per_hour
                for _ in range(poisson_sample(rng, lam)):
                    albums = [
                        a
                        for a in self.catalog.albums.values()
                        if a.artist_id == artist_id
                    ]
                    album = rng.choice(albums)
                    tracks = [
                        t
                        for t in self.catalog.tracks.values()
                        if t.album_id == album.album_id
                    ]
                    publications.append(
                        Publication(
                            topic=Topic(TopicKind.ARTIST, artist_id),
                            publisher_id=artist_id,
                            timestamp=hour_start + rng.uniform(0.0, 3600.0),
                            payload=self._payload_for_track(
                                rng.choice(tracks).track_id
                            ),
                        )
                    )
            # Playlist updates.
            for playlist_id, playlist in self.catalog.playlists.items():
                lam = config.playlist_update_rate_per_playlist_per_hour
                for _ in range(poisson_sample(rng, lam)):
                    track_id = rng.choice(playlist.track_ids)
                    publications.append(
                        Publication(
                            topic=Topic(TopicKind.PLAYLIST, playlist_id),
                            publisher_id=playlist.owner_user_id,
                            timestamp=hour_start + rng.uniform(0.0, 3600.0),
                            payload=self._payload_for_track(track_id),
                        )
                    )
        publications.sort(key=lambda p: p.timestamp)
        return publications

    # -- end-to-end -----------------------------------------------------------------

    def generate(self) -> Workload:
        """Run the full pipeline: subscriptions -> fan-out -> labelling."""
        subscriptions = self.build_subscriptions()
        broker = Broker(subscriptions, default_mode=DeliveryMode.ROUND)
        collected: list[Notification] = []
        broker.add_sink(collected.append)
        for publication in self.generate_publications():
            broker.publish(publication)
        broker.flush()

        simulator = InteractionSimulator(
            catalog=self.catalog,
            graph=self.graph,
            interest_model=self.interest_model,
        )
        records = [simulator.label(notification) for notification in collected]
        records.sort(key=lambda r: r.timestamp)
        return Workload(
            catalog=self.catalog,
            graph=self.graph,
            subscriptions=subscriptions,
            records=records,
            config=self.config,
        )


def _user_stream_seed(seed: int, user_id: int) -> int:
    """Stable per-user trace seed (same explicit mix as the runner's streams).

    Salt 101 keeps the trace stream decorrelated from the device (29) and
    fault (13) streams derived from the same experiment seed.
    """
    return (seed * 1_000_003 + user_id * 7_919 + 101) & 0x7FFFFFFF


def iter_users(
    n_users: int,
    config: TraceConfig | None = None,
    mean_rate_per_hour: float = 0.25,
    first_user_id: int = 0,
):
    """Lazily generate one user's labelled notification stream at a time.

    The full pipeline (:func:`build_workload`) routes every publication
    through the social graph and pub/sub broker, which inherently
    materializes the whole population's trace at once -- fine at hundreds
    of users, prohibitive at the 10k-1M cohorts the columnar core sweeps.
    This generator trades the cross-user fan-out for *per-user
    independent* seeded streams: each user's records derive from their
    own :func:`_user_stream_seed` lane, so user ``k``'s stream is
    identical whether you generate 10 users or a million, and peak memory
    is one user's records.

    Arrivals are Poisson per hour, diurnally modulated
    (:func:`diurnal_factor`) and scaled by a per-user activity level --
    heterogeneous rates, so queue lengths across the cohort are ragged.
    Labels (hovered / clicked / click time) follow the same marginal
    shape as the interaction simulator.  Notification ids are globally
    unique (``user_id * 1_000_000 + index``).

    Yields ``(user_id, records)`` with records timestamp-sorted.
    """
    if n_users < 0:
        raise ValueError("n_users must be >= 0")
    config = config or TraceConfig()
    hours = int(math.ceil(config.duration_hours))
    for user_id in range(first_user_id, first_user_id + n_users):
        rng = random.Random(_user_stream_seed(config.seed, user_id))
        activity = 0.2 + 1.6 * rng.random()
        records: list[NotificationRecord] = []
        for hour in range(hours):
            hour_start = hour * 3600.0
            lam = (
                activity
                * diurnal_factor(hour % 24)
                * config.listen_rate_scale
                * mean_rate_per_hour
            )
            for _ in range(poisson_sample(rng, lam)):
                timestamp = min(
                    hour_start + rng.uniform(0.0, 3600.0),
                    config.duration_hours * 3600.0,
                )
                draw = rng.random()
                if draw < 0.7:
                    kind = TopicKind.FRIEND
                elif draw < 0.9:
                    kind = TopicKind.ARTIST
                else:
                    kind = TopicKind.PLAYLIST
                hovered = rng.random() < 0.35
                clicked = hovered and rng.random() < 0.45
                records.append(
                    NotificationRecord(
                        notification_id=user_id * 1_000_000 + len(records),
                        recipient_id=user_id,
                        sender_id=rng.randrange(1_000_000),
                        kind=kind,
                        track_id=rng.randrange(50_000),
                        album_id=rng.randrange(10_000),
                        artist_id=rng.randrange(2_000),
                        track_popularity=rng.randrange(1, 101),
                        album_popularity=rng.randrange(1, 101),
                        artist_popularity=rng.randrange(1, 101),
                        tie_strength=rng.random(),
                        is_friend=kind is TopicKind.FRIEND,
                        favorite_genre=rng.random() < 0.4,
                        timestamp=timestamp,
                        hovered=hovered,
                        clicked=clicked,
                        click_time=(
                            timestamp + rng.uniform(30.0, 7200.0)
                            if clicked
                            else None
                        ),
                    )
                )
        records.sort(key=lambda record: record.timestamp)
        yield user_id, records


@dataclass(frozen=True)
class WorkloadSpec:
    """One-stop configuration for :func:`build_workload`."""

    catalog: CatalogConfig = field(default_factory=CatalogConfig)
    graph: SocialGraphConfig = field(default_factory=SocialGraphConfig)
    trace: TraceConfig = field(default_factory=TraceConfig)

    def __post_init__(self) -> None:
        if self.catalog.n_users != self.graph.n_users:
            raise ValueError(
                "catalog and graph must agree on the user count "
                f"({self.catalog.n_users} != {self.graph.n_users})"
            )


def build_workload(spec: WorkloadSpec | None = None) -> Workload:
    """Generate a complete labelled workload from a spec (or defaults)."""
    spec = spec or WorkloadSpec()
    catalog = generate_catalog(spec.catalog)
    graph = generate_social_graph(spec.graph)
    return TraceGenerator(catalog, graph, spec.trace).generate()
