"""The flat notification-trace record: the unit of the synthetic dataset.

Mirrors what the paper extracted from the de-identified Spotify logs after
joining three sources (Section V-A): the notification log, the mouse
activity log (click / hover), and the social graph + public-API metadata
(popularity scores, social ties).  One record = one notification delivered
to one user, with its features and interaction labels.
"""

from __future__ import annotations

from dataclasses import dataclass, asdict

from repro.pubsub.topics import TopicKind


@dataclass(frozen=True)
class NotificationRecord:
    """One notification with features and ground-truth interaction labels.

    The scheduler and classifier only ever see the feature fields; the
    ``clicked``/``hovered``/``click_time`` labels are used for supervised
    training (clicked-vs-hovered, Section V-A) and for evaluation metrics
    (precision/recall of delivered notifications).
    """

    notification_id: int
    recipient_id: int
    sender_id: int
    kind: TopicKind
    track_id: int
    album_id: int
    artist_id: int
    track_popularity: int
    album_popularity: int
    artist_popularity: int
    tie_strength: float
    is_friend: bool
    favorite_genre: bool
    timestamp: float
    hovered: bool
    clicked: bool
    click_time: float | None

    def __post_init__(self) -> None:
        if self.timestamp < 0:
            raise ValueError("timestamp must be >= 0")
        if not 0.0 <= self.tie_strength <= 1.0:
            raise ValueError("tie strength must be in [0, 1]")
        if self.clicked and not self.hovered:
            raise ValueError("a click implies mouse attention (hovered)")
        if self.clicked and self.click_time is None:
            raise ValueError("clicked records need a click time")
        if self.click_time is not None and self.click_time < self.timestamp:
            raise ValueError("click cannot precede the notification")

    @property
    def attended(self) -> bool:
        """Whether the user gave any mouse attention (the training filter)."""
        return self.hovered

    def hour_of_day(self) -> float:
        return (self.timestamp / 3600.0) % 24.0

    def is_weekend(self) -> bool:
        """Trace epoch is taken to start on a Monday 00:00."""
        day = int(self.timestamp // 86400.0) % 7
        return day >= 5

    def is_night(self) -> bool:
        hour = self.hour_of_day()
        return hour >= 22.0 or hour < 6.0

    def to_dict(self) -> dict:
        data = asdict(self)
        data["kind"] = self.kind.value
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "NotificationRecord":
        payload = dict(data)
        payload["kind"] = TopicKind(payload["kind"])
        return cls(**payload)
