"""Synthetic Spotify-like trace substrate."""

from repro.trace.entities import Catalog, CatalogConfig, generate_catalog
from repro.trace.socialgraph import SocialGraph, SocialGraphConfig, generate_social_graph
from repro.trace.interest import InterestFeatures, LatentInterestModel
from repro.trace.records import NotificationRecord
from repro.trace.generator import TraceConfig, TraceGenerator, Workload, WorkloadSpec, build_workload
from repro.trace.io import iter_trace, read_trace, write_trace
from repro.trace.stats import Distribution, WorkloadStats, compute_stats, render_stats
