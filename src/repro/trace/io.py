"""Trace serialization: JSONL read/write with round-trip fidelity.

Traces are stored one record per line so multi-gigabyte traces can be
streamed without loading everything into memory.  The format is stable and
versioned through a header line, letting downstream tooling reject
incompatible files early.  Paths ending in ``.gz`` are transparently
gzip-compressed (notification traces compress ~10x).
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path
from typing import Iterable, Iterator

from repro.trace.records import NotificationRecord

FORMAT_NAME = "richnote-trace"
FORMAT_VERSION = 1


def _open(path: Path, mode: str):
    """Text-mode open with transparent gzip for ``.gz`` paths."""
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8")
    return path.open(mode, encoding="utf-8")


def write_trace(path: str | Path, records: Iterable[NotificationRecord]) -> int:
    """Write records as JSONL (with a header line); returns record count."""
    path = Path(path)
    count = 0
    with _open(path, "w") as handle:
        header = {"format": FORMAT_NAME, "version": FORMAT_VERSION}
        handle.write(json.dumps(header) + "\n")
        for record in records:
            handle.write(json.dumps(record.to_dict(), sort_keys=True) + "\n")
            count += 1
    return count


def iter_trace(path: str | Path) -> Iterator[NotificationRecord]:
    """Stream records from a trace file, validating the header."""
    path = Path(path)
    with _open(path, "r") as handle:
        header_line = handle.readline()
        if not header_line:
            raise ValueError(f"{path}: empty trace file")
        header = json.loads(header_line)
        if header.get("format") != FORMAT_NAME:
            raise ValueError(f"{path}: not a {FORMAT_NAME} file")
        if header.get("version") != FORMAT_VERSION:
            raise ValueError(
                f"{path}: unsupported version {header.get('version')} "
                f"(expected {FORMAT_VERSION})"
            )
        for line_number, line in enumerate(handle, start=2):
            line = line.strip()
            if not line:
                continue
            try:
                yield NotificationRecord.from_dict(json.loads(line))
            except (KeyError, TypeError, ValueError) as error:
                raise ValueError(
                    f"{path}:{line_number}: malformed record: {error}"
                ) from error


def read_trace(path: str | Path) -> list[NotificationRecord]:
    """Load an entire trace into memory."""
    return list(iter_trace(path))
