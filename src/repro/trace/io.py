"""Trace serialization: JSONL read/write plus a packed columnar shard store.

Two on-disk shapes, for two access patterns:

* **JSONL** (:func:`write_trace` / :func:`iter_trace` /
  :func:`read_trace`) -- one record per line behind a versioned header;
  human-greppable, streamable, the interchange format.  Paths ending in
  ``.gz`` are transparently gzip-compressed (notification traces
  compress ~10x).
* **Columnar shard store** (:class:`ShardStoreWriter` /
  :class:`TraceShardStore`) -- a directory of flat little-endian binary
  columns partitioned by user (``user_ids.npy`` + ``offsets.npy`` index,
  ``index.json`` manifest).  Written once in a streaming append pass,
  then memory-mapped read-only, so a population-scale trace costs each
  experiment worker address space instead of heap and deserialization
  time.  This is the format the experiment pool ships to workers: a
  path, not pickled record lists.
"""

from __future__ import annotations

import json
import gzip
import math
from pathlib import Path
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.pubsub.topics import TopicKind
from repro.trace.records import NotificationRecord

FORMAT_NAME = "richnote-trace"
FORMAT_VERSION = 1

SHARD_FORMAT_NAME = "richnote-trace-shards"
SHARD_FORMAT_VERSION = 1

#: Column layout of the shard store.  ``recipient_id`` is implied by the
#: user partitioning (``user_ids`` + ``offsets``) and not stored per
#: record; ``click_time`` stores ``NaN`` for ``None``; ``kind`` stores an
#: index into the manifest's ``kinds`` list.
SHARD_COLUMNS: dict[str, str] = {
    "notification_id": "<i8",
    "sender_id": "<i8",
    "kind": "|i1",
    "track_id": "<i8",
    "album_id": "<i8",
    "artist_id": "<i8",
    "track_popularity": "<i4",
    "album_popularity": "<i4",
    "artist_popularity": "<i4",
    "tie_strength": "<f8",
    "is_friend": "|u1",
    "favorite_genre": "|u1",
    "timestamp": "<f8",
    "hovered": "|u1",
    "clicked": "|u1",
    "click_time": "<f8",
}


def _open(path: Path, mode: str):
    """Text-mode open with transparent gzip for ``.gz`` paths."""
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8")
    return path.open(mode, encoding="utf-8")


def write_trace(path: str | Path, records: Iterable[NotificationRecord]) -> int:
    """Write records as JSONL (with a header line); returns record count."""
    path = Path(path)
    count = 0
    with _open(path, "w") as handle:
        header = {"format": FORMAT_NAME, "version": FORMAT_VERSION}
        handle.write(json.dumps(header) + "\n")
        for record in records:
            handle.write(json.dumps(record.to_dict(), sort_keys=True) + "\n")
            count += 1
    return count


def iter_trace(path: str | Path) -> Iterator[NotificationRecord]:
    """Stream records from a trace file, validating the header."""
    path = Path(path)
    with _open(path, "r") as handle:
        header_line = handle.readline()
        if not header_line:
            raise ValueError(f"{path}: empty trace file")
        header = json.loads(header_line)
        if header.get("format") != FORMAT_NAME:
            raise ValueError(f"{path}: not a {FORMAT_NAME} file")
        if header.get("version") != FORMAT_VERSION:
            raise ValueError(
                f"{path}: unsupported version {header.get('version')} "
                f"(expected {FORMAT_VERSION})"
            )
        for line_number, line in enumerate(handle, start=2):
            line = line.strip()
            if not line:
                continue
            try:
                yield NotificationRecord.from_dict(json.loads(line))
            except (KeyError, TypeError, ValueError) as error:
                raise ValueError(
                    f"{path}:{line_number}: malformed record: {error}"
                ) from error


def read_trace(path: str | Path) -> list[NotificationRecord]:
    """Load an entire trace into memory.

    Convenience for small traces only: this materializes every record at
    once.  Callers that merely iterate -- computing statistics,
    re-sharding, filtering -- should stream with :func:`iter_trace`
    instead, which holds one record at a time; population-scale cohorts
    should use the columnar shard store (:class:`ShardStoreWriter` /
    :class:`TraceShardStore`) and never round-trip through record lists
    at all.
    """
    return list(iter_trace(path))


# -- columnar shard store ------------------------------------------------------


class ShardStoreWriter:
    """Streaming writer for the columnar shard store.

    Appends one user's records at a time to flat binary column files --
    no buffering of the whole trace, no need to know counts up front --
    then seals the directory with the index arrays and manifest on
    :meth:`close`.  Use as a context manager:

    >>> with ShardStoreWriter(tmp_path / "shards") as writer:  # doctest: +SKIP
    ...     for user_id, records in iter_users(10_000):
    ...         writer.append(user_id, records)
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.mkdir(parents=True, exist_ok=True)
        self._kinds = [kind.value for kind in TopicKind]
        self._kind_codes = {value: i for i, value in enumerate(self._kinds)}
        self._handles = {
            name: (self.path / f"{name}.bin").open("wb")
            for name in SHARD_COLUMNS
        }
        self._user_ids: list[int] = []
        self._offsets: list[int] = [0]
        self._closed = False

    def append(
        self, user_id: int, records: Sequence[NotificationRecord]
    ) -> None:
        """Append one user's partition (records in their replay order)."""
        if self._closed:
            raise ValueError("shard store writer is closed")
        columns: dict[str, list] = {name: [] for name in SHARD_COLUMNS}
        for r in records:
            columns["notification_id"].append(r.notification_id)
            columns["sender_id"].append(r.sender_id)
            columns["kind"].append(self._kind_codes[r.kind.value])
            columns["track_id"].append(r.track_id)
            columns["album_id"].append(r.album_id)
            columns["artist_id"].append(r.artist_id)
            columns["track_popularity"].append(r.track_popularity)
            columns["album_popularity"].append(r.album_popularity)
            columns["artist_popularity"].append(r.artist_popularity)
            columns["tie_strength"].append(r.tie_strength)
            columns["is_friend"].append(r.is_friend)
            columns["favorite_genre"].append(r.favorite_genre)
            columns["timestamp"].append(r.timestamp)
            columns["hovered"].append(r.hovered)
            columns["clicked"].append(r.clicked)
            columns["click_time"].append(
                math.nan if r.click_time is None else r.click_time
            )
        for name, dtype in SHARD_COLUMNS.items():
            np.asarray(columns[name], dtype=np.dtype(dtype)).tofile(
                self._handles[name]
            )
        self._user_ids.append(user_id)
        self._offsets.append(self._offsets[-1] + len(records))

    def close(self) -> None:
        """Seal the store: flush columns, write index arrays + manifest."""
        if self._closed:
            return
        for handle in self._handles.values():
            handle.close()
        np.save(
            self.path / "user_ids.npy",
            np.asarray(self._user_ids, dtype=np.int64),
        )
        np.save(
            self.path / "offsets.npy",
            np.asarray(self._offsets, dtype=np.int64),
        )
        manifest = {
            "format": SHARD_FORMAT_NAME,
            "version": SHARD_FORMAT_VERSION,
            "n_users": len(self._user_ids),
            "n_records": self._offsets[-1],
            "columns": dict(SHARD_COLUMNS),
            "kinds": self._kinds,
        }
        (self.path / "index.json").write_text(
            json.dumps(manifest, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        self._closed = True

    def __enter__(self) -> "ShardStoreWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def write_shard_store(
    path: str | Path,
    user_records: Iterable[tuple[int, Sequence[NotificationRecord]]],
) -> int:
    """Write ``(user_id, records)`` pairs to a shard store; returns records."""
    with ShardStoreWriter(path) as writer:
        for user_id, records in user_records:
            writer.append(user_id, records)
        total = writer._offsets[-1]
    return total


class TraceShardStore:
    """Zero-copy reader over a shard store directory.

    Columns are ``np.memmap``-ed read-only: opening costs a few stat
    calls regardless of trace size, slicing costs page faults only for
    the pages actually touched, and forked/spawned workers opening the
    same store share the page cache instead of each holding a heap copy.
    The maps hold the file descriptors until :meth:`close` (or garbage
    collection) releases them -- close explicitly before deleting the
    directory on Windows-like platforms.

    Concurrent readers are safe by construction: a sealed store is
    immutable (the writer renames nothing into place after
    :meth:`ShardStoreWriter.close`, it only ever appends before), every
    map is opened ``mode="r"``, and no reader mutates shared state -- so
    N processes may open the same directory simultaneously and must
    observe byte-identical columns and records.  The shard-parallel
    executor (``experiments/pool.py``) leans on exactly this: workers
    receive the store *path* and read disjoint position ranges through
    the shared page cache; ``tests/test_shard_parallel.py`` pins the
    byte-identity across concurrent processes.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        manifest_path = self.path / "index.json"
        if not manifest_path.exists():
            raise ValueError(f"{self.path}: not a shard store (no index.json)")
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        if manifest.get("format") != SHARD_FORMAT_NAME:
            raise ValueError(f"{self.path}: not a {SHARD_FORMAT_NAME} store")
        if manifest.get("version") != SHARD_FORMAT_VERSION:
            raise ValueError(
                f"{self.path}: unsupported version {manifest.get('version')} "
                f"(expected {SHARD_FORMAT_VERSION})"
            )
        self.manifest = manifest
        self._kinds = [TopicKind(value) for value in manifest["kinds"]]
        self.user_ids = np.load(self.path / "user_ids.npy")
        self.offsets = np.load(self.path / "offsets.npy")
        n_records = int(self.offsets[-1])
        self._maps: dict[str, np.memmap | np.ndarray] = {}
        for name, dtype_str in manifest["columns"].items():
            dtype = np.dtype(dtype_str)
            column_path = self.path / f"{name}.bin"
            expected = n_records * dtype.itemsize
            actual = column_path.stat().st_size
            if actual != expected:
                raise ValueError(
                    f"{column_path}: {actual} bytes, index implies {expected}"
                )
            if n_records == 0:
                self._maps[name] = np.empty(0, dtype=dtype)
            else:
                self._maps[name] = np.memmap(column_path, dtype=dtype, mode="r")
        self._position_of: dict[int, int] | None = None

    @property
    def n_users(self) -> int:
        return len(self.user_ids)

    @property
    def n_records(self) -> int:
        return int(self.offsets[-1])

    def column(self, name: str) -> np.ndarray:
        """The raw memory-mapped column (length ``n_records``)."""
        return self._maps[name]

    def position_of(self, user_id: int) -> int:
        """Partition position of a user id (built lazily, O(1) after)."""
        if self._position_of is None:
            self._position_of = {
                int(uid): i for i, uid in enumerate(self.user_ids)
            }
        return self._position_of[user_id]

    def records_at(self, position: int) -> list[NotificationRecord]:
        """Materialize one partition's records (the only copying step)."""
        start = int(self.offsets[position])
        end = int(self.offsets[position + 1])
        user_id = int(self.user_ids[position])
        data = {
            name: self._maps[name][start:end].tolist() for name in SHARD_COLUMNS
        }
        kinds = self._kinds
        return [
            NotificationRecord(
                notification_id=notification_id,
                recipient_id=user_id,
                sender_id=sender_id,
                kind=kinds[kind],
                track_id=track_id,
                album_id=album_id,
                artist_id=artist_id,
                track_popularity=track_popularity,
                album_popularity=album_popularity,
                artist_popularity=artist_popularity,
                tie_strength=tie_strength,
                is_friend=bool(is_friend),
                favorite_genre=bool(favorite_genre),
                timestamp=timestamp,
                hovered=bool(hovered),
                clicked=bool(clicked),
                click_time=None if math.isnan(click_time) else click_time,
            )
            for (
                notification_id,
                sender_id,
                kind,
                track_id,
                album_id,
                artist_id,
                track_popularity,
                album_popularity,
                artist_popularity,
                tie_strength,
                is_friend,
                favorite_genre,
                timestamp,
                hovered,
                clicked,
                click_time,
            ) in zip(*(data[name] for name in SHARD_COLUMNS))
        ]

    def records_for_user(self, user_id: int) -> list[NotificationRecord]:
        return self.records_at(self.position_of(user_id))

    def iter_users(self) -> Iterator[tuple[int, list[NotificationRecord]]]:
        """Stream ``(user_id, records)`` partitions in store order."""
        for position in range(self.n_users):
            yield int(self.user_ids[position]), self.records_at(position)

    def close(self) -> None:
        """Drop the memmaps (releases the column file descriptors)."""
        self._maps.clear()

    def __enter__(self) -> "TraceShardStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
