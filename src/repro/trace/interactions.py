"""Synthetic mouse-activity labelling of notifications.

Section V-A's labelling scheme: a notification has *higher* utility if the
user clicked it; it has *lower* utility if the user hovered over it without
clicking (proof of attention without interest); notifications with no mouse
activity at all are filtered from the training data because the user may
simply never have seen them.

:class:`InteractionSimulator` reproduces that three-way outcome from the
latent interest model:

* with probability ``attention_probability`` the user attends (hovers);
* an attended notification is clicked with the latent model's noisy
  click probability;
* clicks get a ``click_time`` a short delay after the notification.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.pubsub.broker import Notification
from repro.trace.entities import Catalog
from repro.trace.interest import InterestFeatures, LatentInterestModel
from repro.trace.records import NotificationRecord
from repro.trace.socialgraph import SocialGraph


@dataclass
class InteractionSimulator:
    """Labels broker notifications with synthetic click/hover outcomes."""

    catalog: Catalog
    graph: SocialGraph
    interest_model: LatentInterestModel

    def features_for(self, notification: Notification) -> InterestFeatures:
        """Observable features of a (notification, recipient) pair."""
        payload = notification.publication.payload
        recipient = self.catalog.users[notification.recipient_id]
        sender_id = notification.publication.publisher_id
        # Tie strength only applies to user-to-user (friend feed) events;
        # artist/playlist publishers are not social-graph nodes.
        tie = (
            self.graph.tie_strength(notification.recipient_id, sender_id)
            if notification.kind.value == "friend"
            else 0.0
        )
        genre = self.catalog.artists[payload["artist_id"]].genre
        timestamp = notification.timestamp
        return InterestFeatures(
            tie_strength=tie,
            favorite_genre=genre in recipient.favorite_genres,
            popularity=payload["track_popularity"],
            hour_of_day=(timestamp / 3600.0) % 24.0,
            is_weekend=(int(timestamp // 86400.0) % 7) >= 5,
        )

    def label(self, notification: Notification) -> NotificationRecord:
        """Produce the flat trace record with sampled interaction labels."""
        payload = notification.publication.payload
        features = self.features_for(notification)
        hovered = self.interest_model.sample_attention()
        clicked = hovered and self.interest_model.sample_click(features)
        click_time = (
            notification.timestamp + self.interest_model.sample_click_delay()
            if clicked
            else None
        )
        sender_id = notification.publication.publisher_id
        is_friend = notification.kind.value == "friend" and self.graph.are_friends(
            notification.recipient_id, sender_id
        )
        return NotificationRecord(
            notification_id=notification.notification_id,
            recipient_id=notification.recipient_id,
            sender_id=sender_id,
            kind=notification.kind,
            track_id=payload["track_id"],
            album_id=payload["album_id"],
            artist_id=payload["artist_id"],
            track_popularity=payload["track_popularity"],
            album_popularity=payload["album_popularity"],
            artist_popularity=payload["artist_popularity"],
            tie_strength=features.tie_strength,
            is_friend=is_friend,
            favorite_genre=features.favorite_genre,
            timestamp=notification.timestamp,
            hovered=hovered,
            clicked=clicked,
            click_time=click_time,
        )
