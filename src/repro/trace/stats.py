"""Descriptive statistics of a notification workload.

The paper grounds its design in trace characteristics (Section II: friend
feeds are "frequent and large in number compared to other publications";
Section V-C focuses on the top users by delivered notifications).  This
module computes those characteristics for any record list -- synthetic or
loaded from JSONL -- and powers the ``richnote stats`` CLI command and the
workload-calibration tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.pubsub.topics import TopicKind
from repro.trace.records import NotificationRecord


@dataclass(frozen=True)
class Distribution:
    """Five-number-ish summary of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    median: float
    p90: float
    maximum: float

    @classmethod
    def of(cls, values: Sequence[float]) -> "Distribution":
        if not values:
            raise ValueError("cannot summarize an empty sample")
        ordered = sorted(float(v) for v in values)
        n = len(ordered)
        mean = sum(ordered) / n
        variance = sum((v - mean) ** 2 for v in ordered) / n
        return cls(
            count=n,
            mean=mean,
            std=math.sqrt(variance),
            minimum=ordered[0],
            median=ordered[n // 2],
            p90=ordered[min(n - 1, int(0.9 * n))],
            maximum=ordered[-1],
        )


@dataclass(frozen=True)
class WorkloadStats:
    """Workload-level summary used by calibration and the CLI."""

    total_records: int
    users: int
    duration_hours: float
    per_kind: dict[TopicKind, int]
    per_user_volume: Distribution
    attention_rate: float
    click_rate: float
    click_rate_given_attention: float
    mean_click_delay_s: float
    hourly_volume: list[int] = field(default_factory=list)

    def friend_fraction(self) -> float:
        if self.total_records == 0:
            return 0.0
        return self.per_kind.get(TopicKind.FRIEND, 0) / self.total_records

    def peak_hour(self) -> int:
        """Hour-of-day (0-23) with the most notifications."""
        if not self.hourly_volume:
            raise ValueError("no hourly volume data")
        return max(range(len(self.hourly_volume)), key=self.hourly_volume.__getitem__)


def compute_stats(records: Iterable[NotificationRecord]) -> WorkloadStats:
    """Summarize records in one pass (raises on empty input).

    Accepts any iterable -- including :func:`repro.trace.io.iter_trace`
    -- and folds it in a single sweep, so arbitrarily large traces never
    need to be materialized just to be summarized.
    """
    per_kind = {kind: 0 for kind in TopicKind}
    per_user: dict[int, int] = {}
    hourly = [0] * 24
    total = 0
    attended = 0
    clicked = 0
    delays: list[float] = []
    last_timestamp = 0.0
    for record in records:
        total += 1
        per_kind[record.kind] += 1
        per_user[record.recipient_id] = per_user.get(record.recipient_id, 0) + 1
        hourly[int(record.hour_of_day()) % 24] += 1
        if record.hovered:
            attended += 1
        if record.clicked:
            clicked += 1
            if record.click_time is not None:
                delays.append(record.click_time - record.timestamp)
        last_timestamp = max(last_timestamp, record.timestamp)
    if not total:
        raise ValueError("cannot summarize an empty trace")
    return WorkloadStats(
        total_records=total,
        users=len(per_user),
        duration_hours=max(1.0, math.ceil(last_timestamp / 3600.0)),
        per_kind=per_kind,
        per_user_volume=Distribution.of(list(per_user.values())),
        attention_rate=attended / total,
        click_rate=clicked / total,
        click_rate_given_attention=(clicked / attended) if attended else 0.0,
        mean_click_delay_s=(sum(delays) / len(delays)) if delays else 0.0,
        hourly_volume=hourly,
    )


def render_stats(stats: WorkloadStats) -> str:
    """Human-readable report for the CLI."""
    volume = stats.per_user_volume
    lines = [
        f"notifications : {stats.total_records} over {stats.duration_hours:g} h "
        f"for {stats.users} users",
        "per kind      : "
        + "  ".join(
            f"{kind.value}={count}" for kind, count in stats.per_kind.items()
        )
        + f"  (friend fraction {stats.friend_fraction():.2f})",
        (
            f"per user      : mean {volume.mean:.1f}  median {volume.median:.0f}"
            f"  p90 {volume.p90:.0f}  max {volume.maximum:.0f}"
        ),
        (
            f"interactions  : attended {stats.attention_rate:.2f}"
            f"  clicked {stats.click_rate:.2f}"
            f"  clicked|attended {stats.click_rate_given_attention:.2f}"
        ),
        f"click delay   : mean {stats.mean_click_delay_s / 60:.0f} min",
        f"peak hour     : {stats.peak_hour():02d}:00",
    ]
    return "\n".join(lines)
