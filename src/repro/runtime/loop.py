"""The composable round loop (Algorithm 2) -- queues, budgets, delivery.

Per Section IV, the broker runs one loop instance per user.  Each round
is a fixed sequence of phases (:attr:`RoundLoop.phase_names`):

``ingest``
    items that arrived since the previous round move from the *incoming*
    queue to the *scheduling* queue; TTL-expired items are evicted;
``replenish``
    budgets top up -- ``B(t) += theta`` and ``P(t) += e(t)`` while
    ``P(t) <= kappa`` (the device's battery state determines ``e(t)``);
``select``
    connectivity is sampled for the round; a subset of scheduling-queue
    items is selected at presentation levels by the bound
    :class:`~repro.runtime.policy.SchedulerPolicy` and sorted into the
    delivery queue by descending utility;
``deliver``
    the delivery queue drains to the device; delivered items are debited
    from both budgets and all of their presentations leave the
    scheduling queue.

Each phase is a ``<name>_phase(state)`` method, so subclasses can
override or extend individual phases without re-implementing the loop.
Policies plug in via :meth:`RoundLoop.bind_policy`; legacy subclasses
may instead override :meth:`RoundLoop._select` directly (the seam the
pre-runtime ``RoundBasedScheduler`` exposed, kept working on purpose).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (delivery imports us)
    from repro.core.delivery import DeliveryEngine

from repro.analysis.markers import conserves
from repro.core.budgets import DataBudget, EnergyBudget
from repro.core.channels import Channel, ChannelSet
from repro.core.content import ContentItem
from repro.core.utility import CombinedUtilityModel
from repro.runtime.policy import RoundContext, SchedulerPolicy
from repro.runtime.types import Delivery, DroppedItem, RoundResult
from repro.sim.device import MobileDevice


@dataclass(slots=True)
class RoundState:
    """Mutable scratch state threaded through one round's phases.

    ``selected`` holds ``(item, level)`` pairs on the legacy path or
    ``(item, level, channel)`` triples when multiple channels are
    configured.
    """

    now: float
    round_seconds: float
    result: RoundResult
    effective_budget: int = 0
    selected: list = field(default_factory=list)


class RoundLoop:
    """Queue/budget/delivery machinery shared by every scheduling policy.

    The loop owns the state Algorithm 2 mutates (queues, budgets, the
    round counter); the *decision* of what to deliver is delegated to the
    bound policy each round via a frozen
    :class:`~repro.runtime.policy.RoundContext` snapshot.
    """

    #: The phase sequence of one round; each name dispatches to a
    #: ``<name>_phase(state)`` method.
    phase_names: tuple[str, ...] = ("ingest", "replenish", "select", "deliver")

    def __init__(
        self,
        device: MobileDevice,
        data_budget: DataBudget,
        energy_budget: EnergyBudget,
        utility_model: CombinedUtilityModel | None = None,
        ttl_seconds: float | None = None,
        delivery_engine: "DeliveryEngine | None" = None,
        policy: SchedulerPolicy | None = None,
        channels: ChannelSet | None = None,
        shared_capacity=None,
    ) -> None:
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ValueError("ttl must be positive when set")
        self.device = device
        self.data_budget = data_budget
        self.energy_budget = energy_budget
        self.utility_model = utility_model or CombinedUtilityModel()
        #: Optional fault-tolerant delivery path
        #: (:class:`repro.core.delivery.DeliveryEngine`).  ``None`` keeps
        #: the paper's atomic delivery semantics.
        self.delivery_engine = delivery_engine
        #: Optional notification expiry: items older than this are evicted
        #: at the start of a round instead of being delivered stale.  The
        #: paper keeps items queued indefinitely (None, the default); real
        #: deployments expire friend-feed notifications.
        self.ttl_seconds = ttl_seconds
        self._incoming: list[ContentItem] = []
        self._scheduling: list[ContentItem] = []
        self._round_index = 0
        self.total_dropped = 0
        #: Orchestration hook (:mod:`repro.service`): when set, selections
        #: are capped at this presentation level (floored at level 1, so
        #: items still deliver as metadata-only).  ``None`` -- the default,
        #: and the paper's behaviour -- leaves selections untouched.
        self.level_cap: int | None = None
        #: Configured delivery channels.  ``None`` (the default) and a
        #: single passthrough channel both take the legacy single-push
        #: code paths bit for bit; anything else enables joint
        #: (channel x level) selection and per-channel delivery routing.
        self.channels = channels
        #: Duck-typed shared-capacity pool (``grant(user_id, requested)``
        #: / ``consume(user_id, used)`` -- see
        #: :class:`repro.pubsub.capacity.SharedCellCapacity`).  Couples
        #: this user's round budget to everyone sharing the same cell;
        #: ``None`` keeps budgets private, as in the paper.
        self.shared_capacity = shared_capacity
        self._observers: list[Callable[["RoundLoop", RoundResult], None]] = []
        self.policy: SchedulerPolicy | None = None
        if policy is not None:
            self.bind_policy(policy)

    # -- policy binding -------------------------------------------------------

    def bind_policy(self, policy: SchedulerPolicy) -> None:
        """Attach ``policy`` as this loop's selection rule.

        Runs the policy's optional ``attach(loop)`` hook, which may
        validate configuration against the loop's budgets (and raise).
        """
        self.policy = policy
        attach = getattr(policy, "attach", None)
        if attach is not None:
            attach(self)

    def add_observer(
        self, observer: Callable[["RoundLoop", RoundResult], None]
    ) -> None:
        """Register a callback invoked with ``(loop, result)`` after every
        round -- the seam health monitors and the live service use to watch
        a fleet without subclassing the loop."""
        self._observers.append(observer)

    # -- queue management -----------------------------------------------------

    def enqueue(self, item: ContentItem) -> None:
        """Add a newly arrived item to the incoming queue."""
        if item.user_id != self.device.user_id:
            raise ValueError(
                f"item for user {item.user_id} routed to scheduler of "
                f"user {self.device.user_id}"
            )
        self._incoming.append(item)

    @property
    def pending_items(self) -> int:
        """Items awaiting delivery across incoming + scheduling queues."""
        return len(self._incoming) + len(self._scheduling)

    def backlog_bytes(self) -> float:
        """``Q(t)``: total byte backlog of the scheduling queue.

        Per Eq. 4 an item contributes the sum of all its presentation
        sizes, since delivery drops every presentation of the item.
        """
        return float(sum(item.ladder.total_size() for item in self._scheduling))

    def scheduling_queue(self) -> Sequence[ContentItem]:
        return tuple(self._scheduling)

    def _selectable(self, now: float) -> list[ContentItem]:
        """Scheduling-queue items eligible for selection this round.

        Items in retry backoff (fault-tolerant delivery) are held back but
        still count toward ``Q(t)``/backlog -- they are queued work.
        """
        if self.delivery_engine is None:
            return self._scheduling
        return [
            item
            for item in self._scheduling
            if self.delivery_engine.eligible(item, now)
        ]

    # -- policy hook ----------------------------------------------------------

    def make_context(self, now: float, effective_budget: int) -> RoundContext:
        """The frozen round snapshot handed to the policy's ``select``."""
        return RoundContext(
            now=now,
            effective_budget=effective_budget,
            items=list(self._selectable(now)),
            backlog_bytes=self.backlog_bytes(),
            energy_available_joules=self.energy_budget.available,
            utility_model=self.utility_model,
            estimate_energy=self.device.estimate_energy,
            channels=self.channels,
        )

    def _select(
        self, now: float, effective_budget: int
    ) -> list[tuple[ContentItem, int]]:
        """Choose (item, level > 0) pairs within ``effective_budget`` bytes.

        Delegates to the bound policy; legacy subclasses override this
        directly instead of registering a policy.
        """
        if self.policy is None:
            raise NotImplementedError(
                "bind a SchedulerPolicy (bind_policy) or override _select"
            )
        decision = self.policy.select(self.make_context(now, effective_budget))
        return list(decision.selections)

    # -- the round loop (Algorithm 2) -----------------------------------------

    def run_round(self, now: float, round_seconds: float) -> RoundResult:
        """Execute one round at time ``now``; returns what was delivered."""
        self._round_index += 1
        state = RoundState(
            now=now,
            round_seconds=round_seconds,
            result=RoundResult(round_index=self._round_index, time=now),
        )
        for name in self.phase_names:
            getattr(self, f"{name}_phase")(state)

        result = state.result
        result.queue_length_after = len(self._scheduling)
        result.backlog_bytes_after = self.backlog_bytes()
        result.data_budget_after = self.data_budget.available
        result.energy_budget_after = self.energy_budget.available
        after_round = getattr(self.policy, "after_round", None)
        if after_round is not None:
            after_round(self, result)
        for observer in self._observers:
            observer(self, result)
        return result

    def ingest_phase(self, state: RoundState) -> None:
        """Incoming items become schedulable; TTL-expired items are evicted."""
        if self._incoming:
            self._scheduling.extend(self._incoming)
            self._incoming = []

        if self.ttl_seconds is not None:
            now = state.now
            fresh: list[ContentItem] = []
            for item in self._scheduling:
                if now - item.created_at > self.ttl_seconds:
                    state.result.dropped.append(
                        DroppedItem(time=now, item=item, reason="ttl_expired")
                    )
                    self.total_dropped += 1
                else:
                    fresh.append(item)
            self._scheduling = fresh

    def replenish_phase(self, state: RoundState) -> None:
        """Step 2 of Algorithm 2: budget replenishment."""
        self.data_budget.replenish()
        e_t = self.device.replenishment(state.now, self.energy_budget.kappa_joules)
        self.energy_budget.replenish(e_t)

    def select_phase(self, state: RoundState) -> None:
        """Sample connectivity, then ask the policy for this round's picks."""
        now = state.now
        self.device.begin_round(now, state.round_seconds)
        state.result.connected = self.device.connected
        if not (self.device.connected and self._selectable(now)):
            return
        capacity = self.device.round_capacity_bytes(state.round_seconds)
        effective_budget = int(min(self.data_budget.available, capacity))
        if self.shared_capacity is not None:
            # Shared cell pool: this round's budget is further clamped to
            # whatever the user's cell has left, coupling users on the
            # same tower.  Heavy crowds drain the pool; bystanders see a
            # smaller grant.
            granted = self.shared_capacity.grant(
                self.device.user_id, effective_budget
            )
            effective_budget = int(min(effective_budget, granted))
        state.effective_budget = effective_budget
        selected = self._select(now, state.effective_budget)
        if self.level_cap is not None:
            # Degradation ladder (service overload): shed rich-media levels
            # first, keeping at least the metadata presentation (level 1).
            cap = max(1, self.level_cap)
            selected = [
                (sel[0], min(sel[1], cap), *sel[2:]) for sel in selected
            ]
        if self.delivery_engine is not None:
            # Previously failed items may be capped at a degraded level.
            selected = self.delivery_engine.apply_level_caps(selected)

        # Delivery queue drains in descending utility order (Alg. 2, step 1);
        # multi-channel selections rank by the chosen channel's utility.
        def _utility_key(sel) -> float:
            if len(sel) == 3:
                return sel[2].utility(self.utility_model, sel[0], sel[1], now)
            return self.utility_model.utility(sel[0], sel[1], now)

        selected.sort(key=_utility_key, reverse=True)
        state.selected = selected

    def deliver_phase(self, state: RoundState) -> None:
        self._deliver(state.now, state.selected, state.result)

    @conserves("every debit is recorded as a delivery (atomic path: no refunds)")
    def _deliver(
        self,
        now: float,
        selected: list,
        result: RoundResult,
    ) -> None:
        """Drain the delivery queue: debit budgets, record deliveries."""
        if not selected:
            return
        if self.delivery_engine is not None:
            first_new = len(result.deliveries)
            removed = self.delivery_engine.deliver_batch(
                now=now,
                selected=selected,
                device=self.device,
                data_budget=self.data_budget,
                energy_budget=self.energy_budget,
                utility_model=self.utility_model,
                result=result,
                ttl_seconds=self.ttl_seconds,
            )
            self.total_dropped += result.dead_letters
            if removed:
                self._scheduling = [
                    item
                    for item in self._scheduling
                    if item.item_id not in removed
                ]
            self._consume_shared(result.deliveries[first_new:])
            return
        if any(len(sel) == 3 for sel in selected):
            self._deliver_channels(now, selected, result)
            return
        sizes = [item.ladder.size(level) for item, level in selected]
        batch_energy = self.device.download_batch(sizes)
        total_size = sum(sizes)
        delivered_ids = set()
        first_new = len(result.deliveries)
        for (item, level), size in zip(selected, sizes):
            # Realized energy attribution: proportional share of the batch.
            share = batch_energy * (size / total_size) if total_size else 0.0
            self.data_budget.debit(size)
            self.energy_budget.debit(share)
            result.deliveries.append(
                Delivery(
                    time=now,
                    user_id=self.device.user_id,
                    item=item,
                    level=level,
                    size_bytes=size,
                    energy_joules=share,
                    utility=self.utility_model.utility(item, level, now),
                )
            )
            delivered_ids.add(item.item_id)
        # Step 3: drop all presentations of delivered items from the queue.
        self._scheduling = [
            item for item in self._scheduling if item.item_id not in delivered_ids
        ]
        self._consume_shared(result.deliveries[first_new:])

    @conserves("billed debit per delivery; wire bytes drawn from the cell pool")
    def _deliver_channels(
        self,
        now: float,
        selected: list,
        result: RoundResult,
    ) -> None:
        """Atomic delivery of ``(item, level, channel)`` triples.

        Energy and the device transfer are priced on *wire* bytes (what
        crosses the air on the channel's ladder); the data budget is
        debited the channel's *billed* bytes.
        """
        triples: list[tuple[ContentItem, int, Channel]] = [
            sel if len(sel) == 3 else (sel[0], sel[1], self.channels.primary)
            for sel in selected
        ]
        wire_sizes = [
            channel.wire_size(item, level) for item, level, channel in triples
        ]
        batch_energy = self.device.download_batch(wire_sizes)
        total_wire = sum(wire_sizes)
        delivered_ids = set()
        first_new = len(result.deliveries)
        for (item, level, channel), wire in zip(triples, wire_sizes):
            share = batch_energy * (wire / total_wire) if total_wire else 0.0
            self.data_budget.debit(
                channel.cost.billed_bytes(wire), channel=channel.name
            )
            self.energy_budget.debit(share)
            result.deliveries.append(
                Delivery(
                    time=now,
                    user_id=self.device.user_id,
                    item=item,
                    level=level,
                    size_bytes=wire,
                    energy_joules=share,
                    utility=channel.utility(self.utility_model, item, level, now),
                    channel=channel.name,
                )
            )
            delivered_ids.add(item.item_id)
        self._scheduling = [
            item for item in self._scheduling if item.item_id not in delivered_ids
        ]
        self._consume_shared(result.deliveries[first_new:])

    def _consume_shared(self, deliveries: list) -> None:
        """Draw this round's delivered cell-coupled wire bytes from the pool."""
        if self.shared_capacity is None or not deliveries:
            return
        if self.channels is None:
            cell_bytes = sum(d.size_bytes for d in deliveries)
        else:
            cell_bytes = sum(
                d.size_bytes
                for d in deliveries
                if self.channels.get_or_primary(d.channel).cell_coupled
            )
        if cell_bytes:
            self.shared_capacity.consume(self.device.user_id, cell_bytes)
