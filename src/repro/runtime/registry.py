"""Name-based registry of :class:`~repro.runtime.policy.SchedulerPolicy` types.

Orchestration layers (experiment runner, pub/sub broker, CLI) resolve
policies by name -- ``create("richnote", lyapunov=...)`` -- instead of
importing concrete scheduler classes, so alternative selection rules
(survival-analysis send policies, utility-mechanism variants) plug in by
registering a class without touching any orchestration code:

    from repro.runtime import registry

    @registry.register("survival")
    class SurvivalPolicy:
        def select(self, ctx): ...

Built-in policies (``richnote``, ``fifo``, ``util``) live in
:mod:`repro.runtime.policy`, which is imported lazily on first lookup so
that importing this module has no layering side effects.
"""

from __future__ import annotations

from typing import Callable, TypeVar

PolicyType = TypeVar("PolicyType", bound=type)

_REGISTRY: dict[str, type] = {}


def register(name: str) -> Callable[[PolicyType], PolicyType]:
    """Class decorator registering a policy under ``name``.

    Names are case-sensitive registry keys (the ``method`` strings of
    :class:`repro.experiments.config.MethodSpec` map onto them).
    Re-registering a taken name is an error -- remove the old entry first
    if a test genuinely needs to shadow a built-in.
    """

    def decorate(cls: PolicyType) -> PolicyType:
        if name in _REGISTRY:
            raise ValueError(f"scheduler policy {name!r} is already registered")
        _REGISTRY[name] = cls
        return cls

    return decorate


def unregister(name: str) -> None:
    """Remove a registered policy (test/plugin teardown helper)."""
    _ensure_builtins()
    if name not in _REGISTRY:
        raise ValueError(f"unknown scheduler policy {name!r}")
    del _REGISTRY[name]


def get(name: str) -> type:
    """The registered policy class for ``name``."""
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown scheduler policy {name!r}; available: "
            + ", ".join(available())
        ) from None


def create(name: str, **params) -> object:
    """Instantiate the policy registered under ``name`` with ``params``."""
    return get(name)(**params)


def available() -> list[str]:
    """Registered policy names, sorted."""
    _ensure_builtins()
    return sorted(_REGISTRY)


def _ensure_builtins() -> None:
    # Importing the policy module runs its @register decorators.
    import repro.runtime.policy  # noqa: F401
