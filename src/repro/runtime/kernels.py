"""Pure, array-oriented decision kernels (the bottom runtime layer).

Each kernel is a stateless function over parallel columns -- sizes,
energies, utilities for an entire scheduling queue in one call -- so the
per-round hot path allocates matrices instead of one object per
(item, level) pair.  The three kernels mirror the paper's math exactly:

* :func:`combined_utility_matrix` -- ``U(i, j) = U_c(i) x U_p(i, j)``
  (Eq. 1) as an outer product of a content-utility column and a
  presentation-utility row (or per-item rows);
* :func:`lyapunov_adjusted_matrix` -- the drift-plus-penalty adjustment
  ``U_a(i, j) = Q s(i) + (P - kappa) rho(i, j) + V U(i, j)`` (Eq. 7),
  with the same operation order and unit scaling as
  :meth:`repro.core.lyapunov.LyapunovController.adjusted_utility`, so the
  two paths agree bit for bit;
* :func:`greedy_select` / :func:`greedy_select_hull` -- Algorithm 1's
  utility-size-gradient greedy over row arrays, optionally behind the
  LP-domination (convex hull) preprocessing of :func:`hull_levels`;
* :func:`feature_matrix` -- Section V-A's classifier feature layout for a
  whole record batch in one array pass (the scoring hot path of
  :meth:`repro.experiments.runner.UtilityAnnotations.train`).

Layering contract (enforced by richlint RL601): this module imports
nothing from the policy or orchestration layers -- only the standard
library and numpy.  Bit-for-bit parity with the legacy object path is
asserted by ``benchmarks/test_bench_kernels.py``; keep any float
arithmetic in the exact order written here.
"""

from __future__ import annotations

import heapq
from typing import Sequence

import numpy as np

__all__ = [
    "combined_utility_matrix",
    "exp_decay_column",
    "feature_matrix",
    "gradient",
    "greedy_select",
    "greedy_select_hull",
    "hull_levels",
    "ingest_round_index",
    "hull_levels_batched",
    "lyapunov_adjusted_matrix",
    "merge_channel_rows",
    "merge_channel_rows_batched",
    "lyapunov_adjusted_rows",
    "replenish_data_column",
    "replenish_energy_column",
]


def feature_matrix(
    tie_strengths: Sequence[float],
    is_friend: Sequence[bool],
    favorite_genre: Sequence[bool],
    track_popularity: Sequence[int],
    album_popularity: Sequence[int],
    artist_popularity: Sequence[int],
    timestamps: Sequence[float],
    kind_codes: Sequence[int],
) -> np.ndarray:
    """Section V-A's classifier features for a whole batch in one pass.

    Column layout matches :data:`repro.ml.dataset.FEATURE_NAMES`:
    tie/friend/genre, three popularity scores normalized to [0, 1], three
    timestamp features and a 3-wide one-hot of the publication kind
    (``kind_codes``: 0 = friend feed, 1 = artist release, 2 = playlist).

    Bit-identical to the scalar
    :meth:`repro.ml.dataset.FeatureExtractor._vector` applied per row:
    every op is an IEEE-754 double division, modulo or comparison, which
    numpy and pure Python evaluate identically (for the modulo, both
    follow the sign-of-divisor convention and timestamps are
    non-negative).
    """
    n = len(timestamps)
    out = np.empty((n, 12), dtype=np.float64)
    timestamps = np.asarray(timestamps, dtype=np.float64)
    hour = (timestamps / 3600.0) % 24.0
    day = (timestamps // 86400.0) % 7.0
    kinds = np.asarray(kind_codes, dtype=np.int64)
    out[:, 0] = np.asarray(tie_strengths, dtype=np.float64)
    out[:, 1] = np.asarray(is_friend, dtype=np.float64)
    out[:, 2] = np.asarray(favorite_genre, dtype=np.float64)
    out[:, 3] = np.asarray(track_popularity, dtype=np.float64) / 100.0
    out[:, 4] = np.asarray(album_popularity, dtype=np.float64) / 100.0
    out[:, 5] = np.asarray(artist_popularity, dtype=np.float64) / 100.0
    out[:, 6] = hour / 24.0
    out[:, 7] = day >= 5.0
    out[:, 8] = (hour >= 22.0) | (hour < 6.0)
    out[:, 9] = kinds == 0
    out[:, 10] = kinds == 1
    out[:, 11] = kinds == 2
    return out


def exp_decay_column(
    contents: Sequence[float], ages_seconds: Sequence[float], tau_seconds: float
) -> np.ndarray:
    """Exponentially aged content utilities: ``U_c(i) * exp(-age_i / tau)``.

    Uses ``math.exp`` element-wise (not ``np.exp``) so the result is
    bit-identical to :meth:`repro.core.utility.ExponentialAging.decay`
    applied per item -- the two libm paths may differ by one ulp.
    """
    import math

    return np.array(
        [
            content * math.exp(-age / tau_seconds)
            for content, age in zip(contents, ages_seconds)
        ],
        dtype=np.float64,
    )


def combined_utility_matrix(
    contents: Sequence[float] | np.ndarray,
    presentation_utilities: Sequence[float] | np.ndarray,
) -> np.ndarray:
    """``U[i, j] = U_c(i) * U_p(j)`` for a queue column and a ladder row.

    ``presentation_utilities`` is either one shared ladder row (1-D, the
    homogeneous-queue fast path) or one row per item (2-D).
    """
    content_column = np.asarray(contents, dtype=np.float64)
    ladder = np.asarray(presentation_utilities, dtype=np.float64)
    if ladder.ndim == 1:
        return content_column[:, None] * ladder[None, :]
    return content_column[:, None] * ladder


def lyapunov_adjusted_matrix(
    utilities: np.ndarray,
    energies_joules: Sequence[float] | np.ndarray,
    backlog_bytes: Sequence[float] | np.ndarray,
    *,
    q_bytes: float,
    p_joules: float,
    kappa_joules: float,
    v: float,
    size_scale: float,
    energy_scale: float,
) -> np.ndarray:
    """Eq. 7 over a whole queue: ``U_a = Q s + (P - kappa) rho + V U``.

    ``utilities`` is the ``(n_items, n_levels)`` matrix of combined
    utilities; ``energies_joules`` is one shared per-level row (1-D) or a
    per-item matrix (2-D); ``backlog_bytes`` is the per-item ``s(i)``
    column (each item's total backlog contribution).  Column 0 -- the
    "not sent" level -- is forced to exactly 0.0, matching
    :meth:`~repro.core.lyapunov.LyapunovController.adjusted_profile`.

    The order of float operations replicates ``adjusted_utility``:
    ``(Q*ss)*(s_i*ss) + ((P-kappa)*es)*(rho*es) + V*U``, evaluated left
    to right, so results match the scalar path bit for bit.
    """
    utility_matrix = np.asarray(utilities, dtype=np.float64)
    energies = np.asarray(energies_joules, dtype=np.float64)
    backlog = np.asarray(backlog_bytes, dtype=np.float64)
    queue_column = (q_bytes * size_scale) * (backlog * size_scale)
    energy_terms = ((p_joules - kappa_joules) * energy_scale) * (
        energies * energy_scale
    )
    if energy_terms.ndim == 1:
        energy_terms = energy_terms[None, :]
    adjusted = queue_column[:, None] + energy_terms + v * utility_matrix
    adjusted[:, 0] = 0.0
    return adjusted


def lyapunov_adjusted_rows(
    utilities: np.ndarray,
    energies_row: Sequence[float] | np.ndarray,
    item_backlog_bytes: float,
    q_bytes_column: Sequence[float] | np.ndarray,
    p_joules_column: Sequence[float] | np.ndarray,
    *,
    kappa_joules: float,
    v: float,
    size_scale: float,
    energy_scale: float,
) -> np.ndarray:
    """Eq. 7 across a whole *cohort*: many users' queues in one matrix.

    The multi-user twin of :func:`lyapunov_adjusted_matrix`.  Row ``i``
    is one queued item of some user; ``q_bytes_column[i]`` /
    ``p_joules_column[i]`` carry that user's round-frozen ``Q(t)`` /
    ``P(t)`` (broadcast per item by the caller).  ``energies_row`` is the
    shared per-level energy estimate of the round's network state and
    ``item_backlog_bytes`` the shared per-item backlog contribution
    ``s(i)`` (one presentation ladder across the cohort).

    Every float operation pairs the same operands in the same order as
    the single-user kernel -- ``(Q*ss)*(s_i*ss) + ((P-kappa)*es)*(rho*es)
    + V*U`` -- so slicing one user's rows out of the result is
    bit-identical to calling :func:`lyapunov_adjusted_matrix` for that
    user alone.
    """
    utility_matrix = np.asarray(utilities, dtype=np.float64)
    energies = np.asarray(energies_row, dtype=np.float64)
    q_column = np.asarray(q_bytes_column, dtype=np.float64)
    p_column = np.asarray(p_joules_column, dtype=np.float64)
    queue_column = (q_column * size_scale) * (item_backlog_bytes * size_scale)
    energy_terms = ((p_column - kappa_joules) * energy_scale)[:, None] * (
        energies * energy_scale
    )[None, :]
    adjusted = queue_column[:, None] + energy_terms + v * utility_matrix
    adjusted[:, 0] = 0.0
    return adjusted


def replenish_data_column(available_bytes: np.ndarray, theta_bytes: float) -> None:
    """Algorithm 2, step 2 for every user at once: ``B(t) += theta``.

    In-place over the cohort's byte-budget column; one float add per
    user, identical to :meth:`repro.core.budgets.DataBudget.replenish`
    (no rollover cap -- the paper's unbounded rollover).
    """
    available_bytes += theta_bytes


def replenish_energy_column(
    available_joules: np.ndarray,
    e_t_column: np.ndarray,
    kappa_joules: float,
) -> None:
    """Masked energy replenishment: ``P(t) += e(t)`` while ``P(t) <= kappa``.

    In-place over the cohort's energy column.  The mask reproduces the
    per-user conditional of
    :meth:`repro.core.budgets.EnergyBudget.replenish` exactly: users
    already above ``kappa`` accept nothing this round.
    """
    mask = available_joules <= kappa_joules
    available_joules[mask] += e_t_column[mask]


def ingest_round_index(
    created_at: Sequence[float] | np.ndarray,
    round_times: Sequence[float] | np.ndarray,
) -> np.ndarray:
    """The round at which each item becomes schedulable, for a whole cohort.

    In the event-driven path an item's ``enqueue`` fires before the round
    tick sharing its timestamp (FIFO tie-break on the simulator heap), so
    an item joins the scheduling queue at the first round whose time is
    ``>= created_at``.  Returns that round index per item;
    ``len(round_times)`` marks items created after the last round (they
    stay in the incoming queue forever, exactly like the scalar path).
    """
    times = np.asarray(round_times, dtype=np.float64)
    created = np.asarray(created_at, dtype=np.float64)
    return np.searchsorted(times, created, side="left")


def merge_channel_rows(
    sizes_rows: Sequence[Sequence[int]],
    profits_rows: Sequence[Sequence[float]],
) -> tuple[list[int], list[float], list[tuple[int, int]]]:
    """Fuse one item's per-channel ladders into a single MCKP choice row.

    ``sizes_rows[c]`` / ``profits_rows[c]`` describe channel ``c``'s
    ladder for the item: entry ``j`` is the (billed) size and adjusted
    profit of presenting at level ``j`` on that channel, with entry 0 the
    shared "not sent" choice (size 0).  The merged row is the union of
    all (channel, level > 0) choices sorted by strictly increasing size,
    which is exactly the precondition of :func:`greedy_select_hull` --
    the hull pass then prunes dominated cross-channel choices, so
    Algorithm 1 picks channel and level *jointly*.

    Equal-size ties keep the highest-profit choice (then the lowest
    channel index, then the lowest level -- deterministic).  A non-null
    choice whose billed size is 0 cannot be represented (index 0 is
    reserved for "not sent") and is dropped.

    Returns ``(sizes, profits, backmap)`` where ``backmap[j]`` is the
    ``(channel_index, level)`` behind merged choice ``j`` and
    ``backmap[0] == (0, 0)`` is the not-sent sentinel.
    """
    choices: list[tuple[int, float, int, int]] = []
    for channel_index, (sizes, profits) in enumerate(
        zip(sizes_rows, profits_rows)
    ):
        for level in range(1, len(sizes)):
            choices.append(
                (int(sizes[level]), float(profits[level]), channel_index, level)
            )
    choices.sort(key=lambda entry: (entry[0], -entry[1], entry[2], entry[3]))
    merged_sizes: list[int] = [0]
    merged_profits: list[float] = [0.0]
    backmap: list[tuple[int, int]] = [(0, 0)]
    for size, profit, channel_index, level in choices:
        if size <= merged_sizes[-1]:
            continue
        merged_sizes.append(size)
        merged_profits.append(profit)
        backmap.append((channel_index, level))
    return merged_sizes, merged_profits, backmap


def merge_channel_rows_batched(
    sizes_rows: Sequence[Sequence[int]],
    profits_stack: Sequence[np.ndarray],
) -> tuple[list[int], np.ndarray, np.ndarray, np.ndarray]:
    """:func:`merge_channel_rows` for a whole cohort group in one call.

    When every item in a group shares the same per-channel billed-size
    rows (one presentation ladder across the group, as in the columnar
    engine), the *merged size axis* is identical for all items -- only
    the winning (channel, level) behind each merged size can differ,
    decided by each item's own profits.  ``profits_stack[c]`` is channel
    ``c``'s ``(n_items, n_levels_c)`` adjusted-profit matrix (column 0
    the shared "not sent" choice).

    Returns ``(merged_sizes, profits, channels, levels)``: the shared
    strictly-increasing size row (leading 0), and three ``(n_items, k)``
    arrays whose column ``j`` carries each item's winning profit and its
    (channel, level) backmap for merged choice ``j`` (column 0 is the
    not-sent sentinel: profit 0.0, channel 0, level 0).

    Row ``i`` of the output equals ``merge_channel_rows`` applied to item
    ``i`` alone: within an equal-size group the per-item sort keeps the
    highest profit, then the lowest channel index, then the lowest level
    -- reproduced here by ``np.argmax`` (first occurrence of the maximum)
    over group members pre-sorted by (channel, level).
    """
    candidates: list[tuple[int, int, int]] = []
    for channel_index, sizes in enumerate(sizes_rows):
        for level in range(1, len(sizes)):
            candidates.append((int(sizes[level]), channel_index, level))
    candidates.sort()

    groups: list[tuple[int, list[tuple[int, int]]]] = []
    for size, channel_index, level in candidates:
        if size <= 0:
            # A billed size of 0 cannot be represented (index 0 is the
            # not-sent sentinel); merge_channel_rows drops it too.
            continue
        if groups and groups[-1][0] == size:
            groups[-1][1].append((channel_index, level))
        else:
            groups.append((size, [(channel_index, level)]))

    n_items = int(profits_stack[0].shape[0]) if profits_stack else 0
    width = len(groups) + 1
    merged_sizes = [0] + [size for size, _ in groups]
    merged_profits = np.zeros((n_items, width), dtype=np.float64)
    merged_channels = np.zeros((n_items, width), dtype=np.int64)
    merged_levels = np.zeros((n_items, width), dtype=np.int64)
    for column, (_, members) in enumerate(groups, start=1):
        if len(members) == 1:
            channel_index, level = members[0]
            merged_profits[:, column] = profits_stack[channel_index][:, level]
            merged_channels[:, column] = channel_index
            merged_levels[:, column] = level
        else:
            stacked = np.stack(
                [profits_stack[c][:, level] for c, level in members], axis=1
            )
            winner = np.argmax(stacked, axis=1)
            merged_profits[:, column] = np.take_along_axis(
                stacked, winner[:, None], axis=1
            )[:, 0]
            member_channels = np.array([c for c, _ in members], dtype=np.int64)
            member_levels = np.array([lvl for _, lvl in members], dtype=np.int64)
            merged_channels[:, column] = member_channels[winner]
            merged_levels[:, column] = member_levels[winner]
    return merged_sizes, merged_profits, merged_channels, merged_levels


def hull_levels_batched(
    sizes_row: Sequence[int] | np.ndarray,
    profits_matrix: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """:func:`hull_levels` for every row of a shared-size-axis matrix.

    ``sizes_row`` is one strictly-increasing size row (leading 0) shared
    by all items; ``profits_matrix`` is ``(n_items, k)`` with column 0
    equal to 0.0.  Returns ``(hull_indices, hull_lengths)``: row ``i``'s
    surviving column indices are ``hull_indices[i, :hull_lengths[i]]``,
    identical to ``hull_levels(sizes_row, profits_matrix[i])``.

    Both passes replicate the scalar kernel's float comparisons exactly:
    the dominance pass keeps column ``j`` iff its profit strictly exceeds
    the running maximum of columns ``0..j-1``, and the Graham-scan pass
    pops while ``grad_ac >= grad_ab`` with gradients computed as the same
    IEEE-754 subtract-then-divide (sizes convert to float64 exactly).
    """
    sizes = np.asarray(sizes_row, dtype=np.float64)
    profits = np.asarray(profits_matrix, dtype=np.float64)
    n_items, width = profits.shape

    kept = np.zeros((n_items, width), dtype=bool)
    kept[:, 0] = True
    if width > 1:
        running_max = np.maximum.accumulate(profits, axis=1)
        kept[:, 1:] = profits[:, 1:] > running_max[:, :-1]

    hull_indices = np.zeros((n_items, width), dtype=np.int64)
    hull_lengths = np.ones(n_items, dtype=np.int64)  # column 0 pre-pushed
    for column in range(1, width):
        active = kept[:, column]
        if not active.any():
            continue
        popping = active.copy()
        while True:
            rows = np.flatnonzero(popping & (hull_lengths >= 2))
            if rows.size == 0:
                break
            a = hull_indices[rows, hull_lengths[rows] - 2]
            b = hull_indices[rows, hull_lengths[rows] - 1]
            gradient_ab = (profits[rows, b] - profits[rows, a]) / (
                sizes[b] - sizes[a]
            )
            gradient_ac = (profits[rows, column] - profits[rows, a]) / (
                sizes[column] - sizes[a]
            )
            pop = gradient_ac >= gradient_ab
            popping[rows[~pop]] = False
            hull_lengths[rows[pop]] -= 1
        push_rows = np.flatnonzero(active)
        hull_indices[push_rows, hull_lengths[push_rows]] = column
        hull_lengths[push_rows] += 1
    return hull_indices, hull_lengths


def gradient(
    sizes: Sequence[int], profits: Sequence[float], level: int
) -> float:
    """Utility-size gradient for upgrading ``level -> level + 1``.

    The denominator is positive by the strict-size-increase invariant of
    presentation ladders.
    """
    dsize = sizes[level + 1] - sizes[level]
    dprofit = profits[level + 1] - profits[level]
    return dprofit / dsize


def greedy_select(
    keys: Sequence[int],
    sizes_rows: Sequence[Sequence[int]],
    profits_rows: Sequence[Sequence[float]],
    budget: int,
) -> tuple[list[int], int, float]:
    """Algorithm 1 (SelectPresentations) over parallel row arrays.

    Row ``i`` describes item ``keys[i]``: ``sizes_rows[i][j]`` /
    ``profits_rows[i][j]`` are the size and (possibly Lyapunov-adjusted)
    profit of level ``j``.  Level 0 must have size 0; sizes must strictly
    increase; keys must be unique (they are the heap tie-break, exactly
    as in the legacy object path).

    Returns ``(levels, total_size, total_profit)`` with ``levels[i]`` the
    chosen level of item ``i`` in input order.

    Semantics match :func:`repro.core.mckp.select_presentations`:
    repeatedly upgrade the item whose next upgrade has the largest
    gradient; skip stale heap entries; stop at the first non-positive
    head gradient; an unaffordable upgrade freezes that item only.
    """
    levels = [0] * len(keys)
    index_of: dict[int, int] = {}
    heap: list[tuple[float, int, int]] = []  # (-gradient, key, current level)
    for index, key in enumerate(keys):
        index_of[key] = index
        if len(sizes_rows[index]) > 1:
            heap.append(
                (-gradient(sizes_rows[index], profits_rows[index], 0), key, 0)
            )
    if len(index_of) != len(keys):
        raise ValueError("item keys must be unique")
    heapq.heapify(heap)

    total_size = 0
    total_profit = 0.0
    while heap:
        neg_grad, key, level = heapq.heappop(heap)
        index = index_of[key]
        if levels[index] != level:
            # Stale entry from before a previous upgrade of this item.
            continue
        if -neg_grad <= 0.0:
            # Monotone-gradient ladders: no later upgrade of any item can
            # beat this one, so the remaining heap is all non-improving.
            break
        sizes = sizes_rows[index]
        profits = profits_rows[index]
        size_gain = sizes[level + 1] - sizes[level]
        if total_size + size_gain > budget:
            # Freeze this item; cheaper upgrades of other items may still fit.
            continue
        next_level = level + 1
        levels[index] = next_level
        total_size += size_gain
        total_profit += profits[next_level] - profits[level]
        if next_level < len(sizes) - 1:
            heapq.heappush(
                heap, (-gradient(sizes, profits, next_level), key, next_level)
            )
    return levels, total_size, total_profit


def hull_levels(
    sizes: Sequence[int], profits: Sequence[float]
) -> list[int]:
    """Levels surviving LP-domination filtering, in increasing size order.

    Classical MCKP preprocessing (Sinha & Zoltners): drop *dominated*
    levels (no larger size, no smaller profit elsewhere), then drop
    *LP-dominated* levels below the upper-left convex hull of the
    (size, profit) cloud.  Survivors always include level 0 and have
    strictly decreasing gradients -- the precondition for Algorithm 1's
    one-upgrade optimality bound under ARBITRARY profit profiles.
    """
    # Dominance pass: sizes strictly increase by construction, so a level
    # is dominated iff its profit does not exceed the best profit so far.
    kept: list[int] = [0]
    best_profit = profits[0]
    for level in range(1, len(sizes)):
        if profits[level] > best_profit:
            kept.append(level)
            best_profit = profits[level]

    # Convex hull pass over the kept levels (Graham-scan style).
    hull: list[int] = []
    for level in kept:
        while len(hull) >= 2:
            a, b = hull[-2], hull[-1]
            gradient_ab = (profits[b] - profits[a]) / (sizes[b] - sizes[a])
            gradient_ac = (profits[level] - profits[a]) / (
                sizes[level] - sizes[a]
            )
            if gradient_ac >= gradient_ab:
                hull.pop()
            else:
                break
        hull.append(level)
    return hull


def greedy_select_hull(
    keys: Sequence[int],
    sizes_rows: Sequence[Sequence[int]],
    profits_rows: Sequence[Sequence[float]],
    budget: int,
) -> tuple[list[int], int, float]:
    """Algorithm 1 behind per-item LP-domination preprocessing.

    Reduces each row to its convex hull (so gradients strictly decrease),
    runs :func:`greedy_select` on the reduced rows, and maps chosen levels
    back to original ladder indices.  Identical selections to
    :func:`greedy_select` on gradient-monotone ladders; strictly safer
    when adjusted-utility profiles dip (e.g. strongly negative energy
    pressure), at an ``O(n k)`` preprocessing cost.
    """
    hulls = [
        hull_levels(sizes, profits)
        for sizes, profits in zip(sizes_rows, profits_rows)
    ]
    reduced_sizes = [
        [sizes_rows[i][level] for level in hull] for i, hull in enumerate(hulls)
    ]
    reduced_profits = [
        [profits_rows[i][level] for level in hull] for i, hull in enumerate(hulls)
    ]
    levels, total_size, total_profit = greedy_select(
        keys, reduced_sizes, reduced_profits, budget
    )
    return (
        [hulls[i][level] for i, level in enumerate(levels)],
        total_size,
        total_profit,
    )
