"""The layered scheduling runtime.

Three enforced layers (richlint RL601 guards the import direction):

1. **Kernels** (:mod:`repro.runtime.kernels`) -- pure, stateless,
   array-oriented math: combined utility, the Eq. 7 Lyapunov adjustment
   and the Algorithm-1 greedy over whole-queue columns.  Imports nothing
   above the standard library and numpy.
2. **Policy** (:mod:`repro.runtime.policy`,
   :mod:`repro.runtime.registry`) -- ``SchedulerPolicy`` implementations
   (``richnote``, ``fifo``, ``util``) resolvable by name, plus the
   :class:`~repro.runtime.loop.RoundLoop` of composable round phases
   (ingest, replenish, select, deliver).
3. **Orchestration** -- the experiment runner, pub/sub broker and CLI,
   which resolve policies through the registry only.

See DESIGN.md section 9 for the layer contracts and docs/EXTENDING.md
section 7 for writing a custom policy.
"""

from repro.runtime import registry
from repro.runtime.loop import RoundLoop, RoundState
from repro.runtime.policy import (
    FifoPolicy,
    FixedLevelPolicy,
    RichNotePolicy,
    RoundContext,
    RoundDecision,
    SchedulerPolicy,
    UtilPolicy,
)
from repro.runtime.types import Delivery, DroppedItem, RoundResult

__all__ = [
    "Delivery",
    "DroppedItem",
    "FifoPolicy",
    "FixedLevelPolicy",
    "RichNotePolicy",
    "RoundContext",
    "RoundDecision",
    "RoundLoop",
    "RoundResult",
    "RoundState",
    "SchedulerPolicy",
    "UtilPolicy",
    "registry",
]
