"""Scheduling policies: what to deliver this round, and at which level.

The middle runtime layer.  A policy sees one :class:`RoundContext` -- the
frozen facts of a round (eligible items, effective byte budget, queue and
energy state) -- and returns a :class:`RoundDecision` with the chosen
``(item, level)`` pairs.  The surrounding machinery (queues, budgets,
delivery, TTL) lives in :class:`repro.runtime.loop.RoundLoop`; the math
lives in :mod:`repro.runtime.kernels`.

Built-in policies, registered by name in :mod:`repro.runtime.registry`:

``richnote``
    The paper's Lyapunov-adjusted MCKP selection (Eq. 7 + Algorithm 1),
    computed over array kernels: one utility matrix and one adjusted
    matrix per ladder group instead of one ``MckpItem`` per queue entry.
    Bit-identical to the legacy object path (asserted by
    ``benchmarks/test_bench_kernels.py``).
``fifo`` / ``util``
    Section V-C's baselines: fixed presentation level, greedy fill in
    arrival order / descending utility order.

Custom policies need only ``select``; ``attach(loop)`` and
``after_round(loop, result)`` are optional lifecycle hooks discovered by
duck typing (see docs/EXTENDING.md section 7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol, Sequence, Union, runtime_checkable

from repro.core.channels import Channel, ChannelSet
from repro.core.content import ContentItem
from repro.core.lyapunov import (
    LyapunovConfig,
    LyapunovController,
    LyapunovState,
)
from repro.core.utility import CombinedUtilityModel
from repro.runtime import kernels
from repro.runtime.registry import register

#: One selected delivery: ``(item, level)`` on the legacy single-channel
#: path, or ``(item, level, channel)`` when a multi-channel
#: :class:`~repro.core.channels.ChannelSet` is configured.
Selection = Union[
    "tuple[ContentItem, int]", "tuple[ContentItem, int, Channel]"
]


def _multi_channel(channels: ChannelSet | None) -> bool:
    """True when selection must pick a channel jointly with the level."""
    return channels is not None and not channels.is_single_passthrough


@dataclass(frozen=True, slots=True)
class RoundContext:
    """Everything a policy may consult when selecting for one round.

    ``items`` are the selection-eligible scheduling-queue entries (TTL
    survivors, not in retry backoff), in queue order.  ``backlog_bytes``
    / ``energy_available_joules`` are the ``Q(t)`` / ``P(t)`` snapshots
    frozen for the round, and ``estimate_energy`` prices a download of a
    given size under the round's (fixed) network state.  ``channels`` is
    the configured :class:`~repro.core.channels.ChannelSet`; ``None`` (or
    a single passthrough channel) selects the legacy single-push path and
    policies then return plain ``(item, level)`` pairs.
    """

    now: float
    effective_budget: int
    items: Sequence[ContentItem]
    backlog_bytes: float
    energy_available_joules: float
    utility_model: CombinedUtilityModel
    estimate_energy: Callable[[int], float]
    channels: ChannelSet | None = None


@dataclass(frozen=True, slots=True)
class RoundDecision:
    """A policy's answer: ``(item, level > 0)`` pairs within budget.

    With multiple channels configured, selections are
    ``(item, level, channel)`` triples and ``total_size`` counts *billed*
    bytes (what the data budget is charged) rather than wire bytes.
    """

    selections: list
    total_size: int = 0
    total_profit: float = 0.0


@runtime_checkable
class SchedulerPolicy(Protocol):
    """Anything that can pick this round's deliveries.

    Optional hooks, discovered via ``getattr``:

    * ``attach(loop)`` -- called once when the policy is bound to a
      :class:`~repro.runtime.loop.RoundLoop`; validate or derive
      configuration from the loop's budgets here.
    * ``after_round(loop, result)`` -- called after every round with the
      finalized :class:`~repro.runtime.types.RoundResult`; record
      diagnostics here.
    """

    def select(self, ctx: RoundContext) -> RoundDecision:
        """Choose deliveries for the round described by ``ctx``."""
        ...  # pragma: no cover - protocol


@register("richnote")
class RichNotePolicy:
    """The paper's policy: Lyapunov-adjusted MCKP over array kernels.

    Parameters
    ----------
    lyapunov:
        Control configuration (V, kappa, unit scales).  When ``None`` the
        config is derived from the bound loop's energy budget at
        ``attach`` time; when given, its ``kappa`` must match the loop's.
    use_hull_selector:
        Run Algorithm 1 behind LP-domination (convex hull) preprocessing
        (:func:`repro.runtime.kernels.greedy_select_hull`).  Identical
        selections on the library's gradient-monotone ladders; strictly
        safer when adjusted-utility profiles dip.
    """

    def __init__(
        self,
        lyapunov: LyapunovConfig | None = None,
        use_hull_selector: bool = False,
    ) -> None:
        self._explicit_config = lyapunov
        self.use_hull_selector = use_hull_selector
        self.controller = LyapunovController(lyapunov)
        #: End-of-round Lyapunov function values L(t) -- the stability
        #: diagnostic (bounded L <=> bounded queues, P near kappa).
        self.lyapunov_history: list[float] = []

    # -- lifecycle hooks ------------------------------------------------------

    def attach(self, loop) -> None:
        """Derive/validate the Lyapunov config against the loop's budgets."""
        config = self._explicit_config or LyapunovConfig(
            kappa_joules=loop.energy_budget.kappa_joules
        )
        if abs(config.kappa_joules - loop.energy_budget.kappa_joules) > 1e-6:
            raise ValueError(
                "Lyapunov kappa must match the energy budget's kappa "
                f"({config.kappa_joules} != {loop.energy_budget.kappa_joules})"
            )
        self.controller = LyapunovController(config)

    def after_round(self, loop, result) -> None:
        self.lyapunov_history.append(self.lyapunov_value(loop))

    def lyapunov_value(self, loop) -> float:
        """Current ``L(t)`` over the loop's live queue and energy state."""
        state = LyapunovState(
            q_bytes=loop.backlog_bytes(),
            p_joules=loop.energy_budget.available,
        )
        return self.controller.lyapunov_function(state)

    # -- selection ------------------------------------------------------------

    def select(self, ctx: RoundContext) -> RoundDecision:
        state = LyapunovState(
            q_bytes=ctx.backlog_bytes,
            p_joules=ctx.energy_available_joules,
        )
        items = list(ctx.items)
        if _multi_channel(ctx.channels):
            return self._select_channels(ctx, items, state)
        if type(ctx.utility_model) is CombinedUtilityModel:
            sizes_rows, profits_rows = self._array_profiles(ctx, items, state)
        else:
            # Custom utility models keep the scalar per-item path.
            sizes_rows, profits_rows = self._object_profiles(ctx, items, state)

        select_fn = (
            kernels.greedy_select_hull
            if self.use_hull_selector
            else kernels.greedy_select
        )
        levels, total_size, total_profit = select_fn(
            [item.item_id for item in items],
            sizes_rows,
            profits_rows,
            ctx.effective_budget,
        )
        return RoundDecision(
            selections=[
                (items[index], level)
                for index, level in enumerate(levels)
                if level > 0
            ],
            total_size=total_size,
            total_profit=total_profit,
        )

    def _select_channels(
        self,
        ctx: RoundContext,
        items: list[ContentItem],
        state: LyapunovState,
    ) -> RoundDecision:
        """Joint (channel x level) MCKP over the configured channel set.

        Each item's choice set is the union of every channel's ladder:
        per channel the Eq. 7 adjustment is computed on that channel's
        presentation utilities and *wire*-size energies, then the rows
        are fused by :func:`repro.runtime.kernels.merge_channel_rows`
        into one strictly-increasing row priced in *billed* bytes.
        Cross-channel gradients are not monotone, so Algorithm 1 always
        runs behind the hull (LP-domination) preprocessing here.
        """
        channels = list(ctx.channels)
        model = ctx.utility_model
        now = ctx.now
        energy_cache: dict[int, float] = {}

        def priced_energy(wire_size: int) -> float:
            energy = energy_cache.get(wire_size)
            if energy is None:
                energy = ctx.estimate_energy(wire_size)
                energy_cache[wire_size] = energy
            return energy

        sizes_rows: list[list[int]] = []
        profits_rows: list[list[float]] = []
        backmaps: list[list[tuple[int, int]]] = []
        for item in items:
            # Q(t)'s per-item contribution stays the item's native ladder
            # (Eq. 4: queue backlog is independent of the route chosen).
            item_backlog = float(item.ladder.total_size())
            billed_rows: list[list[int]] = []
            adjusted_rows: list[list[float]] = []
            for channel in channels:
                ladder = channel.ladder_for(item)
                n_levels = ladder.max_level + 1
                wire_sizes = [ladder.size(level) for level in range(n_levels)]
                utilities = [
                    channel.utility(model, item, level, now)
                    for level in range(n_levels)
                ]
                energies = [0.0] + [
                    priced_energy(size) for size in wire_sizes[1:]
                ]
                billed_rows.append(
                    [0]
                    + [
                        channel.cost.billed_bytes(size)
                        for size in wire_sizes[1:]
                    ]
                )
                adjusted_rows.append(
                    self.controller.adjusted_profile(
                        state, item_backlog, energies, utilities
                    )
                )
            merged_sizes, merged_profits, backmap = kernels.merge_channel_rows(
                billed_rows, adjusted_rows
            )
            sizes_rows.append(merged_sizes)
            profits_rows.append(merged_profits)
            backmaps.append(backmap)

        choices, total_size, total_profit = kernels.greedy_select_hull(
            [item.item_id for item in items],
            sizes_rows,
            profits_rows,
            ctx.effective_budget,
        )
        selections = []
        for index, choice in enumerate(choices):
            if choice == 0:
                continue
            channel_index, level = backmaps[index][choice]
            selections.append((items[index], level, channels[channel_index]))
        return RoundDecision(
            selections=selections,
            total_size=total_size,
            total_profit=total_profit,
        )

    def _array_profiles(
        self,
        ctx: RoundContext,
        items: list[ContentItem],
        state: LyapunovState,
    ) -> tuple[list[list[int]], list[list[float]]]:
        """Adjusted-profit rows via matrix kernels, one group per ladder.

        The decayed content column, the per-level presentation row and the
        Eq. 7 adjustment are each the same float operations as the scalar
        path (see :mod:`repro.runtime.kernels`), so the resulting rows --
        and therefore the greedy's selections -- are bit-identical.
        Energy estimates are memoized by size: the device's network state
        is fixed within a round, so equal sizes price equally.
        """
        now = ctx.now
        aging = ctx.utility_model.aging
        if aging is None:
            contents = [item.content_utility for item in items]
        else:
            contents = [
                aging.decay(item.content_utility, max(0.0, now - item.created_at))
                for item in items
            ]

        groups: dict[int, tuple] = {}
        for index, item in enumerate(items):
            entry = groups.get(id(item.ladder))
            if entry is None:
                groups[id(item.ladder)] = (item.ladder, [index])
            else:
                entry[1].append(index)

        cfg = self.controller.config
        energy_cache: dict[int, float] = {}
        sizes_rows: list[list[int]] = [None] * len(items)  # type: ignore[list-item]
        profits_rows: list[list[float]] = [None] * len(items)  # type: ignore[list-item]
        for ladder, indices in groups.values():
            n_levels = ladder.max_level + 1
            level_sizes = [ladder.size(level) for level in range(n_levels)]
            presentation_row = [ladder.utility(level) for level in range(n_levels)]
            energies = [0.0]
            for size in level_sizes[1:]:
                energy = energy_cache.get(size)
                if energy is None:
                    energy = ctx.estimate_energy(size)
                    energy_cache[size] = energy
                energies.append(energy)
            item_backlog = float(ladder.total_size())

            utilities = kernels.combined_utility_matrix(
                [contents[index] for index in indices], presentation_row
            )
            adjusted = kernels.lyapunov_adjusted_matrix(
                utilities,
                energies,
                [item_backlog] * len(indices),
                q_bytes=state.q_bytes,
                p_joules=state.p_joules,
                kappa_joules=cfg.kappa_joules,
                v=cfg.v,
                size_scale=cfg.size_scale,
                energy_scale=cfg.energy_scale,
            )
            for index, row in zip(indices, adjusted.tolist()):
                sizes_rows[index] = level_sizes
                profits_rows[index] = row
        return sizes_rows, profits_rows

    def _object_profiles(
        self,
        ctx: RoundContext,
        items: list[ContentItem],
        state: LyapunovState,
    ) -> tuple[list[list[int]], list[list[float]]]:
        """Scalar per-item fallback for user-supplied utility models."""
        model = ctx.utility_model
        sizes_rows: list[list[int]] = []
        profits_rows: list[list[float]] = []
        for item in items:
            ladder = item.ladder
            n_levels = ladder.max_level + 1
            if hasattr(model, "utilities_for_ladder"):
                utilities = model.utilities_for_ladder(item, ctx.now)
            else:
                utilities = [
                    model.utility(item, level, ctx.now)
                    for level in range(n_levels)
                ]
            energies = [
                ctx.estimate_energy(ladder.size(level)) if level > 0 else 0.0
                for level in range(n_levels)
            ]
            profits = self.controller.adjusted_profile(
                state, float(ladder.total_size()), energies, utilities
            )
            sizes_rows.append([ladder.size(level) for level in range(n_levels)])
            profits_rows.append(profits)
        return sizes_rows, profits_rows


class FixedLevelPolicy:
    """Common base for the baselines: deliver at ``fixed_level`` in order.

    Subclasses define :meth:`order_items`; :meth:`fill` greedily takes
    items in that order, always at the (ladder-clamped) fixed level,
    while the remaining round budget affords them.  An item whose fixed
    presentation does not fit is *skipped for this round but stays
    queued* (head-of-line items larger than the leftover budget simply
    wait for rollover, which is what a fixed-level pipeline does in
    practice).
    """

    def __init__(self, fixed_level: int) -> None:
        if fixed_level < 1:
            raise ValueError("fixed level must be >= 1 (level 0 sends nothing)")
        self.fixed_level = fixed_level

    def level_for(self, item: ContentItem) -> int:
        """Clamp the fixed level to the item's ladder."""
        return min(self.fixed_level, item.ladder.max_level)

    def order_items(
        self,
        items: list[ContentItem],
        now: float,
        utility_model: CombinedUtilityModel,
    ) -> list[ContentItem]:
        """Policy-defined delivery order over the eligible items."""
        raise NotImplementedError

    def fill(
        self, ordered: list[ContentItem], effective_budget: int
    ) -> list[tuple[ContentItem, int]]:
        remaining = effective_budget
        chosen: list[tuple[ContentItem, int]] = []
        for item in ordered:
            level = self.level_for(item)
            size = item.ladder.size(level)
            if size <= remaining:
                chosen.append((item, level))
                remaining -= size
        return chosen

    def fill_channel(
        self,
        ordered: list[ContentItem],
        effective_budget: int,
        channel: Channel,
    ) -> list:
        """Greedy fixed-level fill routed over one channel (billed bytes)."""
        remaining = effective_budget
        chosen: list = []
        for item in ordered:
            level = min(self.fixed_level, channel.max_level(item))
            size = channel.billed_size(item, level)
            if size <= remaining:
                chosen.append((item, level, channel))
                remaining -= size
        return chosen

    def select(self, ctx: RoundContext) -> RoundDecision:
        ordered = self.order_items(list(ctx.items), ctx.now, ctx.utility_model)
        if _multi_channel(ctx.channels):
            # Baselines have no channel optimization: everything rides the
            # primary channel, mirroring a fixed-level push pipeline.
            return RoundDecision(
                selections=self.fill_channel(
                    ordered, ctx.effective_budget, ctx.channels.primary
                )
            )
        return RoundDecision(selections=self.fill(ordered, ctx.effective_budget))


@register("fifo")
class FifoPolicy(FixedLevelPolicy):
    """FIFO: oldest arrival first, fixed presentation level."""

    def order_items(
        self,
        items: list[ContentItem],
        now: float,
        utility_model: CombinedUtilityModel,
    ) -> list[ContentItem]:
        return sorted(items, key=lambda item: item.created_at)


@register("util")
class UtilPolicy(FixedLevelPolicy):
    """UTIL: highest combined utility first, fixed presentation level."""

    def order_items(
        self,
        items: list[ContentItem],
        now: float,
        utility_model: CombinedUtilityModel,
    ) -> list[ContentItem]:
        return sorted(
            items,
            key=lambda item: utility_model.utility(
                item, self.level_for(item), now
            ),
            reverse=True,
        )
