"""Columnar multi-user round execution: struct-of-arrays, one cohort at a time.

The scalar stack (:mod:`repro.runtime.loop` driven per user through
:class:`repro.sim.engine.Simulator`) walks one Python object graph per
user per round.  That is the right shape for extensibility -- policies,
fault engines and observers all hook the loop -- but it caps simulations
at a few hundred users.  This module re-expresses the *paper-default*
round semantics (no TTL, no fault engine, no level caps) as columns over
a whole cohort:

* :class:`ColumnarRoundState` -- the Algorithm 2 state as parallel numpy
  arrays: byte budgets ``B(t)``, energy budgets ``P(t)``, backlog
  ``Q(t)``, pending-notification counts and per-user RNG lanes, plus the
  ragged per-user scheduling queues (lists of flat item indices --
  masking happens by slicing, not padding);
* :class:`DeviceColumns` -- per-round connectivity states and battery
  replenishment ``e(t)`` for every user, precomputed from the *same*
  seeded :mod:`repro.sim` models the scalar path steps round by round;
* :class:`ColumnarEngine` -- the phase loop (ingest / replenish / select
  / deliver) over those columns.  Built-in policies
  (:class:`~repro.runtime.policy.RichNotePolicy`,
  :class:`~repro.runtime.policy.FifoPolicy`,
  :class:`~repro.runtime.policy.UtilPolicy`) run on cohort-wide kernels
  (:func:`repro.runtime.kernels.lyapunov_adjusted_rows` et al.); any
  other :class:`~repro.runtime.policy.SchedulerPolicy` runs unchanged
  through a per-user :class:`~repro.runtime.policy.RoundContext`
  adapter, exactly the snapshot :class:`~repro.runtime.loop.RoundLoop`
  would hand it.

Bit-for-bit parity with the scalar path is a hard contract, not an
aspiration: every float operation pairs the same operands in the same
order as the object path (see the golden-digest tests in
``tests/test_runtime.py`` and the seeded property tests in
``tests/test_columnar.py``).  When editing this module, treat any change
to an arithmetic expression as a digest-breaking change.

Scope: the engine models the paper's atomic delivery semantics.  TTL
expiry, the fault-tolerant delivery engine and service-layer level caps
stay on the scalar path (orchestration falls back per
``repro.experiments.columnar.supports``).  One presentation ladder is
shared across the cohort, mirroring how the experiment layer builds
items.  Policy lifecycle hooks run once per engine, not once per user:
``attach`` is invoked against a budget shim at bind time, and
``after_round`` diagnostics are not replayed -- deliveries and metrics,
the parity surface, are unaffected.

Layering (richlint RL601): this module sits in the runtime zone -- it
may use :mod:`repro.core`, :mod:`repro.sim` and its sibling runtime
modules, never :mod:`repro.experiments` or the CLI.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.budgets import EnergyBudget
from repro.core.channels import ChannelSet
from repro.core.content import ContentItem, PresentationLadder
from repro.core.utility import CombinedUtilityModel, ExponentialAging
from repro.runtime import kernels
from repro.runtime.policy import (
    FifoPolicy,
    RichNotePolicy,
    RoundContext,
    SchedulerPolicy,
    UtilPolicy,
)
from repro.sim.battery import DiurnalBatteryModel
from repro.sim.energy import TransferEnergyModel
from repro.sim.network import (
    DEFAULT_BANDWIDTH_BPS,
    MarkovNetworkModel,
    NetworkState,
)

__all__ = [
    "ColumnarCohort",
    "ColumnarEngine",
    "ColumnarRoundState",
    "ColumnarRunResult",
    "DeviceColumns",
    "build_device_columns",
    "needs_item_objects",
    "round_times",
]


def needs_item_objects(
    policy: "SchedulerPolicy", utility_model: CombinedUtilityModel
) -> bool:
    """Whether this policy/model pair runs on the RoundContext adapter path.

    The built-in policies under the stock utility model run on cohort
    kernels and never touch :class:`~repro.core.content.ContentItem`
    objects; anything else needs ``cohort.items`` materialized.  Exposed
    so orchestration layers can decide without importing concrete policy
    classes.
    """
    if type(utility_model) is not CombinedUtilityModel:
        return True
    return type(policy) not in (RichNotePolicy, FifoPolicy, UtilPolicy)

#: Compact per-round connectivity codes used by :class:`DeviceColumns`.
STATE_CODES: dict[NetworkState, int] = {
    NetworkState.CELL: 0,
    NetworkState.WIFI: 1,
    NetworkState.OFF: 2,
}
_CODE_STATES: tuple[NetworkState, ...] = (
    NetworkState.CELL,
    NetworkState.WIFI,
    NetworkState.OFF,
)
_OFF_CODE = STATE_CODES[NetworkState.OFF]


def round_times(round_seconds: float, duration_seconds: float) -> list[float]:
    """The exact round-tick times the event-driven runner produces.

    Replicates :meth:`repro.sim.engine.Simulator.schedule_periodic` with
    ``start=round_seconds``, ``until=duration + 1.0`` under a
    ``run(until=duration + 2.0)`` horizon -- including the float
    *accumulation* (``t += period``), which is not the same sequence as
    ``k * period`` once rounding error compounds.  Battery traces sample
    with the same accumulation, so round ``k`` reads battery sample
    ``k + 1`` exactly as the scalar path does.
    """
    if round_seconds <= 0:
        raise ValueError(f"period must be positive, got {round_seconds}")
    times: list[float] = []
    if round_seconds < duration_seconds + 2.0:
        t = round_seconds
        times.append(t)
        while t + round_seconds < duration_seconds + 1.0:
            t = t + round_seconds
            times.append(t)
    return times


@dataclass
class ColumnarCohort:
    """A population's notification streams as flat, user-partitioned columns.

    Items of user ``user_ids[u]`` occupy flat positions
    ``offsets[u]:offsets[u + 1]``, stable-sorted by ``created_at`` within
    the user (the order the event heap would ingest them).  One
    presentation ladder is shared cohort-wide.  ``items`` is optional and
    only needed by the generic-policy adapter path; the built-in fast
    paths never materialize :class:`~repro.core.content.ContentItem`
    objects.
    """

    user_ids: list[int]
    offsets: np.ndarray
    item_ids: list[int]
    created_at: np.ndarray
    contents: np.ndarray
    ladder: PresentationLadder
    items: list[ContentItem] | None = None

    def __post_init__(self) -> None:
        self.offsets = np.asarray(self.offsets, dtype=np.int64)
        self.created_at = np.asarray(self.created_at, dtype=np.float64)
        self.contents = np.asarray(self.contents, dtype=np.float64)
        n_users = len(self.user_ids)
        if self.offsets.shape != (n_users + 1,):
            raise ValueError(
                f"offsets must have length n_users + 1 = {n_users + 1}, "
                f"got {self.offsets.shape}"
            )
        if int(self.offsets[0]) != 0 or np.any(np.diff(self.offsets) < 0):
            raise ValueError("offsets must start at 0 and be non-decreasing")
        n_items = int(self.offsets[-1])
        for name, column in (
            ("item_ids", self.item_ids),
            ("created_at", self.created_at),
            ("contents", self.contents),
        ):
            if len(column) != n_items:
                raise ValueError(
                    f"{name} has {len(column)} entries, offsets imply {n_items}"
                )
        if self.items is not None and len(self.items) != n_items:
            raise ValueError("items, when given, must align with the columns")

    @property
    def n_users(self) -> int:
        return len(self.user_ids)

    @property
    def n_items(self) -> int:
        return int(self.offsets[-1])


@dataclass
class DeviceColumns:
    """Per-round device context for every user, precomputed as columns.

    ``e_t[k, u]`` is user ``u``'s battery-aware energy replenishment at
    round ``k``; ``states[k, u]`` their connectivity code
    (:data:`STATE_CODES`), or ``None`` when the whole cohort is pinned to
    CELL (the paper's main cellular-only setup).  ``seeds[u]`` is the
    device RNG lane the columns were drawn from.
    """

    e_t: np.ndarray
    states: np.ndarray | None
    seeds: np.ndarray


def build_device_columns(
    seeds: Sequence[int],
    times: Sequence[float],
    round_seconds: float,
    duration_seconds: float,
    kappa_joules: float,
    markov: bool = False,
) -> DeviceColumns:
    """Precompute battery + connectivity columns from per-user RNG lanes.

    Runs the *actual* :class:`~repro.sim.battery.DiurnalBatteryModel` and
    :class:`~repro.sim.network.MarkovNetworkModel` once per user -- same
    seeds, same draw order as the scalar device construction -- then
    evaluates them at every round time.  Round ``k``'s replenishment
    lookup lands on battery sample ``k + 1`` by construction: samples
    accumulate ``0.0 + round_seconds + ...`` while round times accumulate
    ``round_seconds + ...``, bit-identical sequences offset by one.  That
    lets the battery column come straight from
    :meth:`~repro.sim.battery.DiurnalBatteryModel.replenishment_column`
    -- the same recurrence with the same draw order as a materialized
    :class:`~repro.sim.battery.BatteryTrace`, minus the per-sample
    objects and per-call bisect (clamping to the last sample exactly as
    the bisect would for round times past the trace).
    """
    n_rounds = len(times)
    n_users = len(seeds)
    e_t = np.zeros((n_rounds, n_users), dtype=np.float64)
    states = (
        np.zeros((n_rounds, n_users), dtype=np.int8) if markov else None
    )
    for column, seed in enumerate(seeds):
        if markov:
            network = MarkovNetworkModel(rng=random.Random(seed))
            for k in range(n_rounds):
                states[k, column] = STATE_CODES[network.step()]
        if n_rounds:
            model = DiurnalBatteryModel(rng=random.Random(seed + 1))
            e_t[:, column] = model.replenishment_column(
                n_rounds, round_seconds, duration_seconds, kappa_joules
            )
    return DeviceColumns(
        e_t=e_t, states=states, seeds=np.asarray(seeds, dtype=np.int64)
    )


@dataclass
class ColumnarRoundState:
    """Algorithm 2's mutable state as parallel columns over the cohort.

    ``queues`` are ragged -- one list of flat item indices per user --
    because queue lengths vary wildly across a population; the dense
    arrays carry everything with a fixed per-user width.  ``q_bytes`` and
    ``pending`` are refreshed to end-of-round snapshots after each round
    (the values the scalar ``RoundResult`` records).

    ``dirty[u]`` tracks whether user ``u``'s queue composition changed
    (ingest append or delivery) since the engine last rebuilt its cached
    merged-row profile for that user -- the invalidation signal of the
    multichannel merged-row cache.  Every user starts dirty, and
    :meth:`ColumnarEngine.run` re-dirties the whole cohort at each call
    boundary so resumed runs never trust a stale cache.
    """

    data_available: np.ndarray
    energy_available: np.ndarray
    q_bytes: np.ndarray
    pending: np.ndarray
    rng_seeds: np.ndarray
    queues: list[list[int]] = field(default_factory=list)
    dirty: np.ndarray | None = None


@dataclass
class ColumnarRunResult:
    """Per-user outcome columns of one engine run.

    ``deliveries[u]`` holds user ``u``'s realized deliveries in order as
    ``(time, flat_index, level, size_bytes, energy_share_joules,
    utility)`` tuples of plain Python scalars -- the exact fields (and
    bit-exact values) the scalar path's
    :class:`~repro.runtime.types.Delivery` records.  ``channel_codes[u]``
    runs parallel to ``deliveries[u]``: each entry indexes
    ``channel_names`` for the transport that carried the delivery (all
    zeros on the single-channel path, where the 6-tuple schema and its
    consumers stay untouched).
    """

    deliveries: list[list[tuple]]
    mean_backlog_bytes: np.ndarray
    max_queue_length: np.ndarray
    final_queue_length: np.ndarray
    rounds: int
    channel_codes: list[list[int]] | None = None
    channel_names: tuple[str, ...] = ("push",)


class _AttachShim:
    """Just enough of a RoundLoop for ``policy.attach`` to validate against."""

    def __init__(self, kappa_joules: float) -> None:
        self.energy_budget = EnergyBudget(kappa_joules=kappa_joules)


class ColumnarEngine:
    """Round loop over a whole cohort of users, phase by phase.

    Mirrors :class:`repro.runtime.loop.RoundLoop`'s phase sequence --
    ingest, replenish, select, deliver -- but each phase touches columns
    instead of one user's objects.  Selection dispatches on the bound
    policy: the three built-ins get cohort-batched kernels; anything else
    runs per user through a :class:`~repro.runtime.policy.RoundContext`
    (requires ``cohort.items``).

    Parameters mirror what the experiment layer derives from its config:
    ``theta_bytes`` / ``kappa_joules`` parameterize the budgets (data
    starts empty, energy starts at ``kappa``, as in
    :mod:`repro.core.budgets`), ``device`` carries the precomputed
    per-round connectivity/battery columns, and ``expected_batch``
    prices selection-time energy estimates.
    """

    def __init__(
        self,
        cohort: ColumnarCohort,
        device: DeviceColumns,
        policy: SchedulerPolicy,
        utility_model: CombinedUtilityModel | None = None,
        *,
        theta_bytes: float,
        kappa_joules: float,
        round_seconds: float,
        duration_seconds: float,
        expected_batch: int = 10,
        energy_model: TransferEnergyModel | None = None,
        channels: ChannelSet | None = None,
    ) -> None:
        self.cohort = cohort
        self.device = device
        self.policy = policy
        self.channels = channels
        self._multichannel = (
            channels is not None and not channels.is_single_passthrough
        )
        self.channel_names = (
            tuple(channels.names) if self._multichannel else ("push",)
        )
        self.utility_model = utility_model or CombinedUtilityModel()
        self.times = round_times(round_seconds, duration_seconds)
        n_rounds = len(self.times)
        if device.e_t.shape != (n_rounds, cohort.n_users):
            raise ValueError(
                f"device columns shaped {device.e_t.shape}, expected "
                f"{(n_rounds, cohort.n_users)}; build them from the same "
                "round grid"
            )
        self._theta = theta_bytes
        self._kappa = kappa_joules
        self._energy_model = energy_model or TransferEnergyModel()
        self._expected_batch = expected_batch
        self._aging = self.utility_model.aging

        ladder = cohort.ladder
        n_levels = ladder.max_level + 1
        self._level_sizes = [ladder.size(level) for level in range(n_levels)]
        self._presentation_row = [
            ladder.utility(level) for level in range(n_levels)
        ]
        self._ladder_total = ladder.total_size()
        self._ladder_total_f = float(self._ladder_total)

        # Per-state precomputation: round capacity, the shared per-level
        # energy-estimate row and a selection-time estimator closure --
        # the device's network state is fixed within a round, so these
        # are pure functions of the state.
        self._capacity: dict[int, float] = {}
        self._energies_row: dict[int, list[float]] = {}
        self._estimate_fns: dict[int, object] = {}
        for state in (NetworkState.CELL, NetworkState.WIFI):
            code = STATE_CODES[state]
            self._capacity[code] = DEFAULT_BANDWIDTH_BPS[state] * round_seconds
            self._energies_row[code] = [0.0] + [
                self._energy_model.estimate_for_selection(
                    state, size, expected_batch=expected_batch
                )
                for size in self._level_sizes[1:]
            ]
            self._estimate_fns[code] = self._make_estimator(state)

        # Per-channel precomputation (multichannel only): each channel's
        # ladder projected to wire/billed size rows, presentation rows and
        # per-state energy rows.  The single-channel path never reads
        # these, so building them cannot perturb parity.
        if self._multichannel:
            self._ch_wire_sizes: list[list[int]] = []
            self._ch_billed_sizes: list[list[int]] = []
            self._ch_pres_rows: list[list[float]] = []
            for channel in self.channels:
                ch_ladder = channel.ladder or ladder
                wire = [
                    ch_ladder.size(level)
                    for level in range(ch_ladder.max_level + 1)
                ]
                self._ch_wire_sizes.append(wire)
                self._ch_billed_sizes.append(
                    [channel.cost.billed_bytes(size) for size in wire]
                )
                self._ch_pres_rows.append(
                    [
                        ch_ladder.utility(level)
                        for level in range(ch_ladder.max_level + 1)
                    ]
                )
            self._ch_energies_rows: dict[int, list[list[float]]] = {}
            for state in (NetworkState.CELL, NetworkState.WIFI):
                code = STATE_CODES[state]
                self._ch_energies_rows[code] = [
                    [0.0]
                    + [
                        self._energy_model.estimate_for_selection(
                            state, size, expected_batch=expected_batch
                        )
                        for size in wire[1:]
                    ]
                    for wire in self._ch_wire_sizes
                ]
            # Dense (channel, level) -> presentation-utility lookup for the
            # batched joint selection (ragged rows zero-padded; merged
            # candidates never index past their own channel's ladder).
            width = max(len(row) for row in self._ch_pres_rows)
            self._ch_pres_table = np.zeros(
                (len(self._ch_pres_rows), width), dtype=np.float64
            )
            for ci, row in enumerate(self._ch_pres_rows):
                self._ch_pres_table[ci, : len(row)] = row

        # Column views the per-user Python loops index into.
        self._created_np = cohort.created_at
        self._created_list = cohort.created_at.tolist()
        self._contents_np = cohort.contents
        self._contents_list = cohort.contents.tolist()
        self._item_ids = cohort.item_ids

        users = cohort.n_users
        self.state = ColumnarRoundState(
            data_available=np.zeros(users, dtype=np.float64),
            energy_available=np.full(users, float(kappa_joules)),
            q_bytes=np.zeros(users, dtype=np.float64),
            pending=np.zeros(users, dtype=np.int64),
            rng_seeds=device.seeds,
            queues=[[] for _ in range(users)],
            dirty=np.ones(users, dtype=bool),
        )
        # Merged-row cache for the multichannel joint selection: per-user
        # reduced (hull-filtered) choice rows, valid while the user's queue
        # composition (state.dirty), energy level and connectivity code are
        # unchanged.  Only usable without aging -- decay makes adjusted
        # profits time-dependent, so aged runs rebuild every round.
        self._merge_cache: dict[int, tuple] = {}
        self.merge_cache_hits = 0
        self.merge_cache_misses = 0
        self._deliveries: list[list[tuple]] = [[] for _ in range(users)]
        self._channel_codes: list[list[int]] = [[] for _ in range(users)]
        self._backlog_sum = np.zeros(users, dtype=np.float64)
        self._max_queue = np.zeros(users, dtype=np.int64)
        self._next_round = 0
        # Queue lengths maintained incrementally (ingest +1, deliver
        # rebuild) so per-round snapshots avoid an O(users) len() scan.
        self._counts: list[int] = [0] * users

        self._ingest_buckets = self._build_ingest_buckets()
        self._bind_policy()

    # -- setup -----------------------------------------------------------------

    def _build_ingest_buckets(self) -> list[list[int]]:
        """Flat item indices joining the scheduling queue at each round.

        Within a bucket, each user's items keep their flat (stable
        created-at) order, so per-user append order matches the event
        heap's ``(time, sequence)`` ordering.
        """
        n_rounds = len(self.times)
        rounds = kernels.ingest_round_index(self._created_np, self.times)
        buckets: list[list[int]] = [[] for _ in range(n_rounds)]
        offsets = self.cohort.offsets
        user_of = np.repeat(
            np.arange(self.cohort.n_users, dtype=np.int64), np.diff(offsets)
        )
        self._user_of = user_of.tolist()
        for index, round_index in enumerate(rounds.tolist()):
            if round_index < n_rounds:
                buckets[round_index].append(index)
        return buckets

    def _bind_policy(self) -> None:
        policy = self.policy
        attach = getattr(policy, "attach", None)
        if attach is not None:
            attach(_AttachShim(self._kappa))
        if not needs_item_objects(policy, self.utility_model) and (
            type(policy) is RichNotePolicy
        ):
            self._mode = "richnote"
            self._lyapunov = policy.controller.config
            self._select_fn = (
                kernels.greedy_select_hull
                if policy.use_hull_selector
                else kernels.greedy_select
            )
        elif not needs_item_objects(policy, self.utility_model):
            self._mode = "fifo" if type(policy) is FifoPolicy else "util"
            if self._multichannel:
                # Baselines route everything over the primary channel,
                # mirroring FixedLevelPolicy.fill_channel on the scalar path.
                primary = self.channels.primary
                primary_ladder = primary.ladder or self.cohort.ladder
                self._fixed_level = min(
                    policy.fixed_level, primary_ladder.max_level
                )
            else:
                self._fixed_level = min(
                    policy.fixed_level, self.cohort.ladder.max_level
                )
        else:
            self._mode = "compat"
            if self.cohort.items is None:
                raise ValueError(
                    "a custom policy or utility model needs cohort.items "
                    "(materialized ContentItems) for the RoundContext "
                    "adapter path"
                )

    def _make_estimator(self, state: NetworkState):
        model = self._energy_model
        expected_batch = self._expected_batch

        def estimate(size_bytes: float) -> float:
            return model.estimate_for_selection(
                state, size_bytes, expected_batch=expected_batch
            )

        return estimate

    # -- the round loop --------------------------------------------------------

    def run(self, limit_rounds: int | None = None) -> ColumnarRunResult:
        """Execute rounds (all remaining, or at most ``limit_rounds``).

        Resumable: a second call continues where the first stopped, so
        ``run(limit_rounds=1)`` single-steps.  Parity with the scalar
        per-user replay holds once every round has run.
        """
        stop = len(self.times)
        if limit_rounds is not None:
            if limit_rounds < 0:
                raise ValueError("limit_rounds must be >= 0")
            stop = min(stop, self._next_round + limit_rounds)
        # Call boundary: callers may inspect or mutate round state between
        # runs, so the merged-row cache never survives a resume.
        self._merge_cache.clear()
        self.state.dirty[:] = True
        for k in range(self._next_round, stop):
            self._run_round(k, self.times[k])
        self._next_round = stop
        return self.result()

    @property
    def selection_path(self) -> str:
        """``'batched'`` when selection runs on cohort kernels, else ``'adapter'``.

        The adapter (``needs_item_objects``) path snapshots one
        :class:`~repro.runtime.policy.RoundContext` per user per round;
        benches read this to prove a scenario stayed on the batched path.
        """
        return "adapter" if self._mode == "compat" else "batched"

    def result(self) -> ColumnarRunResult:
        """Outcome columns over the rounds executed so far."""
        rounds = self._next_round
        if rounds:
            mean_backlog = self._backlog_sum / rounds
        else:
            mean_backlog = np.zeros(self.cohort.n_users, dtype=np.float64)
        return ColumnarRunResult(
            deliveries=self._deliveries,
            mean_backlog_bytes=mean_backlog,
            max_queue_length=self._max_queue,
            final_queue_length=self.state.pending,
            rounds=rounds,
            channel_codes=self._channel_codes,
            channel_names=self.channel_names,
        )

    def _run_round(self, k: int, now: float) -> None:
        state = self.state
        queues = state.queues
        counts = self._counts
        user_of = self._user_of
        dirty = state.dirty
        for index in self._ingest_buckets[k]:
            u = user_of[index]
            queues[u].append(index)
            counts[u] += 1
            dirty[u] = True
        kernels.replenish_data_column(state.data_available, self._theta)
        kernels.replenish_energy_column(
            state.energy_available, self.device.e_t[k], self._kappa
        )
        self._select_and_deliver(k, now)
        pending = np.asarray(counts, dtype=np.int64)
        state.pending = pending
        state.q_bytes = pending * self._ladder_total_f
        self._backlog_sum += state.q_bytes
        np.maximum(self._max_queue, pending, out=self._max_queue)

    def _select_and_deliver(self, k: int, now: float) -> None:
        """Connectivity-gated selection, grouped by network state."""
        counts = np.asarray(self._counts, dtype=np.int64)
        active = np.nonzero(counts)[0]
        if self.device.states is None:
            groups = [(STATE_CODES[NetworkState.CELL], active)]
        else:
            active_codes = self.device.states[k][active]
            groups = [
                (code, active[active_codes == code])
                for code in range(_OFF_CODE)
            ]
        for code, members in groups:
            if not members.size:
                continue
            if self._mode == "richnote":
                if self._multichannel:
                    self._select_richnote_channels(
                        now, code, members, counts[members]
                    )
                else:
                    self._select_richnote(now, code, members, counts[members])
            elif self._mode == "compat":
                self._select_compat(now, code, members.tolist())
            else:
                self._select_fixed(now, code, members)

    # -- decayed content utilities ---------------------------------------------

    def _decay_column_at(self, flat: np.ndarray, now: float) -> np.ndarray:
        """Decayed content utilities for a flat index column (numpy path)."""
        contents = self._contents_np[flat]
        aging = self._aging
        if aging is None:
            return contents
        ages = np.maximum(0.0, now - self._created_np[flat])
        if type(aging) is ExponentialAging:
            return kernels.exp_decay_column(contents, ages, aging.tau_seconds)
        return np.asarray(
            [
                aging.decay(float(content), float(age))
                for content, age in zip(contents, ages)
            ],
            dtype=np.float64,
        )

    def _decayed_scalar(self, index: int, now: float) -> float:
        """One item's decayed content utility, in pure Python floats."""
        content = self._contents_list[index]
        aging = self._aging
        if aging is None:
            return content
        return aging.decay(content, max(0.0, now - self._created_list[index]))

    # -- selection fast paths --------------------------------------------------

    def _select_richnote(
        self,
        now: float,
        code: int,
        members: np.ndarray,
        group_counts: np.ndarray,
    ) -> None:
        """Eq. 7 + Algorithm 1 over every queued item of the group at once."""
        state = self.state
        queues = state.queues
        flat: list[int] = []
        bounds: list[tuple[int, int, int]] = []
        for u in members.tolist():
            start = len(flat)
            flat.extend(queues[u])
            bounds.append((u, start, len(flat)))
        flat_arr = np.asarray(flat, dtype=np.intp)
        decayed = self._decay_column_at(flat_arr, now)
        utilities = kernels.combined_utility_matrix(
            decayed, self._presentation_row
        )
        cfg = self._lyapunov
        # q = len(queue) * ladder_total: exact int -> float64 conversion,
        # identical bits to the scalar path's float(len * total).
        adjusted = kernels.lyapunov_adjusted_rows(
            utilities,
            self._energies_row[code],
            self._ladder_total_f,
            np.repeat(group_counts * self._ladder_total_f, group_counts),
            np.repeat(state.energy_available[members], group_counts),
            kappa_joules=cfg.kappa_joules,
            v=cfg.v,
            size_scale=cfg.size_scale,
            energy_scale=cfg.energy_scale,
        )
        rows = adjusted.tolist()
        decayed_list = decayed.tolist()
        level_sizes = self._level_sizes
        level_utils = self._presentation_row
        item_ids = self._item_ids
        select_fn = self._select_fn
        budgets = np.minimum(
            state.data_available[members], self._capacity[code]
        ).tolist()
        for (u, start, end), user_budget in zip(bounds, budgets):
            budget = int(user_budget)
            n = end - start
            levels, _, _ = select_fn(
                [item_ids[i] for i in flat[start:end]],
                [level_sizes] * n,
                rows[start:end],
                budget,
            )
            chosen = [
                (
                    flat[start + position],
                    level,
                    decayed_list[start + position] * level_utils[level],
                )
                for position, level in enumerate(levels)
                if level > 0
            ]
            if not chosen:
                continue
            chosen.sort(key=lambda entry: entry[2], reverse=True)
            self._deliver(u, now, chosen, code)

    def _select_richnote_channels(
        self,
        now: float,
        code: int,
        members: np.ndarray,
        group_counts: np.ndarray,
    ) -> None:
        """Joint (channel x level) MCKP over every queued item of the group.

        One Eq. 7 adjusted-profit matrix per channel, then the per-channel
        rows of the *whole group* fuse at once
        (:func:`repro.runtime.kernels.merge_channel_rows_batched` -- the
        shared billed-size rows make the merged size axis common to every
        item) and reduce to their convex hulls
        (:func:`repro.runtime.kernels.hull_levels_batched`), so only
        Algorithm 1's per-user budget-coupled greedy remains a Python
        loop.  Bit-identical to merging and hull-filtering each item with
        the scalar kernels.

        Users whose reduced rows cannot have changed since last round --
        queue composition clean (``state.dirty``), energy level and
        connectivity code unchanged, no aging -- reuse their cached rows
        and skip the merge entirely.
        """
        state = self.state
        cache = self._merge_cache
        cache_enabled = self._aging is None
        dirty = state.dirty
        members_list = members.tolist()
        counts_list = group_counts.tolist()
        p_list = state.energy_available[members].tolist()
        budgets = np.minimum(
            state.data_available[members], self._capacity[code]
        ).tolist()

        entries: dict[int, tuple] = {}
        miss_users: list[int] = []
        miss_counts: list[int] = []
        miss_p: list[float] = []
        for u, count, p in zip(members_list, counts_list, p_list):
            if cache_enabled and not dirty[u]:
                entry = cache.get(u)
                if entry is not None and entry[0] == p and entry[1] == code:  # richlint: ignore[RL301] -- bit-exact cache key, not a tolerance check
                    entries[u] = entry
                    self.merge_cache_hits += 1
                    continue
            miss_users.append(u)
            miss_counts.append(count)
            miss_p.append(p)
        if miss_users:
            self.merge_cache_misses += len(miss_users)
            fresh = self._merge_group(now, code, miss_users, miss_counts, miss_p)
            entries.update(fresh)
            if cache_enabled:
                cache.update(fresh)
                for u in miss_users:
                    dirty[u] = False

        item_ids = self._item_ids
        for u, user_budget in zip(members_list, budgets):
            (
                _p,
                _code,
                queue_items,
                sizes_rows,
                profits_rows,
                chans_rows,
                lvls_rows,
                utils_rows,
            ) = entries[u]
            budget = int(user_budget)
            # Reduced rows are exactly the hull filtering greedy_select_hull
            # would apply, so the plain greedy picks identical choices.
            choices, _, _ = kernels.greedy_select(
                [item_ids[i] for i in queue_items],
                sizes_rows,
                profits_rows,
                budget,
            )
            chosen: list[tuple[int, int, float, int]] = []
            for position, choice in enumerate(choices):
                if choice <= 0:
                    continue
                chosen.append(
                    (
                        queue_items[position],
                        lvls_rows[position][choice],
                        utils_rows[position][choice],
                        chans_rows[position][choice],
                    )
                )
            if not chosen:
                continue
            chosen.sort(key=lambda entry: entry[2], reverse=True)
            self._deliver_channels(u, now, chosen, code)

    def _merge_group(
        self,
        now: float,
        code: int,
        users: list[int],
        counts: list[int],
        p_values: list[float],
    ) -> dict[int, tuple]:
        """Build merged + hull-reduced choice rows for a batch of users.

        Returns one cache entry per user: ``(p_joules, code, queue_items,
        reduced_sizes_rows, reduced_profits_rows, channel_rows, level_rows,
        utility_rows)`` where row ``i`` describes queued item
        ``queue_items[i]`` and index ``j > 0`` of each row is one surviving
        joint (channel, level) choice (index 0 = not sent).
        """
        queues = self.state.queues
        flat: list[int] = []
        bounds: list[tuple[int, int, int]] = []
        for u in users:
            start = len(flat)
            flat.extend(queues[u])
            bounds.append((u, start, len(flat)))
        flat_arr = np.asarray(flat, dtype=np.intp)
        decayed = self._decay_column_at(flat_arr, now)
        cfg = self._lyapunov
        counts_arr = np.asarray(counts, dtype=np.int64)
        q_repeat = np.repeat(counts_arr * self._ladder_total_f, counts_arr)
        p_repeat = np.repeat(
            np.asarray(p_values, dtype=np.float64), counts_arr
        )
        profits_stack: list[np.ndarray] = []
        for ci in range(len(self.channel_names)):
            utilities = kernels.combined_utility_matrix(
                decayed, self._ch_pres_rows[ci]
            )
            profits_stack.append(
                kernels.lyapunov_adjusted_rows(
                    utilities,
                    self._ch_energies_rows[code][ci],
                    self._ladder_total_f,
                    q_repeat,
                    p_repeat,
                    kappa_joules=cfg.kappa_joules,
                    v=cfg.v,
                    size_scale=cfg.size_scale,
                    energy_scale=cfg.energy_scale,
                )
            )
        merged_sizes, merged_profits, merged_chans, merged_lvls = (
            kernels.merge_channel_rows_batched(
                self._ch_billed_sizes, profits_stack
            )
        )
        hull_idx, hull_len = kernels.hull_levels_batched(
            merged_sizes, merged_profits
        )
        reduced_sizes = np.asarray(merged_sizes, dtype=np.int64)[hull_idx]
        reduced_profits = np.take_along_axis(merged_profits, hull_idx, axis=1)
        reduced_chans = np.take_along_axis(merged_chans, hull_idx, axis=1)
        reduced_lvls = np.take_along_axis(merged_lvls, hull_idx, axis=1)
        # Realized utility per surviving choice: decayed * U_p on the
        # winning channel's ladder (same operands, same single multiply as
        # the scalar recompute -- bit-identical).
        reduced_utils = (
            decayed[:, None] * self._ch_pres_table[reduced_chans, reduced_lvls]
        )
        sizes_l = reduced_sizes.tolist()
        profits_l = reduced_profits.tolist()
        chans_l = reduced_chans.tolist()
        lvls_l = reduced_lvls.tolist()
        utils_l = reduced_utils.tolist()
        lengths = hull_len.tolist()
        out: dict[int, tuple] = {}
        for (u, start, end), p in zip(bounds, p_values):
            rows = range(start, end)
            out[u] = (
                p,
                code,
                flat[start:end],
                [sizes_l[r][: lengths[r]] for r in rows],
                [profits_l[r][: lengths[r]] for r in rows],
                [chans_l[r] for r in rows],
                [lvls_l[r] for r in rows],
                [utils_l[r] for r in rows],
            )
        return out

    def _select_fixed(
        self, now: float, code: int, members: np.ndarray
    ) -> None:
        """FIFO/UTIL baselines: order, greedy-fill at the fixed level.

        Multichannel runs route everything over the primary channel --
        billed bytes fill the budget, wire bytes price delivery -- just
        like ``FixedLevelPolicy.fill_channel`` on the scalar path.
        """
        state = self.state
        queues = state.queues
        level = self._fixed_level
        if self._multichannel:
            size = self._ch_billed_sizes[0][level]
            level_util = self._ch_pres_rows[0][level]
        else:
            size = self._level_sizes[level]
            level_util = self._presentation_row[level]
        created = self._created_list
        by_util = self._mode == "util"
        budgets = np.minimum(
            state.data_available[members], self._capacity[code]
        ).tolist()
        for u, user_budget in zip(members.tolist(), budgets):
            queue = queues[u]
            if by_util:
                keys = {
                    i: self._decayed_scalar(i, now) * level_util for i in queue
                }
                ordered = sorted(queue, key=keys.__getitem__, reverse=True)
            else:
                ordered = sorted(queue, key=created.__getitem__)
            remaining = int(user_budget)
            chosen: list[int] = []
            for i in ordered:
                if size <= remaining:
                    chosen.append(i)
                    remaining -= size
            if not chosen:
                continue
            if by_util:
                selected = [(i, level, keys[i]) for i in chosen]
            else:
                selected = [
                    (i, level, self._decayed_scalar(i, now) * level_util)
                    for i in chosen
                ]
            selected.sort(key=lambda entry: entry[2], reverse=True)
            if self._multichannel:
                self._deliver_channels(
                    u,
                    now,
                    [(i, lvl, util, 0) for i, lvl, util in selected],
                    code,
                )
            else:
                self._deliver(u, now, selected, code)

    def _select_compat(
        self, now: float, code: int, users: Sequence[int]
    ) -> None:
        """Generic policies: one RoundLoop-shaped context per user.

        The snapshot matches :meth:`repro.runtime.loop.RoundLoop.make_context`
        field for field, so any :class:`~repro.runtime.policy.SchedulerPolicy`
        selects exactly as it would inside the scalar loop.  Policies must
        be stateless across rounds (one shared instance serves the whole
        cohort).
        """
        state = self.state
        items_all = self.cohort.items
        model = self.utility_model
        estimate = self._estimate_fns[code]
        capacity = self._capacity[code]
        channels = self.channels
        channel_index = {
            name: ci for ci, name in enumerate(self.channel_names)
        }

        def _utility_key(sel) -> float:
            # Mirrors RoundLoop.select_phase: triples rank by the chosen
            # channel's utility, bare pairs by the model's.
            if len(sel) == 3:
                return sel[2].utility(model, sel[0], sel[1], now)
            return model.utility(sel[0], sel[1], now)

        for u in users:
            queue = state.queues[u]
            items = [items_all[i] for i in queue]
            budget = int(min(state.data_available[u], capacity))
            context = RoundContext(
                now=now,
                effective_budget=budget,
                items=items,
                backlog_bytes=float(len(queue) * self._ladder_total),
                energy_available_joules=float(state.energy_available[u]),
                utility_model=model,
                estimate_energy=estimate,
                channels=channels,
            )
            selected = list(self.policy.select(context).selections)
            selected.sort(key=_utility_key, reverse=True)
            index_of = {self._item_ids[i]: i for i in queue}
            if any(len(sel) == 3 for sel in selected):
                primary = channels.primary
                triples = [
                    sel if len(sel) == 3 else (sel[0], sel[1], primary)
                    for sel in selected
                ]
                self._deliver_channels(
                    u,
                    now,
                    [
                        (
                            index_of[item.item_id],
                            level,
                            channel.utility(model, item, level, now),
                            channel_index[channel.name],
                        )
                        for item, level, channel in triples
                    ],
                    code,
                )
                continue
            chosen = [
                (
                    index_of[item.item_id],
                    level,
                    model.utility(item, level, now),
                )
                for item, level in selected
            ]
            self._deliver(u, now, chosen, code)

    # -- delivery --------------------------------------------------------------

    def _deliver(
        self,
        u: int,
        now: float,
        chosen: list[tuple[int, int, float]],
        code: int,
    ) -> None:
        """Drain one user's delivery queue: debit columns, record tuples.

        Replicates :meth:`repro.runtime.loop.RoundLoop._deliver`'s atomic
        path: one shared batch energy, proportional per-item shares,
        zero-floored budget debits, queue removal by delivered item.
        """
        if not chosen:
            return
        sizes = [self._level_sizes[level] for _, level, _ in chosen]
        batch_energy = self._energy_model.batch_energy(
            _CODE_STATES[code], sizes
        )
        total_size = sum(sizes)
        state = self.state
        data = state.data_available
        energy = state.energy_available
        out = self._deliveries[u]
        delivered: set[int] = set()
        codes_out = self._channel_codes[u]
        for (index, level, utility), size in zip(chosen, sizes):
            share = batch_energy * (size / total_size) if total_size else 0.0
            data[u] = max(0.0, data[u] - size)
            energy[u] = max(0.0, energy[u] - share)
            out.append((now, index, level, size, share, utility))
            codes_out.append(0)
            delivered.add(index)
        state.queues[u] = [
            i for i in state.queues[u] if i not in delivered
        ]
        self._counts[u] = len(state.queues[u])
        state.dirty[u] = True

    def _deliver_channels(
        self,
        u: int,
        now: float,
        chosen: list[tuple[int, int, float, int]],
        code: int,
    ) -> None:
        """Multichannel twin of :meth:`_deliver`.

        Wire bytes price the batch energy and appear in the delivery
        tuples (parallel with the scalar path's ``Delivery.size_bytes``);
        *billed* bytes drain the data column.  The channel index of each
        delivery lands in the parallel channel-code column.
        """
        if not chosen:
            return
        wire_sizes = [
            self._ch_wire_sizes[ci][level] for _, level, _, ci in chosen
        ]
        batch_energy = self._energy_model.batch_energy(
            _CODE_STATES[code], wire_sizes
        )
        total_size = sum(wire_sizes)
        state = self.state
        data = state.data_available
        energy = state.energy_available
        out = self._deliveries[u]
        codes_out = self._channel_codes[u]
        delivered: set[int] = set()
        for (index, level, utility, ci), wire in zip(chosen, wire_sizes):
            share = batch_energy * (wire / total_size) if total_size else 0.0
            billed = self._ch_billed_sizes[ci][level]
            data[u] = max(0.0, data[u] - billed)
            energy[u] = max(0.0, energy[u] - share)
            out.append((now, index, level, wire, share, utility))
            codes_out.append(ci)
            delivered.add(index)
        state.queues[u] = [
            i for i in state.queues[u] if i not in delivered
        ]
        self._counts[u] = len(state.queues[u])
        state.dirty[u] = True
