"""Round-loop data types shared by every layer of the runtime.

These are the *wire types* of the scheduling runtime: what a round
delivers (:class:`Delivery`), what it evicts (:class:`DroppedItem`) and
the per-round ledger (:class:`RoundResult`).  They sit at the bottom of
the runtime stack -- kernels, policies, the round loop, the delivery
engine and every orchestration layer exchange them -- so this module
imports nothing above :mod:`repro.core.content`.

All three are ``slots`` dataclasses: deliveries and round results are
allocated once per delivered presentation / per round per user, which on
a million-user deployment is the dominant object churn of the hot path.
(Dropping the per-instance ``__dict__`` cuts a ``Delivery`` from ~145 to
~80 bytes and removes a dict allocation per event.)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.content import ContentItem


@dataclass(frozen=True, slots=True)
class Delivery:
    """One presentation delivered to the device.

    ``channel`` names the delivery transport
    (:class:`repro.core.channels.Channel`); the default ``"push"`` is the
    paper's single channel.  ``size_bytes`` is always the *wire* size of
    the presentation -- the channel's billed (data-budget) size can be
    recomputed from its cost curve.
    """

    time: float
    user_id: int
    item: ContentItem
    level: int
    size_bytes: int
    energy_joules: float
    utility: float
    channel: str = "push"


@dataclass(frozen=True, slots=True)
class DroppedItem:
    """An item evicted from the scheduling queue without delivery.

    ``reason`` is structured as ``"<cause>"`` or ``"<cause>:<fault_kind>"``,
    e.g. ``"ttl_expired"``, ``"delivery_failed:timeout"``,
    ``"retry_would_expire:disconnect"``.  ``attempts`` counts delivery
    attempts made before the item was dead-lettered (0 when it never
    reached the delivery path).
    """

    time: float
    item: ContentItem
    reason: str
    attempts: int = 0
    #: Transport of the last failed attempt ("push" on the legacy path).
    channel: str = "push"


@dataclass(slots=True)
class RoundResult:
    """Outcome of one scheduling round for one user."""

    round_index: int
    time: float
    deliveries: list[Delivery] = field(default_factory=list)
    dropped: list[DroppedItem] = field(default_factory=list)
    queue_length_after: int = 0
    backlog_bytes_after: float = 0.0
    data_budget_after: float = 0.0
    energy_budget_after: float = 0.0
    connected: bool = True
    # Failure accounting, populated by the fault-tolerant delivery engine
    # (:class:`repro.core.delivery.DeliveryEngine`); all zero on the atomic
    # fast path.
    attempts: int = 0
    failed_attempts: int = 0
    retries_scheduled: int = 0
    dead_letters: int = 0
    debited_bytes: float = 0.0
    refunded_bytes: float = 0.0
    wasted_bytes: float = 0.0
    fault_counts: dict[str, int] = field(default_factory=dict)

    @property
    def delivered_bytes(self) -> float:
        return float(sum(d.size_bytes for d in self.deliveries))

    @property
    def delivered_utility(self) -> float:
        return sum(d.utility for d in self.deliveries)

    @property
    def delivered_energy(self) -> float:
        return sum(d.energy_joules for d in self.deliveries)
