"""The live notification service: asyncio ingest -> schedule -> deliver.

The batch harness (:mod:`repro.experiments`) replays rounds offline; this
package runs them *continuously*, the deployment shape of Section II:

* :mod:`repro.service.queues` -- the ingest frontier: bounded per-user
  queues that shed with explicit ``Overload`` results instead of growing;
* :mod:`repro.service.ratelimit` -- tiered token buckets
  (global / per-user / per-topic) bounding fan-out;
* :mod:`repro.service.degrade` -- the overload degradation ladder: shed
  rich-media levels first, then defer ingest, then shed outright,
  recovering automatically as pressure clears;
* :mod:`repro.service.timers` -- per-user round timers with deterministic
  phase staggering;
* :mod:`repro.service.sinks` -- async delivery adapters with per-delivery
  timeouts, jittered retry budgets and the broker's circuit breakers;
* :mod:`repro.service.server` -- :class:`NotificationService`, the
  composition of all of the above around ``runtime/loop.py`` round loops;
* :mod:`repro.service.health` -- conservation accounting, latency
  percentiles and the ``BENCH_service.json`` payload;
* :mod:`repro.service.chaos` -- flash-crowd load and flaky sinks for
  chaos runs;
* :mod:`repro.service.clock` -- real monotonic vs simulated time;
* :mod:`repro.service.harness` -- the self-contained demo/bench harness
  behind ``richnote serve``.

Every duration in this package is measured on a monotonic clock
(``time.monotonic`` or simulated time) -- richlint rule RL205 rejects
wall-clock duration math.
"""

from repro.service.clock import Clock, MonotonicClock, SimulatedClock
from repro.service.degrade import (
    DegradationConfig,
    DegradationController,
    PressureLevel,
)
from repro.service.health import HealthSnapshot, ServiceStats
from repro.service.queues import (
    Admission,
    BoundedUserQueue,
    IngestFrontier,
    IngestResult,
    QueuedEvent,
)
from repro.service.ratelimit import (
    RateDecision,
    RateLimitConfig,
    TieredRateLimiter,
    TokenBucket,
)
from repro.service.server import NotificationService, ServiceConfig
from repro.service.sinks import GuardedSink, SinkPolicy, SinkTimeout
from repro.service.timers import RoundTimers

__all__ = [
    "Admission",
    "BoundedUserQueue",
    "Clock",
    "DegradationConfig",
    "DegradationController",
    "GuardedSink",
    "HealthSnapshot",
    "IngestFrontier",
    "IngestResult",
    "MonotonicClock",
    "NotificationService",
    "PressureLevel",
    "QueuedEvent",
    "RateDecision",
    "RateLimitConfig",
    "RoundTimers",
    "ServiceConfig",
    "ServiceStats",
    "SimulatedClock",
    "SinkPolicy",
    "SinkTimeout",
    "TieredRateLimiter",
    "TokenBucket",
]
