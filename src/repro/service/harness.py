"""Self-contained service harness: build, load, run, report.

This is what ``richnote serve`` and ``benchmarks/test_bench_service.py``
share: a complete live pipeline -- seeded devices, registry-resolved
policies, flash-crowd ingress, flaky egress -- run on a simulated clock,
so a multi-minute chaos scenario replays in well under a second of wall
time and produces the ``BENCH_service.json`` payload.

Wall-clock throughput is measured with ``time.monotonic`` (RL205:
durations never come from ``time.time``).
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field

from repro.core.budgets import DataBudget, EnergyBudget
from repro.core.content import ContentItem
from repro.core.presentations import build_audio_ladder
from repro.core.utility import CombinedUtilityModel
from repro.runtime import registry
from repro.runtime.loop import RoundLoop
from repro.service.chaos import (
    FlakySink,
    FlashCrowdConfig,
    FlashCrowdScenario,
    ScheduledEvent,
)
from repro.service.clock import SimulatedClock
from repro.service.health import service_bench_payload
from repro.service.server import NotificationService, ServiceConfig
from repro.sim.battery import DiurnalBatteryModel
from repro.sim.device import MobileDevice
from repro.sim.energy import TransferEnergyModel
from repro.sim.faults import FlakyConnectivity
from repro.sim.network import MarkovNetworkModel

#: Seed salts keeping the harness's independent RNG streams decorrelated
#: (same scheme as the experiment runner's _stream_seed).
_SALT_DEVICE = 29
_SALT_BATTERY = 31
_SALT_OUTAGE = 37
_SALT_CONTENT = 41
_SALT_SINK = 43


def _stream_seed(seed: int, user_id: int, salt: int) -> int:
    return (seed * 1_000_003 + user_id * 7_919 + salt) & 0x7FFFFFFF


@dataclass(frozen=True)
class DemoConfig:
    """Everything a bounded demo/bench run needs."""

    users: int = 16
    rounds: int = 6
    round_seconds: float = 60.0
    queue_bound: int = 16
    seed: int = 23
    policy: str = "richnote"
    #: Per-round data allowance (bytes); generous so previews flow.
    theta_bytes_per_round: float = 1_500_000.0
    kappa_joules_per_round: float = 3_000.0
    #: Items older than this dead-letter instead of delivering stale.
    ttl_seconds: float = 600.0
    chaos: str = "flash-crowd"  # or "none"
    #: Egress fault probabilities for the primary sink.
    sink_fail: float = 0.10
    sink_stall: float = 0.05
    sink_stall_seconds: float = 30.0
    #: Per-round probability a connected device is forced offline.
    p_outage: float = 0.10
    service: ServiceConfig | None = None
    flash_crowd: FlashCrowdConfig | None = None

    def __post_init__(self) -> None:
        if self.users < 1:
            raise ValueError("users must be >= 1")
        if self.rounds < 1:
            raise ValueError("rounds must be >= 1")
        if self.chaos not in ("none", "flash-crowd"):
            raise ValueError(f"unknown chaos scenario {self.chaos!r}")

    def service_config(self) -> ServiceConfig:
        if self.service is not None:
            return self.service
        return ServiceConfig(
            round_seconds=self.round_seconds,
            queue_bound=self.queue_bound,
            seed=self.seed,
        )

    def crowd_config(self) -> FlashCrowdConfig:
        if self.flash_crowd is not None:
            return self.flash_crowd
        duration = self.rounds * self.round_seconds
        # Crowd occupies the middle third of the run, so the gate can
        # observe both escalation and recovery within one session.
        return FlashCrowdConfig(
            n_users=self.users,
            duration_seconds=duration,
            base_rate=max(0.5, self.users / 30.0),
            crowd_start=duration / 3.0,
            crowd_duration=duration / 3.0,
            crowd_multiplier=1.0 if self.chaos == "none" else 25.0,
        )


@dataclass
class DemoRun:
    """Results of one bounded harness session."""

    service: NotificationService
    payload: dict
    ingest_results: list = field(default_factory=list)


def build_loop_factory(config: DemoConfig):
    """Per-user round loops mirroring the experiment runner's devices."""
    duration = config.rounds * config.round_seconds

    def loop_factory(user_id: int) -> RoundLoop:
        device_seed = _stream_seed(config.seed, user_id, _SALT_DEVICE)
        network = MarkovNetworkModel(rng=random.Random(device_seed))
        wrapped = (
            FlakyConnectivity(
                network,
                config.p_outage,
                random.Random(_stream_seed(config.seed, user_id, _SALT_OUTAGE)),
            )
            if config.p_outage > 0
            else network
        )
        battery = DiurnalBatteryModel(
            rng=random.Random(_stream_seed(config.seed, user_id, _SALT_BATTERY))
        ).generate(
            duration + config.round_seconds,
            sample_period_seconds=config.round_seconds,
        )
        device = MobileDevice(
            user_id=user_id,
            network=wrapped,
            battery=battery,
            energy_model=TransferEnergyModel(),
        )
        return RoundLoop(
            device,
            DataBudget(theta_bytes=config.theta_bytes_per_round),
            EnergyBudget(kappa_joules=config.kappa_joules_per_round),
            CombinedUtilityModel(),
            ttl_seconds=config.ttl_seconds,
            policy=registry.create(config.policy),
        )

    return loop_factory


def build_item_factory(config: DemoConfig):
    """Seeded ContentItems over a shared audio ladder."""
    ladder = build_audio_ladder()
    content_rng = random.Random(_stream_seed(config.seed, 0, _SALT_CONTENT))

    def item_factory(index: int, event: ScheduledEvent) -> ContentItem:
        return ContentItem(
            item_id=index,
            user_id=event.user_id,
            kind=event.kind,
            created_at=event.time,
            ladder=ladder,
            content_utility=content_rng.uniform(0.05, 0.95),
        )

    return item_factory


def run_demo(config: DemoConfig | None = None, meta: dict | None = None) -> DemoRun:
    """Run one bounded chaos session; returns the service + bench payload."""
    config = config or DemoConfig()
    clock = SimulatedClock()
    service = NotificationService(
        loop_factory=build_loop_factory(config),
        user_ids=list(range(config.users)),
        config=config.service_config(),
        clock=clock,
    )
    flaky = FlakySink(
        clock=clock,
        rng=random.Random(_stream_seed(config.seed, 0, _SALT_SINK)),
        p_fail=config.sink_fail if config.chaos != "none" else 0.0,
        p_stall=config.sink_stall if config.chaos != "none" else 0.0,
        stall_seconds=config.sink_stall_seconds,
    )
    service.add_sink(flaky, name="push")
    scenario = FlashCrowdScenario(
        config.crowd_config(),
        build_item_factory(config),
        seed=config.seed,
    )

    async def session() -> list:
        run_task = asyncio.ensure_future(service.run(rounds=config.rounds))
        ingest_results = await scenario.drive(service, clock)
        await run_task
        return ingest_results

    started = time.monotonic()
    ingest_results = asyncio.run(clock.drive(session()))
    wall_seconds = time.monotonic() - started

    payload = service_bench_payload(
        service,
        simulated_seconds=config.rounds * config.round_seconds,
        wall_seconds=wall_seconds,
        meta={
            "users": config.users,
            "rounds": config.rounds,
            "round_seconds": config.round_seconds,
            "queue_bound": config.queue_bound,
            "chaos": config.chaos,
            "policy": config.policy,
            "seed": config.seed,
            "events": len(scenario.schedule()),
            **(meta or {}),
        },
    )
    return DemoRun(
        service=service, payload=payload, ingest_results=ingest_results
    )
