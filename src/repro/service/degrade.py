"""The overload degradation ladder: reduce rich media, defer, shed.

Under sustained overload the service degrades *gracefully* and in a
deliberate order -- the cheapest quality loss first:

1. ``REDUCE_RICH`` -- selections are capped at a low presentation level
   (metadata/teaser instead of full previews), so every admitted item
   still reaches the user but bytes-per-item collapses;
2. ``DEFER`` -- new events are parked in a bounded deferred buffer and
   re-admitted when pressure clears, trading latency for survival;
3. ``SHED`` -- new events are refused outright with explicit
   ``Overload`` results (the deferred buffer overflowing dead-letters).

Escalation is immediate; recovery steps down one level per scheduler
tick and only once pressure has fallen a hysteresis margin below the
level's entry threshold, so the ladder cannot flap around a threshold.

Pressure is a single scalar in [0, 1]: frontier queue occupancy (window
peak, see :class:`~repro.service.queues.IngestFrontier`) plus the
scheduler backlog, plus a weighted penalty for open delivery breakers --
a saturated egress is overload even while queues look healthy.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum


class PressureLevel(IntEnum):
    """Rungs of the ladder, ordered by severity."""

    NORMAL = 0
    REDUCE_RICH = 1
    DEFER = 2
    SHED = 3


@dataclass(frozen=True)
class DegradationConfig:
    """Entry thresholds (pressure fractions) and recovery hysteresis."""

    reduce_at: float = 0.50
    defer_at: float = 0.75
    shed_at: float = 0.90
    #: Pressure must fall this far below a level's entry threshold before
    #: the controller steps down from it.
    recover_margin: float = 0.10
    #: Presentation-level cap applied from REDUCE_RICH upward.
    rich_level_cap: int = 1
    #: Weight of the open-breaker fraction in the pressure scalar.
    breaker_weight: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 < self.reduce_at <= self.defer_at <= self.shed_at <= 1.0:
            raise ValueError(
                "need 0 < reduce_at <= defer_at <= shed_at <= 1, got "
                f"{self.reduce_at}/{self.defer_at}/{self.shed_at}"
            )
        if not 0.0 <= self.recover_margin < self.reduce_at:
            raise ValueError(
                f"recover_margin must be in [0, reduce_at), got "
                f"{self.recover_margin}"
            )
        if self.rich_level_cap < 1:
            raise ValueError("rich_level_cap must be >= 1 (metadata floor)")
        if self.breaker_weight < 0:
            raise ValueError("breaker_weight must be >= 0")

    def threshold(self, level: PressureLevel) -> float:
        if level is PressureLevel.SHED:
            return self.shed_at
        if level is PressureLevel.DEFER:
            return self.defer_at
        if level is PressureLevel.REDUCE_RICH:
            return self.reduce_at
        return 0.0


class DegradationController:
    """Hysteretic ladder state machine, updated once per scheduler tick."""

    def __init__(self, config: DegradationConfig | None = None) -> None:
        self.config = config or DegradationConfig()
        self.level = PressureLevel.NORMAL
        self.pressure = 0.0
        #: ``(time, level)`` history of every rung change.
        self.transitions: list[tuple[float, PressureLevel]] = []
        #: Highest rung ever reached (bench/health reporting).
        self.max_level = PressureLevel.NORMAL

    def compute_pressure(
        self, occupancy: float, breaker_open_fraction: float = 0.0
    ) -> float:
        config = self.config
        raw = occupancy + config.breaker_weight * breaker_open_fraction
        return max(0.0, min(1.0, raw))

    def _target(self, pressure: float) -> PressureLevel:
        config = self.config
        if pressure >= config.shed_at:
            return PressureLevel.SHED
        if pressure >= config.defer_at:
            return PressureLevel.DEFER
        if pressure >= config.reduce_at:
            return PressureLevel.REDUCE_RICH
        return PressureLevel.NORMAL

    def update(
        self,
        now: float,
        occupancy: float,
        breaker_open_fraction: float = 0.0,
    ) -> PressureLevel:
        """Fold one pressure sample; returns the (possibly new) level."""
        pressure = self.compute_pressure(occupancy, breaker_open_fraction)
        self.pressure = pressure
        target = self._target(pressure)
        level = self.level
        if target > level:
            level = target  # escalate immediately
        elif target < level:
            # Step down one rung per tick, and only with hysteresis room.
            entry = self.config.threshold(level)
            if pressure < entry - self.config.recover_margin:
                level = PressureLevel(level - 1)
        if level is not self.level:
            self.level = level
            self.transitions.append((now, level))
            self.max_level = max(self.max_level, level)
        return self.level

    # -- what the current rung means -------------------------------------------

    def level_cap(self) -> int | None:
        """Presentation cap to apply to round loops, or ``None``."""
        if self.level >= PressureLevel.REDUCE_RICH:
            return self.config.rich_level_cap
        return None

    @property
    def defers_ingest(self) -> bool:
        return self.level >= PressureLevel.DEFER

    @property
    def sheds_ingest(self) -> bool:
        return self.level >= PressureLevel.SHED


class ChannelDegradationLadder:
    """One :class:`DegradationController` per channel, with spill routing.

    Multi-channel delivery changes what "degrade" means: before a
    pressured channel starts deferring or shedding, its traffic can
    *spill sideways* to a cheaper channel that still has headroom --
    push at ``REDUCE_RICH`` hands rich content to in-app before anybody
    reaches ``SHED``.  ``spill`` maps a channel to its relief channel
    (e.g. ``{"push": "inapp", "inapp": "email"}``); :meth:`route`
    follows those edges while the current channel is at or above
    ``REDUCE_RICH`` *and* the target is strictly less pressured, so
    spilling never moves traffic onto an equally-overloaded channel and
    cycles terminate.
    """

    def __init__(
        self,
        channels: list[str] | tuple[str, ...],
        config: DegradationConfig | None = None,
        spill: dict[str, str] | None = None,
    ) -> None:
        if not channels:
            raise ValueError("need at least one channel")
        self.controllers = {
            name: DegradationController(config) for name in channels
        }
        self.spill = dict(spill or {})
        for source, target in self.spill.items():
            if source not in self.controllers or target not in self.controllers:
                raise ValueError(
                    f"spill edge {source!r} -> {target!r} references an "
                    "unknown channel"
                )

    def controller(self, channel: str) -> DegradationController:
        return self.controllers[channel]

    def update(
        self,
        channel: str,
        now: float,
        occupancy: float,
        breaker_open_fraction: float = 0.0,
    ) -> PressureLevel:
        """Fold one pressure sample into ``channel``'s controller."""
        return self.controllers[channel].update(
            now, occupancy, breaker_open_fraction
        )

    def level(self, channel: str) -> PressureLevel:
        return self.controllers[channel].level

    def level_cap(self, channel: str) -> int | None:
        return self.controllers[channel].level_cap()

    def route(self, channel: str) -> str:
        """Where ``channel``'s new traffic should go right now.

        Follows spill edges while the current channel is pressured
        (``REDUCE_RICH`` or worse) and the spill target is strictly less
        pressured; returns the final channel name.  With every channel
        calm (or every target just as pressured) the input is returned
        unchanged.
        """
        current = channel
        visited = {current}
        while True:
            level = self.controllers[current].level
            target = self.spill.get(current)
            if (
                level >= PressureLevel.REDUCE_RICH
                and target is not None
                and target not in visited
                and self.controllers[target].level < level
            ):
                visited.add(target)
                current = target
                continue
            return current

    def defers_ingest(self, channel: str) -> bool:
        """Does traffic for ``channel`` defer *after* spill routing?"""
        return self.controllers[self.route(channel)].defers_ingest

    def sheds_ingest(self, channel: str) -> bool:
        """Does traffic for ``channel`` shed *after* spill routing?

        This is the ladder's whole point: push at ``SHED`` with a calm
        in-app spill target does **not** shed -- the traffic re-routes.
        """
        return self.controllers[self.route(channel)].sheds_ingest
