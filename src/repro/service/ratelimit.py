"""Tiered token-bucket rate limiting: global / per-user / per-topic / per-channel.

Fan-out is bounded at several granularities before an event may touch a
queue: one global bucket protects the service, per-user buckets stop a
single hot recipient from starving the rest, per-topic buckets keep
one noisy content kind (e.g. a viral album release) from crowding out
friend-feed notifications, and per-channel buckets bound each egress
transport (push gateways throttle independently of e-mail relays).

Admission is all-or-nothing: every applicable bucket is *peeked* first
and tokens are consumed only when all tiers agree, so a denial at the
topic tier never leaks tokens from the global tier.  Buckets refill
lazily from elapsed monotonic time -- there is no background task to
schedule, and the arithmetic is exact for the deterministic simulated
clock.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.content import ContentKind


class TokenBucket:
    """Classic token bucket with lazy, clock-driven refill."""

    __slots__ = ("rate", "capacity", "_tokens", "_updated")

    def __init__(self, rate: float, capacity: float, now: float = 0.0) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be > 0 tokens/s, got {rate}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1 token, got {capacity}")
        self.rate = float(rate)
        self.capacity = float(capacity)
        self._tokens = float(capacity)
        self._updated = float(now)

    def _refill(self, now: float) -> None:
        if now > self._updated:
            self._tokens = min(
                self.capacity, self._tokens + (now - self._updated) * self.rate
            )
        self._updated = max(self._updated, now)

    def available(self, now: float) -> float:
        self._refill(now)
        return self._tokens

    def peek(self, now: float, tokens: float = 1.0) -> bool:
        """Would ``tokens`` be grantable right now?  Consumes nothing."""
        return self.available(now) >= tokens

    def try_acquire(self, now: float, tokens: float = 1.0) -> bool:
        self._refill(now)
        if self._tokens < tokens:
            return False
        self._tokens -= tokens
        return True


@dataclass(frozen=True)
class RateLimitConfig:
    """Rates are tokens (events) per second; ``None`` disables a tier.

    Bursts are bucket capacities: how much of a momentary spike each tier
    absorbs before it starts denying.
    """

    global_rate: float | None = None
    global_burst: float = 64.0
    per_user_rate: float | None = None
    per_user_burst: float = 8.0
    per_topic_rate: float | None = None
    per_topic_burst: float = 32.0
    #: Per delivery-channel tier (push/inapp/email/...), bounding each
    #: egress transport independently; ``None`` disables it.
    per_channel_rate: float | None = None
    per_channel_burst: float = 32.0

    def __post_init__(self) -> None:
        for name in (
            "global_rate",
            "per_user_rate",
            "per_topic_rate",
            "per_channel_rate",
        ):
            rate = getattr(self, name)
            if rate is not None and rate <= 0:
                raise ValueError(f"{name} must be > 0 when set, got {rate}")
        for name in (
            "global_burst",
            "per_user_burst",
            "per_topic_burst",
            "per_channel_burst",
        ):
            burst = getattr(self, name)
            if burst < 1:
                raise ValueError(f"{name} must be >= 1, got {burst}")

    @property
    def enabled(self) -> bool:
        return any(
            rate is not None
            for rate in (
                self.global_rate,
                self.per_user_rate,
                self.per_topic_rate,
                self.per_channel_rate,
            )
        )


@dataclass(frozen=True, slots=True)
class RateDecision:
    """Outcome of one admission check; ``tier`` names the denier."""

    allowed: bool
    tier: str = ""


class TieredRateLimiter:
    """The three-tier limiter; per-user/per-topic buckets spawn lazily."""

    def __init__(self, config: RateLimitConfig, now: float = 0.0) -> None:
        self.config = config
        self._global = (
            TokenBucket(config.global_rate, config.global_burst, now)
            if config.global_rate is not None
            else None
        )
        self._per_user: dict[int, TokenBucket] = {}
        self._per_topic: dict[ContentKind, TokenBucket] = {}
        self._per_channel: dict[str, TokenBucket] = {}
        #: Denials by tier name, for health snapshots.
        self.denials: dict[str, int] = {
            "global": 0,
            "user": 0,
            "topic": 0,
            "channel": 0,
        }

    def _user_bucket(self, user_id: int, now: float) -> TokenBucket | None:
        if self.config.per_user_rate is None:
            return None
        bucket = self._per_user.get(user_id)
        if bucket is None:
            bucket = TokenBucket(
                self.config.per_user_rate, self.config.per_user_burst, now
            )
            self._per_user[user_id] = bucket
        return bucket

    def _topic_bucket(self, kind: ContentKind, now: float) -> TokenBucket | None:
        if self.config.per_topic_rate is None:
            return None
        bucket = self._per_topic.get(kind)
        if bucket is None:
            bucket = TokenBucket(
                self.config.per_topic_rate, self.config.per_topic_burst, now
            )
            self._per_topic[kind] = bucket
        return bucket

    def _channel_bucket(self, channel: str, now: float) -> TokenBucket | None:
        if self.config.per_channel_rate is None:
            return None
        bucket = self._per_channel.get(channel)
        if bucket is None:
            bucket = TokenBucket(
                self.config.per_channel_rate, self.config.per_channel_burst, now
            )
            self._per_channel[channel] = bucket
        return bucket

    def allow(
        self,
        now: float,
        user_id: int,
        kind: ContentKind,
        channel: str | None = None,
    ) -> RateDecision:
        """Check all tiers; consume one token from each only if all pass.

        ``channel`` engages the per-channel tier when the config enables
        it; callers that do not route per channel simply omit it.
        """
        tiers: list[tuple[str, TokenBucket]] = []
        if self._global is not None:
            tiers.append(("global", self._global))
        user_bucket = self._user_bucket(user_id, now)
        if user_bucket is not None:
            tiers.append(("user", user_bucket))
        topic_bucket = self._topic_bucket(kind, now)
        if topic_bucket is not None:
            tiers.append(("topic", topic_bucket))
        if channel is not None:
            channel_bucket = self._channel_bucket(channel, now)
            if channel_bucket is not None:
                tiers.append(("channel", channel_bucket))

        for tier, bucket in tiers:
            if not bucket.peek(now):
                self.denials[tier] += 1
                return RateDecision(allowed=False, tier=tier)
        for _, bucket in tiers:
            bucket.try_acquire(now)
        return RateDecision(allowed=True)
