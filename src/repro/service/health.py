"""Service health: conservation accounting, latency percentiles, bench payload.

Every event offered to the service must end in exactly one place.  The
conservation identity the chaos gate asserts (integers, exact):

    ingested == delivered + shed + deferred_pending + dead_lettered
                + pending

where ``pending`` counts events still queued (frontier + round loops)
and ``deferred_pending`` counts events parked in the deferred buffer.
Any drift means an event was double-counted or silently dropped.

Latency is end-to-end on the service clock: ingest admission to sink
confirmation, including scheduling wait, retries and backoff.  The p50 /
p99 quantiles use the nearest-rank method (deterministic, no
interpolation surprises at tiny sample counts).

``BENCH_service.json`` (schema ``richnote-bench-service/1``) packages the
same numbers for CI: sustained notifications/sec, latency quantiles and
the shed/deferred/dead-letter ledger under the flash-crowd scenario.
"""

from __future__ import annotations

import json
import math
import platform
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

from repro.service.degrade import PressureLevel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.server import NotificationService

#: Schema tag of BENCH_service.json.
SERVICE_SCHEMA = "richnote-bench-service/1"


def quantile(samples: list[float], q: float) -> float:
    """Nearest-rank quantile; 0.0 on an empty sample set."""
    if not 0.0 < q <= 1.0:
        raise ValueError(f"quantile must be in (0, 1], got {q}")
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


@dataclass
class ServiceStats:
    """Cumulative counters; the single source of truth for accounting."""

    ingested: int = 0
    admitted: int = 0
    delivered: int = 0
    delivered_bytes: float = 0.0
    delivered_utility: float = 0.0
    dead_lettered: int = 0
    deferred_total: int = 0
    readmitted: int = 0
    shed_queue_full: int = 0
    shed_rate_limited: int = 0
    shed_overload: int = 0
    rounds_run: int = 0
    ticks: int = 0
    dead_letter_reasons: dict[str, int] = field(default_factory=dict)
    #: End-to-end seconds (service clock) per delivered item.
    latencies: list[float] = field(default_factory=list)

    @property
    def shed(self) -> int:
        return self.shed_queue_full + self.shed_rate_limited + self.shed_overload

    def record_dead_letter(self, reason: str) -> None:
        self.dead_lettered += 1
        self.dead_letter_reasons[reason] = (
            self.dead_letter_reasons.get(reason, 0) + 1
        )

    def record_delivery(self, latency: float, size_bytes: float, utility: float) -> None:
        self.delivered += 1
        self.delivered_bytes += size_bytes
        self.delivered_utility += utility
        self.latencies.append(latency)

    def latency_quantile(self, q: float) -> float:
        return quantile(self.latencies, q)


@dataclass(frozen=True)
class HealthSnapshot:
    """Point-in-time health view (what a /healthz endpoint would serve)."""

    time: float
    pressure_level: PressureLevel
    pressure: float
    queue_depth: int
    queue_high_water: int
    deferred_pending: int
    loop_backlog: int
    breaker_states: tuple[str, ...]
    conservation_error: int

    @property
    def healthy(self) -> bool:
        """Conserving and not shedding: the green-check definition."""
        return (
            self.conservation_error == 0
            and self.pressure_level < PressureLevel.SHED
        )

    def to_dict(self) -> dict:
        return {
            "time": self.time,
            "pressure_level": self.pressure_level.name,
            "pressure": self.pressure,
            "queue_depth": self.queue_depth,
            "queue_high_water": self.queue_high_water,
            "deferred_pending": self.deferred_pending,
            "loop_backlog": self.loop_backlog,
            "breaker_states": list(self.breaker_states),
            "conservation_error": self.conservation_error,
            "healthy": self.healthy,
        }


def service_bench_payload(
    service: "NotificationService",
    simulated_seconds: float,
    wall_seconds: float,
    meta: dict | None = None,
) -> dict:
    """The ``BENCH_service.json`` document for one bounded service run."""
    stats = service.stats
    accounting = service.accounting()
    controller = service.controller
    return {
        "schema": SERVICE_SCHEMA,
        "platform": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "system": platform.system(),
        },
        "meta": dict(meta or {}),
        "throughput": {
            "simulated_seconds": simulated_seconds,
            "wall_seconds": wall_seconds,
            "ingested": stats.ingested,
            "delivered": stats.delivered,
            "delivered_per_simulated_s": (
                stats.delivered / simulated_seconds if simulated_seconds else 0.0
            ),
            "ingested_per_wall_s": (
                stats.ingested / wall_seconds if wall_seconds else 0.0
            ),
            "delivered_per_wall_s": (
                stats.delivered / wall_seconds if wall_seconds else 0.0
            ),
        },
        "latency_s": {
            "count": len(stats.latencies),
            "p50": stats.latency_quantile(0.50),
            "p99": stats.latency_quantile(0.99),
            "max": max(stats.latencies) if stats.latencies else 0.0,
        },
        "accounting": accounting,
        "pressure": {
            "max_level": controller.max_level.name,
            "final_level": controller.level.name,
            "transitions": [
                {"time": time, "level": level.name}
                for time, level in controller.transitions
            ],
        },
        "sinks": {
            sink.name: {
                "attempts": sink.stats.attempts,
                "delivered": sink.stats.delivered,
                "failures": sink.stats.failures,
                "timeouts": sink.stats.timeouts,
                "retries": sink.stats.retries,
                "breaker_skips": sink.stats.breaker_skips,
                "breaker_transitions": sink.stats.breaker_transitions,
                "exhausted": sink.stats.exhausted,
                "breaker_state": sink.breaker_state.value,
            }
            for sink in service.sinks
        },
    }


def write_bench(path: str | Path, payload: dict) -> Path:
    """Write the bench document; returns the path written."""
    out = Path(path)
    out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return out
