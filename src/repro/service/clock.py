"""Service time sources: real monotonic time or deterministic virtual time.

The service measures *durations* -- round periods, delivery timeouts,
retry backoffs, end-to-end latency -- so it must never read the wall
clock: NTP steps and DST jumps would corrupt every interval (richlint
RL205).  :class:`MonotonicClock` wraps ``time.monotonic`` for live runs.

Tests and chaos scenarios need the opposite of real time: a clock the
test *drives*.  :class:`SimulatedClock` keeps a heap of sleepers and
advances only when told to, so a 10-minute flash crowd replays in
milliseconds and every interleaving is reproducible.  Timeout races
(:mod:`repro.service.sinks`) are built on ``Clock.sleep`` rather than
``asyncio.wait_for`` precisely so they stay on virtual time.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
import time
from typing import Awaitable, Protocol


class Clock(Protocol):
    """Minimal time source: a monotonic ``now`` and an awaitable sleep."""

    def now(self) -> float: ...  # pragma: no cover - protocol

    async def sleep(self, seconds: float) -> None: ...  # pragma: no cover


class MonotonicClock:
    """Live clock: ``time.monotonic`` + ``asyncio.sleep``.

    Monotonic by construction -- immune to NTP/DST wall-clock steps, the
    only safe base for duration math (richlint RL205).
    """

    def now(self) -> float:
        return time.monotonic()

    async def sleep(self, seconds: float) -> None:
        await asyncio.sleep(max(0.0, seconds))


class SimulatedClock:
    """Deterministic virtual time for service tests and chaos replays.

    ``sleep`` parks the caller on a heap keyed by wake time (with an
    insertion sequence for FIFO tie-breaks -- no hash-order in wakeups);
    :meth:`advance` and :meth:`drive` pop sleepers and resolve them in
    deterministic order while repeatedly yielding to the event loop so
    woken coroutines run to their next await.
    """

    def __init__(self, start: float = 0.0) -> None:
        # advance() and drive() both move time, but a test drives exactly
        # one of them at a time on the event loop (RL705 discipline).
        self._now = float(start)  # richlint: guarded-by(event-loop)
        self._seq = itertools.count()
        self._sleepers: list[tuple[float, int, asyncio.Future]] = []

    def now(self) -> float:
        return self._now

    @property
    def pending_sleepers(self) -> int:
        """Sleepers currently parked (diagnostics)."""
        return sum(1 for _, _, f in self._sleepers if not f.done())

    async def sleep(self, seconds: float) -> None:
        if seconds <= 0:
            await asyncio.sleep(0)
            return
        future = asyncio.get_running_loop().create_future()
        heapq.heappush(
            self._sleepers, (self._now + seconds, next(self._seq), future)
        )
        await future

    async def advance(self, seconds: float) -> None:
        """Move virtual time forward, waking every sleeper that comes due.

        Yields to the event loop between wakeups so chains of awaits
        (timer fires -> round runs -> sink races) settle in order; after
        the last due sleeper it keeps yielding until the loop quiesces,
        then pins ``now`` to the target.
        """
        if seconds < 0:
            raise ValueError(f"cannot advance time backwards ({seconds})")
        target = self._now + seconds
        idle = 0
        while True:
            await asyncio.sleep(0)
            if self._sleepers and self._sleepers[0][0] <= target + 1e-12:
                wake, _, future = heapq.heappop(self._sleepers)
                if not future.done():  # skip cancelled timeout races
                    self._now = max(self._now, wake)
                    future.set_result(None)
                idle = 0
                continue
            idle += 1
            if idle >= 50:
                break
        self._now = target

    #: Consecutive event-loop yields granted between sleeper wakeups so
    #: await chains (timer fires -> race settles -> cancellation lands)
    #: run to quiescence before virtual time moves again.  Popping after
    #: a single yield would let time jump *ahead of causality*: a 120s
    #: sleeper could resolve before a 5s timeout race finished settling.
    _settle_yields = 10

    async def drive(self, awaitable: Awaitable, max_idle_yields: int = 100_000):
        """Run ``awaitable`` to completion, advancing time as far as needed.

        The canonical way to run a bounded service session on virtual
        time: wraps the awaitable in a task, then alternates between
        letting the event loop settle and firing the earliest sleeper,
        until the task finishes.  Raises if the task is still pending
        with no sleepers left after ``max_idle_yields`` consecutive idle
        yields (a genuine deadlock, not a timing artifact).
        """
        task = asyncio.ensure_future(awaitable)
        idle = 0
        settle = 0
        while not task.done():
            await asyncio.sleep(0)
            if task.done():
                break
            if self._sleepers:
                idle = 0
                if settle < self._settle_yields:
                    settle += 1
                    continue
                settle = 0
                wake, _, future = heapq.heappop(self._sleepers)
                if not future.done():  # skip cancelled timeout races
                    self._now = max(self._now, wake)
                    future.set_result(None)
            else:
                settle = 0
                idle += 1
                if idle > max_idle_yields:
                    task.cancel()
                    raise RuntimeError(
                        "simulated clock stalled: task pending with no "
                        "sleepers to wake"
                    )
        return task.result()
