"""Async delivery sinks: per-delivery timeouts, jittered retries, breakers.

:class:`GuardedSink` adapts any delivery callable -- sync or async -- to
the service's egress contract:

* every attempt races a **per-delivery timeout** measured on the service
  clock (never ``asyncio.wait_for``: that reads the event loop's real
  clock, which would hang forever on simulated time);
* failures retry within a bounded **retry budget**, spaced by full-jitter
  exponential backoff (the same idiom as
  :class:`repro.core.delivery.RetryPolicy`) drawn from an explicit seeded
  RNG;
* the whole thing sits behind the broker's
  :class:`~repro.pubsub.broker.SinkCircuit` breaker.  Because attempts
  here are *in flight across awaits*, the breaker's half-open
  single-probe latch matters: concurrent deliveries against a half-open
  sink get refused instead of stampeding it.
"""

from __future__ import annotations

import asyncio
import contextlib
import inspect
import random
from dataclasses import dataclass
from typing import Awaitable, Callable, Union

from repro.pubsub.broker import BreakerState, CircuitBreakerConfig, SinkCircuit
from repro.runtime.types import Delivery
from repro.service.clock import Clock

#: A delivery consumer: called with each Delivery; may be a coroutine
#: function.  Raising (or timing out) marks the attempt failed.
DeliverySink = Callable[[Delivery], Union[None, Awaitable[None]]]


class SinkTimeout(Exception):
    """An attempt exceeded the per-delivery timeout."""


@dataclass(frozen=True)
class SinkPolicy:
    """Timeout and retry budget for one guarded sink."""

    timeout_seconds: float = 5.0
    max_attempts: int = 3
    base_backoff_seconds: float = 0.5
    max_backoff_seconds: float = 8.0

    def __post_init__(self) -> None:
        if self.timeout_seconds <= 0:
            raise ValueError("timeout must be positive")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_backoff_seconds < 0:
            raise ValueError("base backoff must be >= 0")
        if self.max_backoff_seconds < self.base_backoff_seconds:
            raise ValueError("max backoff must be >= base backoff")

    def backoff_seconds(self, failed_attempts: int, rng: random.Random) -> float:
        """Full-jitter exponential backoff after ``failed_attempts`` >= 1."""
        ceiling = min(
            self.max_backoff_seconds,
            self.base_backoff_seconds * (2 ** (failed_attempts - 1)),
        )
        return rng.uniform(0.0, ceiling)


@dataclass
class SinkStats:
    """Cumulative per-sink egress counters."""

    attempts: int = 0
    delivered: int = 0
    failures: int = 0
    timeouts: int = 0
    retries: int = 0
    breaker_skips: int = 0
    breaker_transitions: int = 0
    exhausted: int = 0


class GuardedSink:
    """One egress sink wrapped in timeout + retry budget + breaker."""

    def __init__(
        self,
        sink: DeliverySink,
        clock: Clock,
        rng: random.Random,
        policy: SinkPolicy | None = None,
        breaker: CircuitBreakerConfig | None = None,
        name: str = "sink",
    ) -> None:
        self.name = name
        self.policy = policy or SinkPolicy()
        self._sink = sink
        self._clock = clock
        self._rng = rng
        self.circuit = SinkCircuit(breaker or CircuitBreakerConfig())
        self.stats = SinkStats()

    @property
    def breaker_state(self) -> BreakerState:
        return self.circuit.state

    async def _attempt(self, delivery: Delivery) -> None:
        result = self._sink(delivery)
        if inspect.isawaitable(result):
            await result

    async def _attempt_with_timeout(self, delivery: Delivery) -> None:
        """Race the sink call against the service clock's timeout."""
        attempt_task = asyncio.ensure_future(self._attempt(delivery))
        timer_task = asyncio.ensure_future(
            self._clock.sleep(self.policy.timeout_seconds)
        )
        try:
            done, _ = await asyncio.wait(
                {attempt_task, timer_task},
                return_when=asyncio.FIRST_COMPLETED,
            )
        except asyncio.CancelledError:
            attempt_task.cancel()
            timer_task.cancel()
            raise
        if attempt_task in done and not timer_task.done():
            timer_task.cancel()
            attempt_task.result()  # re-raise the sink's exception, if any
            return
        # The timer fired: a timeout even if the attempt also finished in
        # the same settling window (the deadline had already passed).
        attempt_task.cancel()
        with contextlib.suppress(asyncio.CancelledError, Exception):
            await attempt_task
        raise SinkTimeout(
            f"{self.name}: delivery of item {delivery.item.item_id} exceeded "
            f"{self.policy.timeout_seconds:g}s"
        )

    async def deliver(self, delivery: Delivery) -> bool:
        """Deliver with retries; True on success, False when given up.

        A breaker refusal fails fast (no retries: the cooldown *is* the
        backoff); a timeout or sink exception consumes one attempt from
        the retry budget and backs off with full jitter before the next.
        """
        policy = self.policy
        for attempt in range(1, policy.max_attempts + 1):
            allowed, transitioned = self.circuit.allow()
            if transitioned:
                self.stats.breaker_transitions += 1
            if not allowed:
                self.stats.breaker_skips += 1
                return False
            self.stats.attempts += 1
            try:
                await self._attempt_with_timeout(delivery)
            except asyncio.CancelledError:
                raise
            except Exception as error:
                self.stats.failures += 1
                if isinstance(error, SinkTimeout):
                    self.stats.timeouts += 1
                if self.circuit.record_failure():
                    self.stats.breaker_transitions += 1
                if attempt >= policy.max_attempts:
                    break
                self.stats.retries += 1
                await self._clock.sleep(
                    policy.backoff_seconds(attempt, self._rng)
                )
            else:
                self.stats.delivered += 1
                if self.circuit.record_success():
                    self.stats.breaker_transitions += 1
                return True
        self.stats.exhausted += 1
        return False


@dataclass
class RouterStats:
    """Cumulative routing counters of one :class:`ChannelSinkRouter`."""

    #: Deliveries handed to each channel's sink (by channel name).
    routed: dict = None  # type: ignore[assignment]
    #: Spill hops taken, keyed ``"<from>-><to>"``.
    spilled: dict = None  # type: ignore[assignment]
    #: Deliveries whose channel had no sink and no spill route.
    unroutable: int = 0

    def __post_init__(self) -> None:
        if self.routed is None:
            self.routed = {}
        if self.spilled is None:
            self.spilled = {}


#: Breaker-state severity for the router's aggregate health view.
_BREAKER_SEVERITY = {
    BreakerState.CLOSED: 0,
    BreakerState.HALF_OPEN: 1,
    BreakerState.OPEN: 2,
}


class ChannelSinkRouter:
    """One :class:`GuardedSink` per channel, with spill-over routing.

    Each channel gets its own guarded sink -- independent timeout/retry
    budgets and, crucially, an *independent circuit breaker*: a dead push
    gateway opens only the push breaker while in-app and email keep
    flowing.  ``spill`` maps a channel to the channel that should absorb
    its traffic when delivery fails or its breaker is open (e.g.
    ``{"push": "inapp"}``); spill chains are followed until a channel
    delivers, a cycle closes, or the chain dead-ends.

    The router quacks like a :class:`GuardedSink` (``deliver`` /
    ``stats`` / ``breaker_state``), so it can be appended to
    ``NotificationService.sinks`` directly: ``breaker_state`` reports the
    *most severe* state among the per-channel breakers, which keeps the
    service's pressure computation conservative.
    """

    def __init__(
        self,
        spill: dict[str, str] | None = None,
        name: str = "channels",
    ) -> None:
        self.name = name
        self.spill = dict(spill or {})
        self._sinks: dict[str, GuardedSink] = {}
        self.router_stats = RouterStats()

    def register(self, channel_name: str, sink: GuardedSink) -> GuardedSink:
        """Attach ``sink`` as the egress for ``channel_name``."""
        if channel_name in self._sinks:
            raise ValueError(f"channel {channel_name!r} already has a sink")
        self._sinks[channel_name] = sink
        return sink

    def sink_for(self, channel_name: str) -> GuardedSink | None:
        return self._sinks.get(channel_name)

    @property
    def channel_names(self) -> tuple[str, ...]:
        return tuple(self._sinks)

    @property
    def breaker_state(self) -> BreakerState:
        """The most severe breaker state among the per-channel sinks."""
        worst = BreakerState.CLOSED
        for sink in self._sinks.values():
            if _BREAKER_SEVERITY[sink.breaker_state] > _BREAKER_SEVERITY[worst]:
                worst = sink.breaker_state
        return worst

    @property
    def stats(self) -> SinkStats:
        """Aggregate egress counters summed across the per-channel sinks."""
        total = SinkStats()
        for sink in self._sinks.values():
            stats = sink.stats
            total.attempts += stats.attempts
            total.delivered += stats.delivered
            total.failures += stats.failures
            total.timeouts += stats.timeouts
            total.retries += stats.retries
            total.breaker_skips += stats.breaker_skips
            total.breaker_transitions += stats.breaker_transitions
            total.exhausted += stats.exhausted
        return total

    def per_channel_stats(self) -> dict[str, SinkStats]:
        return {name: sink.stats for name, sink in self._sinks.items()}

    async def deliver(self, delivery: Delivery) -> bool:
        """Route one delivery to its channel's sink, spilling on failure.

        The starting channel is ``delivery.channel`` ("push" on legacy
        records).  A channel whose guarded delivery fails -- breaker
        open, retries exhausted, timeout -- hands the delivery to its
        spill target; each hop is counted in :attr:`router_stats`.
        """
        current: str | None = getattr(delivery, "channel", "push") or "push"
        visited: set[str] = set()
        while current is not None and current not in visited:
            visited.add(current)
            sink = self._sinks.get(current)
            if sink is not None:
                self.router_stats.routed[current] = (
                    self.router_stats.routed.get(current, 0) + 1
                )
                if await sink.deliver(delivery):
                    return True
            target = self.spill.get(current)
            if target is not None and target not in visited:
                key = f"{current}->{target}"
                self.router_stats.spilled[key] = (
                    self.router_stats.spilled.get(key, 0) + 1
                )
            current = target
        if not visited & self._sinks.keys():
            self.router_stats.unroutable += 1
        return False
