"""The ingest frontier: bounded per-user queues with explicit shedding.

Backpressure starts here.  Every user owns one bounded FIFO; when it is
full the frontier *refuses* the event with an explicit ``Overload``
result (:class:`IngestResult` with a shedding :class:`Admission`) instead
of queueing unboundedly -- callers always learn the fate of an event at
the moment they offer it, and memory stays proportional to
``users x queue_bound`` no matter how hard the flash crowd pushes.

The frontier also tracks a *window peak*: the maximum aggregate depth
since the last scheduler tick.  Queues drain at round boundaries, so an
instantaneous depth reading at tick time would always look calm; the
degradation controller (:mod:`repro.service.degrade`) keys off the peak
within the window instead.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from enum import Enum

from repro.core.content import ContentItem


@dataclass(frozen=True, slots=True)
class QueuedEvent:
    """One admitted notification event, stamped with its ingest time."""

    item: ContentItem
    ingested_at: float


class Admission(str, Enum):
    """What happened to an offered event, decided at ingest time."""

    #: Accepted into the user's bounded queue.
    ADMITTED = "admitted"
    #: Parked in the deferred buffer (degradation ladder >= DEFER);
    #: re-admitted automatically when pressure clears.
    DEFERRED = "deferred"
    #: Shed: the user's queue was at its bound.
    SHED_QUEUE_FULL = "shed_queue_full"
    #: Shed: a rate-limit tier (global/user/topic) had no tokens.
    SHED_RATE_LIMITED = "shed_rate_limited"
    #: Shed: sustained overload (ladder at SHED, or deferred buffer full).
    SHED_OVERLOAD = "shed_overload"


#: Admissions that constitute an explicit Overload rejection.
OVERLOAD_ADMISSIONS = frozenset(
    {
        Admission.SHED_QUEUE_FULL,
        Admission.SHED_RATE_LIMITED,
        Admission.SHED_OVERLOAD,
    }
)


@dataclass(frozen=True, slots=True)
class IngestResult:
    """The explicit, per-event answer :meth:`NotificationService.ingest`
    returns -- an ``Overload`` result when the event was shed.

    ``detail`` carries the denying rate-limit tier or shed cause for
    observability; ``queue_depth`` is the user's queue depth *after* the
    decision.
    """

    outcome: Admission
    user_id: int
    item_id: int
    queue_depth: int = 0
    detail: str = ""

    @property
    def admitted(self) -> bool:
        return self.outcome is Admission.ADMITTED

    @property
    def overload(self) -> bool:
        """True when the event was explicitly shed (an Overload result)."""
        return self.outcome in OVERLOAD_ADMISSIONS


class BoundedUserQueue:
    """FIFO for one user, hard-capped at ``bound`` events."""

    __slots__ = ("user_id", "bound", "high_water", "_entries")

    def __init__(self, user_id: int, bound: int) -> None:
        if bound < 1:
            raise ValueError(f"queue bound must be >= 1, got {bound}")
        self.user_id = user_id
        self.bound = bound
        #: Largest depth ever observed (the chaos gate asserts it never
        #: exceeds ``bound``).
        self.high_water = 0
        self._entries: deque[QueuedEvent] = deque()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.bound

    def push(self, event: QueuedEvent) -> bool:
        """Append; returns False (and drops nothing) when at the bound."""
        if self.full:
            return False
        self._entries.append(event)
        self.high_water = max(self.high_water, len(self._entries))
        return True

    def drain(self) -> list[QueuedEvent]:
        """Remove and return everything, oldest first."""
        drained = list(self._entries)
        self._entries.clear()
        return drained


class IngestFrontier:
    """All users' bounded queues plus the pressure-window bookkeeping."""

    def __init__(self, queue_bound: int) -> None:
        if queue_bound < 1:
            raise ValueError(f"queue bound must be >= 1, got {queue_bound}")
        self.queue_bound = queue_bound
        self._queues: dict[int, BoundedUserQueue] = {}
        self._window_peak = 0

    def register(self, user_id: int) -> BoundedUserQueue:
        """Create (or fetch) the queue of one user."""
        queue = self._queues.get(user_id)
        if queue is None:
            queue = BoundedUserQueue(user_id, self.queue_bound)
            self._queues[user_id] = queue
        return queue

    @property
    def user_count(self) -> int:
        return len(self._queues)

    def offer(self, event: QueuedEvent) -> bool:
        """Try to admit one event; False means the queue was at its bound."""
        queue = self.register(event.item.user_id)
        admitted = queue.push(event)
        if admitted:
            self._window_peak = max(self._window_peak, self.total_depth())
        return admitted

    def drain(self, user_id: int) -> list[QueuedEvent]:
        queue = self._queues.get(user_id)
        return queue.drain() if queue is not None else []

    def depth(self, user_id: int) -> int:
        queue = self._queues.get(user_id)
        return len(queue) if queue is not None else 0

    def total_depth(self) -> int:
        return sum(len(queue) for queue in self._queues.values())

    def high_water(self) -> int:
        """Largest single-queue depth ever observed across all users."""
        if not self._queues:
            return 0
        return max(queue.high_water for queue in self._queues.values())

    def take_window_peak(self) -> int:
        """Peak aggregate depth since the last call; resets the window.

        The degradation controller samples this once per scheduler tick:
        it sees the burst even though the queues were drained before the
        reading.
        """
        peak = max(self._window_peak, self.total_depth())
        self._window_peak = self.total_depth()
        return peak

    def occupancy_of(self, depth: int) -> float:
        """``depth`` as a fraction of aggregate frontier capacity."""
        capacity = max(1, self.user_count * self.queue_bound)
        return min(1.0, depth / capacity)
