"""Live chaos for the service: flash-crowd load and misbehaving sinks.

The batch harness injects faults per transfer (:mod:`repro.sim.faults`);
the service needs chaos at two more layers:

* **ingress** -- :class:`FlashCrowdScenario` generates a deterministic,
  seeded event schedule: Poisson background traffic that spikes by a
  multiplier during a crowd window, with the spike concentrated on a
  hotspot subset of users (that concentration is what actually overflows
  *per-user* bounded queues);
* **egress** -- :class:`FlakySink` fails or stalls deliveries from a
  seeded stream, driving the guarded sinks' timeout, retry and breaker
  paths, optionally with a hard outage window for deterministic breaker
  trips.

Both are pure functions of their seeds: a chaos run replays bit-for-bit.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.core.content import ContentItem, ContentKind
from repro.runtime.types import Delivery
from repro.service.clock import Clock

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.server import NotificationService


@dataclass(frozen=True, slots=True)
class ScheduledEvent:
    """One planned ingest: when, for whom, what kind."""

    time: float
    user_id: int
    kind: ContentKind


@dataclass(frozen=True)
class FlashCrowdConfig:
    """Shape of the load: background Poisson + a concentrated spike."""

    n_users: int = 20
    duration_seconds: float = 600.0
    #: Aggregate background arrival rate (events/second).
    base_rate: float = 0.5
    crowd_start: float = 180.0
    crowd_duration: float = 120.0
    #: Multiplier on ``base_rate`` inside the crowd window.
    crowd_multiplier: float = 20.0
    #: Fraction of users that receive the crowd's concentrated traffic.
    hotspot_fraction: float = 0.3
    #: Probability a crowd event targets the hotspot subset.
    hotspot_weight: float = 0.8

    def __post_init__(self) -> None:
        if self.n_users < 1:
            raise ValueError("n_users must be >= 1")
        if self.duration_seconds <= 0:
            raise ValueError("duration must be positive")
        if self.base_rate <= 0:
            raise ValueError("base_rate must be positive")
        if not 0.0 <= self.crowd_start <= self.duration_seconds:
            raise ValueError("crowd_start must lie within the run")
        if self.crowd_duration < 0:
            raise ValueError("crowd_duration must be >= 0")
        if self.crowd_multiplier < 1:
            raise ValueError("crowd_multiplier must be >= 1")
        if not 0.0 < self.hotspot_fraction <= 1.0:
            raise ValueError("hotspot_fraction must be in (0, 1]")
        if not 0.0 <= self.hotspot_weight <= 1.0:
            raise ValueError("hotspot_weight must be in [0, 1]")

    def rate_at(self, t: float) -> float:
        in_crowd = (
            self.crowd_start <= t < self.crowd_start + self.crowd_duration
        )
        return self.base_rate * (self.crowd_multiplier if in_crowd else 1.0)


#: Builds the ContentItem for one scheduled event; supplied by the
#: harness so chaos stays ignorant of ladders and utility models.
ItemFactory = Callable[[int, ScheduledEvent], ContentItem]

_KINDS = (
    ContentKind.FRIEND_FEED,
    ContentKind.ALBUM_RELEASE,
    ContentKind.PLAYLIST_UPDATE,
)


class FlashCrowdScenario:
    """Deterministic flash-crowd event schedule + ingest driver."""

    def __init__(
        self,
        config: FlashCrowdConfig,
        item_factory: ItemFactory,
        seed: int = 23,
    ) -> None:
        self.config = config
        self.seed = seed
        self._item_factory = item_factory
        self._schedule: list[ScheduledEvent] | None = None

    def schedule(self) -> list[ScheduledEvent]:
        """The full event timeline (cached; same seed, same timeline)."""
        if self._schedule is not None:
            return self._schedule
        config = self.config
        rng = random.Random(self.seed)
        hotspot_count = max(1, round(config.n_users * config.hotspot_fraction))
        hotspot = list(range(hotspot_count))
        everyone = list(range(config.n_users))
        events: list[ScheduledEvent] = []
        t = 0.0
        while True:
            # Thinning-free piecewise-homogeneous Poisson: draw the gap at
            # the current regime's rate.
            t += rng.expovariate(config.rate_at(t))
            if t >= config.duration_seconds:
                break
            in_crowd = (
                config.crowd_start <= t < config.crowd_start + config.crowd_duration
            )
            if in_crowd and rng.random() < config.hotspot_weight:
                user_id = hotspot[rng.randrange(len(hotspot))]
            else:
                user_id = everyone[rng.randrange(len(everyone))]
            kind = _KINDS[rng.randrange(len(_KINDS))]
            events.append(ScheduledEvent(time=t, user_id=user_id, kind=kind))
        self._schedule = events
        return events

    async def drive(
        self, service: "NotificationService", clock: Clock
    ) -> list:
        """Feed the schedule into the service on its clock; returns the
        per-event :class:`~repro.service.queues.IngestResult` list."""
        start = clock.now()
        results = []
        for index, event in enumerate(self.schedule()):
            delay = start + event.time - clock.now()
            if delay > 0:
                await clock.sleep(delay)
            item = self._item_factory(index, event)
            results.append(await service.ingest(item))
        return results


class SinkFault(Exception):
    """Injected egress failure."""


class FlakySink:
    """A delivery sink that fails and stalls from a seeded stream.

    ``p_fail`` raises immediately; ``p_stall`` sleeps ``stall_seconds``
    on the service clock before succeeding -- long stalls exceed the
    guarded sink's per-delivery timeout and exercise the cancel path.
    An ``outage`` window ``(t0, t1)`` fails every attempt inside it,
    deterministically tripping the circuit breaker.
    """

    def __init__(
        self,
        clock: Clock,
        rng: random.Random,
        p_fail: float = 0.0,
        p_stall: float = 0.0,
        stall_seconds: float = 30.0,
        outage: tuple[float, float] | None = None,
    ) -> None:
        if not 0.0 <= p_fail <= 1.0:
            raise ValueError(f"p_fail must be in [0, 1], got {p_fail}")
        if not 0.0 <= p_stall <= 1.0 - p_fail:
            raise ValueError(
                f"p_stall must be in [0, {1.0 - p_fail:g}], got {p_stall}"
            )
        self._clock = clock
        self._rng = rng
        self.p_fail = p_fail
        self.p_stall = p_stall
        self.stall_seconds = stall_seconds
        self.outage = outage
        self.delivered: list[Delivery] = []
        self.faults_injected = 0
        self.stalls_injected = 0

    async def __call__(self, delivery: Delivery) -> None:
        now = self._clock.now()
        if self.outage is not None and self.outage[0] <= now < self.outage[1]:
            self.faults_injected += 1
            raise SinkFault(f"outage window at t={now:g}")
        draw = self._rng.random()
        if draw < self.p_fail:
            self.faults_injected += 1
            raise SinkFault(f"injected failure at t={now:g}")
        if draw < self.p_fail + self.p_stall:
            self.stalls_injected += 1
            await self._clock.sleep(self.stall_seconds)
        self.delivered.append(delivery)
