"""Per-user round timers with deterministic phase staggering.

Firing every user's round at the same instant would synchronize the
fleet into periodic load spikes (and make the first tick O(users) while
the rest of the period idles).  Each user instead gets a seeded phase
offset uniform in ``(0, period]``, so rounds spread across the period
while each user still ticks exactly once per period.

The offsets come from one ``random.Random(seed)`` stream consumed in
registration order -- same seed, same user order, same schedule, every
run (the determinism contract richlint R2 enforces).
"""

from __future__ import annotations

import heapq
import itertools
import random


class RoundTimers:
    """A heap of ``(next_fire, seq, user_id)`` round deadlines."""

    def __init__(
        self,
        period_seconds: float,
        seed: int = 0,
        stagger: bool = True,
    ) -> None:
        if period_seconds <= 0:
            raise ValueError(
                f"round period must be positive, got {period_seconds}"
            )
        self.period_seconds = float(period_seconds)
        self.stagger = stagger
        self._rng = random.Random(seed)
        self._seq = itertools.count()
        self._heap: list[tuple[float, int, int]] = []
        self._registered: set[int] = set()

    @property
    def user_count(self) -> int:
        return len(self._registered)

    def register(self, user_id: int, now: float) -> float:
        """Schedule a user's first round; returns its fire time."""
        if user_id in self._registered:
            raise ValueError(f"user {user_id} already has a round timer")
        self._registered.add(user_id)
        if self.stagger:
            # Uniform in (0, period]: never fires at registration time
            # itself, always within the first period.
            offset = (1.0 - self._rng.random()) * self.period_seconds
        else:
            offset = self.period_seconds
        first = now + offset
        heapq.heappush(self._heap, (first, next(self._seq), user_id))
        return first

    def next_deadline(self) -> float | None:
        return self._heap[0][0] if self._heap else None

    def due(self, now: float) -> list[int]:
        """Pop every user due at ``now`` and reschedule them one period out.

        Returned in deadline order (seq breaks ties deterministically).
        """
        fired: list[int] = []
        while self._heap and self._heap[0][0] <= now + 1e-9:
            deadline, _, user_id = heapq.heappop(self._heap)
            fired.append(user_id)
            heapq.heappush(
                self._heap,
                (deadline + self.period_seconds, next(self._seq), user_id),
            )
        return fired
