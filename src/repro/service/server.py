""":class:`NotificationService`: the live ingest -> schedule -> deliver loop.

One service instance owns, per Section IV's deployment shape:

* an :class:`~repro.service.queues.IngestFrontier` of bounded per-user
  queues fed by :meth:`NotificationService.ingest` (which answers every
  offer with an explicit :class:`~repro.service.queues.IngestResult`);
* a :class:`~repro.service.ratelimit.TieredRateLimiter` gating admission
  at global / per-user / per-topic granularity;
* per-user :class:`~repro.runtime.loop.RoundLoop` instances fired by
  staggered :class:`~repro.service.timers.RoundTimers` -- the *same*
  selection machinery the batch experiments replay, now running live;
* :class:`~repro.service.sinks.GuardedSink` egress adapters (timeouts,
  jittered retries, circuit breakers);
* a :class:`~repro.service.degrade.DegradationController` that watches
  queue pressure and egress health and walks the overload ladder:
  rich-media level caps, then ingest deferral, then shedding -- and back
  down again as pressure clears.

The scheduler is a single asyncio task: it sleeps on the service clock
until the next round deadline, drains due users' queues into their
loops, runs the rounds, pushes deliveries through the sinks, and updates
the pressure controller.  All state mutation happens on the event loop
-- no locks, deterministic under the simulated clock.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.core.content import ContentItem
from repro.pubsub.broker import BreakerState, CircuitBreakerConfig
from repro.runtime.loop import RoundLoop
from repro.runtime.types import Delivery
from repro.service.clock import Clock, MonotonicClock
from repro.service.degrade import DegradationConfig, DegradationController
from repro.service.health import HealthSnapshot, ServiceStats
from repro.service.queues import (
    Admission,
    IngestFrontier,
    IngestResult,
    QueuedEvent,
)
from repro.service.ratelimit import RateLimitConfig, TieredRateLimiter
from repro.service.sinks import DeliverySink, GuardedSink, SinkPolicy
from repro.service.timers import RoundTimers


@dataclass(frozen=True)
class ServiceConfig:
    """Tuning for one service instance."""

    round_seconds: float = 60.0
    queue_bound: int = 32
    deferred_bound: int = 256
    #: Deferred events re-admitted per scheduler tick once pressure clears.
    readmit_per_tick: int = 32
    seed: int = 23
    rate: RateLimitConfig = field(default_factory=RateLimitConfig)
    degradation: DegradationConfig = field(default_factory=DegradationConfig)
    sink_policy: SinkPolicy = field(default_factory=SinkPolicy)
    breaker: CircuitBreakerConfig = field(default_factory=CircuitBreakerConfig)

    def __post_init__(self) -> None:
        if self.round_seconds <= 0:
            raise ValueError("round_seconds must be positive")
        if self.queue_bound < 1:
            raise ValueError("queue_bound must be >= 1")
        if self.deferred_bound < 0:
            raise ValueError("deferred_bound must be >= 0")
        if self.readmit_per_tick < 1:
            raise ValueError("readmit_per_tick must be >= 1")


class NotificationService:
    """The continuously running notification pipeline."""

    def __init__(
        self,
        loop_factory: Callable[[int], RoundLoop],
        user_ids: Sequence[int],
        config: ServiceConfig | None = None,
        clock: Clock | None = None,
    ) -> None:
        if not user_ids:
            raise ValueError("service needs at least one user")
        self.config = config or ServiceConfig()
        self.clock = clock or MonotonicClock()
        # Counters are bumped by the scheduler task, ingest callers and
        # egress tasks alike; all of them run on the one event loop and
        # never yield mid-update (RL705 discipline).
        self.stats = ServiceStats()  # richlint: guarded-by(event-loop)
        self.controller = DegradationController(self.config.degradation)
        self.frontier = IngestFrontier(self.config.queue_bound)
        self.limiter = TieredRateLimiter(self.config.rate, self.clock.now())
        self.timers = RoundTimers(
            self.config.round_seconds, seed=self.config.seed
        )
        self.sinks: list[GuardedSink] = []
        self._loop_factory = loop_factory
        self._loops: dict[int, RoundLoop] = {}
        self._user_ids = sorted(set(user_ids))
        #: Deferred buffer: events parked while the ladder is at DEFER.
        #: Written by ingest (append) and the scheduler (readmission
        #: drain); both run on the event loop without yielding between
        #: read and write.
        self._deferred: list[QueuedEvent] = []  # richlint: guarded-by(event-loop)
        #: item_id -> ingest time, for end-to-end latency + conservation.
        #: Written at admission and settled by egress tasks; every
        #: mutation is a single un-awaited dict op on the event loop.
        self._inflight: dict[int, float] = {}  # richlint: guarded-by(event-loop)
        #: In-flight egress batches; settled before :meth:`run` returns.
        self._delivery_tasks: list[asyncio.Task] = []
        self._stop_requested = False
        self._started = False
        for user_id in self._user_ids:
            self.frontier.register(user_id)

    # -- wiring ----------------------------------------------------------------

    def add_sink(
        self,
        sink: DeliverySink,
        name: str | None = None,
        policy: SinkPolicy | None = None,
        breaker: CircuitBreakerConfig | None = None,
    ) -> GuardedSink:
        """Register an egress sink behind timeout/retry/breaker guards."""
        index = len(self.sinks)
        guarded = GuardedSink(
            sink,
            clock=self.clock,
            rng=random.Random(self.config.seed * 1_000_003 + 97 * index + 41),
            policy=policy or self.config.sink_policy,
            breaker=breaker or self.config.breaker,
            name=name or f"sink{index}",
        )
        self.sinks.append(guarded)
        return guarded

    def loop_for(self, user_id: int) -> RoundLoop:
        loop = self._loops.get(user_id)
        if loop is None:
            loop = self._loop_factory(user_id)
            self._loops[user_id] = loop
        return loop

    # -- ingest ----------------------------------------------------------------

    async def ingest(self, item: ContentItem) -> IngestResult:
        """Offer one notification event; always answers explicitly.

        The admission pipeline: overload shedding (ladder at SHED) ->
        tiered rate limiting -> deferral (ladder at DEFER) -> the user's
        bounded queue.  A full queue is an explicit ``Overload`` result,
        never silent growth.

        The decision itself is synchronous (bounded queues consume O(1),
        token buckets refill lazily), so admission never yields: a burst
        of arrivals is decided in arrival order with no interleaving.
        """
        now = self.clock.now()
        self.stats.ingested += 1

        if self.controller.sheds_ingest:
            self.stats.shed_overload += 1
            return IngestResult(
                outcome=Admission.SHED_OVERLOAD,
                user_id=item.user_id,
                item_id=item.item_id,
                queue_depth=self.frontier.depth(item.user_id),
                detail="degradation ladder at SHED",
            )

        decision = self.limiter.allow(now, item.user_id, item.kind)
        if not decision.allowed:
            self.stats.shed_rate_limited += 1
            return IngestResult(
                outcome=Admission.SHED_RATE_LIMITED,
                user_id=item.user_id,
                item_id=item.item_id,
                queue_depth=self.frontier.depth(item.user_id),
                detail=f"rate tier {decision.tier}",
            )

        event = QueuedEvent(item=item, ingested_at=now)

        if self.controller.defers_ingest:
            if len(self._deferred) >= self.config.deferred_bound:
                self.stats.shed_overload += 1
                return IngestResult(
                    outcome=Admission.SHED_OVERLOAD,
                    user_id=item.user_id,
                    item_id=item.item_id,
                    queue_depth=self.frontier.depth(item.user_id),
                    detail="deferred buffer full",
                )
            self._deferred.append(event)
            self.stats.deferred_total += 1
            return IngestResult(
                outcome=Admission.DEFERRED,
                user_id=item.user_id,
                item_id=item.item_id,
                queue_depth=self.frontier.depth(item.user_id),
                detail="degradation ladder at DEFER",
            )

        return self._admit(event)

    def _admit(self, event: QueuedEvent) -> IngestResult:
        item = event.item
        if not self.frontier.offer(event):
            self.stats.shed_queue_full += 1
            return IngestResult(
                outcome=Admission.SHED_QUEUE_FULL,
                user_id=item.user_id,
                item_id=item.item_id,
                queue_depth=self.frontier.depth(item.user_id),
                detail=f"bound {self.config.queue_bound}",
            )
        self.stats.admitted += 1
        self._inflight[item.item_id] = event.ingested_at
        return IngestResult(
            outcome=Admission.ADMITTED,
            user_id=item.user_id,
            item_id=item.item_id,
            queue_depth=self.frontier.depth(item.user_id),
        )

    def _readmit_deferred(self) -> None:
        """Move deferred events back into queues once pressure allows."""
        if self.controller.defers_ingest or not self._deferred:
            return
        budget = min(self.config.readmit_per_tick, len(self._deferred))
        batch, self._deferred = (
            self._deferred[:budget],
            self._deferred[budget:],
        )
        for event in batch:
            self.stats.readmitted += 1
            # A full queue sheds the event here (counted by _admit); it is
            # no longer deferred_pending, so the ledger stays conserved.
            self._admit(event)

    # -- the scheduler loop ----------------------------------------------------

    def request_stop(self) -> None:
        """Ask the scheduler to exit at the next tick (live mode)."""
        self._stop_requested = True

    async def run(
        self,
        rounds: int | None = None,
        run_seconds: float | None = None,
    ) -> None:
        """Run the scheduler until the bound expires (or
        :meth:`request_stop`).

        ``rounds`` bounds the run to that many round periods -- with
        staggered timers every user fires exactly ``rounds`` times.
        Exactly one of ``rounds`` / ``run_seconds`` may be given;
        neither means run until stopped.
        """
        if rounds is not None and run_seconds is not None:
            raise ValueError("pass rounds or run_seconds, not both")
        if self._started:
            raise RuntimeError("service already ran; build a fresh instance")
        self._started = True
        start = self.clock.now()
        end: float | None = None
        if rounds is not None:
            if rounds < 1:
                raise ValueError("rounds must be >= 1")
            end = start + rounds * self.config.round_seconds
        elif run_seconds is not None:
            if run_seconds <= 0:
                raise ValueError("run_seconds must be positive")
            end = start + run_seconds

        for user_id in self._user_ids:
            self.timers.register(user_id, start)

        while not self._stop_requested:
            deadline = self.timers.next_deadline()
            if deadline is None:
                break
            if end is not None and deadline > end + 1e-9:
                break
            await self.clock.sleep(deadline - self.clock.now())
            now = self.clock.now()
            self.stats.ticks += 1
            self._update_pressure(now)
            self._readmit_deferred()
            for user_id in self.timers.due(now):
                self._fire_round(user_id, now)
            self._reap_delivery_tasks()
        # Round timers never wait on egress; settle what is still in
        # flight before reporting the run complete.
        if self._delivery_tasks:
            await asyncio.gather(*self._delivery_tasks)
            self._delivery_tasks.clear()

    def _fire_round(self, user_id: int, now: float) -> None:
        """Run one user's round; egress continues as a background task."""
        loop = self.loop_for(user_id)
        for event in self.frontier.drain(user_id):
            loop.enqueue(event.item)
        loop.level_cap = self.controller.level_cap()
        result = loop.run_round(now, self.config.round_seconds)
        self.stats.rounds_run += 1
        for dropped in result.dropped:
            self._settle_dead_letter(dropped.item.item_id, f"loop:{dropped.reason}")
        if result.deliveries:
            self._delivery_tasks.append(
                asyncio.ensure_future(self._push_batch(result.deliveries))
            )

    def _reap_delivery_tasks(self) -> None:
        still_running = [t for t in self._delivery_tasks if not t.done()]
        for task in self._delivery_tasks:
            if task.done():
                task.result()  # surface egress exceptions instead of dropping
        self._delivery_tasks = still_running

    async def _push_batch(self, deliveries: Sequence[Delivery]) -> None:
        await asyncio.gather(*(self._push(d) for d in deliveries))

    async def _push(self, delivery: Delivery) -> None:
        """Fan one delivery out to every sink; settle its accounting."""
        if self.sinks:
            outcomes = await asyncio.gather(
                *(sink.deliver(delivery) for sink in self.sinks)
            )
            confirmed = any(outcomes)
        else:
            confirmed = True  # sink-less service: selection is delivery
        item_id = delivery.item.item_id
        if confirmed:
            ingested_at = self._inflight.pop(item_id, None)
            latency = (
                self.clock.now() - ingested_at if ingested_at is not None else 0.0
            )
            self.stats.record_delivery(
                latency, delivery.size_bytes, delivery.utility
            )
        else:
            self._settle_dead_letter(item_id, "sink_exhausted")

    def _settle_dead_letter(self, item_id: int, reason: str) -> None:
        self._inflight.pop(item_id, None)
        self.stats.record_dead_letter(reason)

    def _update_pressure(self, now: float) -> None:
        window_peak = self.frontier.take_window_peak()
        loop_backlog = self.loop_backlog()
        occupancy = self.frontier.occupancy_of(window_peak + loop_backlog)
        open_breakers = sum(
            1 for sink in self.sinks if sink.breaker_state is BreakerState.OPEN
        )
        breaker_fraction = open_breakers / len(self.sinks) if self.sinks else 0.0
        self.controller.update(now, occupancy, breaker_fraction)

    # -- observability ---------------------------------------------------------

    def loop_backlog(self) -> int:
        """Items sitting in round loops (incoming + scheduling queues)."""
        return sum(loop.pending_items for loop in self._loops.values())

    @property
    def deferred_pending(self) -> int:
        return len(self._deferred)

    def accounting(self) -> dict:
        """The conservation ledger; ``error`` must be 0 at rest."""
        pending = self.frontier.total_depth() + self.loop_backlog()
        stats = self.stats
        accounted = (
            stats.delivered
            + stats.shed
            + stats.dead_lettered
            + self.deferred_pending
            + pending
        )
        return {
            "ingested": stats.ingested,
            "delivered": stats.delivered,
            "shed": stats.shed,
            "shed_queue_full": stats.shed_queue_full,
            "shed_rate_limited": stats.shed_rate_limited,
            "shed_overload": stats.shed_overload,
            "deferred_total": stats.deferred_total,
            "deferred_pending": self.deferred_pending,
            "readmitted": stats.readmitted,
            "dead_lettered": stats.dead_lettered,
            "dead_letter_reasons": dict(stats.dead_letter_reasons),
            "pending": pending,
            "error": stats.ingested - accounted,
        }

    def conservation_error(self) -> int:
        return int(self.accounting()["error"])

    def health(self) -> HealthSnapshot:
        return HealthSnapshot(
            time=self.clock.now(),
            pressure_level=self.controller.level,
            pressure=self.controller.pressure,
            queue_depth=self.frontier.total_depth(),
            queue_high_water=self.frontier.high_water(),
            deferred_pending=self.deferred_pending,
            loop_backlog=self.loop_backlog(),
            breaker_states=tuple(
                sink.breaker_state.value for sink in self.sinks
            ),
            conservation_error=self.conservation_error(),
        )
