"""Transfer energy model after Balasubramanian et al. (IMC 2009).

The paper prices notification downloads with "the energy model from [9]"
(N. Balasubramanian, A. Balasubramanian, A. Venkataramani, *Energy
consumption in mobile phones: a measurement study and implications for
network applications*).  That study decomposes a transfer's energy into

* **ramp energy** -- promoting the radio to the high-power state;
* **transfer energy** -- proportional to the bytes moved;
* **tail energy** -- the radio lingering in high-power state after the
  transfer completes (the dominant 3G cost for small transfers).

We adopt the study's measured linear fits (energy in joules for a download
of ``x`` kilobytes):

* 3G:   ``E(x) = 0.025 * x + 3.5``   (3.5 J of ramp+tail overhead)
* GSM:  ``E(x) = 0.036 * x + 1.7``
* WiFi: ``E(x) = 0.007 * x + 5.9``   (5.9 J of scan+associate overhead)

Crucially, the fixed overhead is paid *per communication burst*, not per
item: back-to-back downloads within one burst share a single ramp/tail.
RichNote's round-based batch delivery exploits exactly this, so the model
exposes both per-item and per-batch estimates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.sim.network import NetworkState


@dataclass(frozen=True)
class RadioProfile:
    """Linear energy fit for one radio: ``E(x KB) = per_kb * x + overhead``."""

    per_kb_joules: float
    overhead_joules: float

    def __post_init__(self) -> None:
        if self.per_kb_joules < 0 or self.overhead_joules < 0:
            raise ValueError("energy coefficients must be >= 0")

    def transfer_energy(self, size_bytes: float) -> float:
        """Energy for one isolated transfer of ``size_bytes``."""
        if size_bytes < 0:
            raise ValueError("size must be >= 0")
        if size_bytes == 0:
            return 0.0
        return self.per_kb_joules * (size_bytes / 1024.0) + self.overhead_joules


#: Measured fits from Balasubramanian et al., Table/Fig. of Section 3.
THREEG_PROFILE = RadioProfile(per_kb_joules=0.025, overhead_joules=3.5)
GSM_PROFILE = RadioProfile(per_kb_joules=0.036, overhead_joules=1.7)
WIFI_PROFILE = RadioProfile(per_kb_joules=0.007, overhead_joules=5.9)


class TransferEnergyModel:
    """Maps (network state, bytes) -> joules, with burst amortization.

    Parameters
    ----------
    cell_profile / wifi_profile:
        Radio fits; cellular defaults to the 3G fit (Spotify-era devices).
    """

    def __init__(
        self,
        cell_profile: RadioProfile = THREEG_PROFILE,
        wifi_profile: RadioProfile = WIFI_PROFILE,
    ) -> None:
        self._profiles = {
            NetworkState.CELL: cell_profile,
            NetworkState.WIFI: wifi_profile,
        }

    def profile(self, state: NetworkState) -> RadioProfile:
        if state is NetworkState.OFF:
            raise ValueError("no transfers are possible while OFF")
        return self._profiles[state]

    def item_energy(self, state: NetworkState, size_bytes: float) -> float:
        """``rho(i, j)``: energy of one isolated download (full overhead)."""
        return self.profile(state).transfer_energy(size_bytes)

    def batch_energy(self, state: NetworkState, sizes_bytes: Sequence[float]) -> float:
        """Energy of a burst of downloads sharing a single ramp/tail.

        ``E = per_kb * total_KB + overhead`` -- the delivery queue drains in
        one burst per round, so the overhead is amortized across the batch.
        """
        total = 0.0
        for size in sizes_bytes:
            if size < 0:
                raise ValueError("size must be >= 0")
            total += size
        if total == 0:
            return 0.0
        profile = self.profile(state)
        return profile.per_kb_joules * (total / 1024.0) + profile.overhead_joules

    def marginal_energy(self, state: NetworkState, size_bytes: float) -> float:
        """Per-byte marginal cost inside an ongoing burst (no overhead)."""
        if size_bytes < 0:
            raise ValueError("size must be >= 0")
        return self.profile(state).per_kb_joules * (size_bytes / 1024.0)

    def estimate_for_selection(
        self, state: NetworkState, size_bytes: float, expected_batch: int = 10
    ) -> float:
        """Estimated ``rho(i, j)`` used by the scheduler's MCKP.

        At selection time the batch composition is unknown, so the fixed
        overhead is amortized over an ``expected_batch`` of deliveries.
        This keeps the estimate additive across items (a requirement of the
        knapsack formulation) while staying close to the realized batched
        cost.
        """
        if expected_batch < 1:
            raise ValueError("expected batch must be >= 1")
        if size_bytes == 0:
            return 0.0
        profile = self.profile(state)
        return (
            profile.per_kb_joules * (size_bytes / 1024.0)
            + profile.overhead_joules / expected_batch
        )
