"""Markov-chain connectivity model: WIFI / CELL / OFF.

Section V-D3 simulates network conditions "by using a Markov transition
model (as given in [6]) among three states, namely WIFI, CELL and OFF ...
We use 50% probability to remain in the current network condition and equal
probability of transiting to cell or wifi when off."

The chain transitions once per round.  Each state carries a nominal
bandwidth so devices can bound the bytes deliverable within a round, and a
radio type so the energy model can price transfers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from enum import Enum


class NetworkState(str, Enum):
    WIFI = "wifi"
    CELL = "cell"
    OFF = "off"


#: The paper's transition matrix: 0.5 self-loop, remainder split evenly.
DEFAULT_TRANSITIONS: dict[NetworkState, dict[NetworkState, float]] = {
    NetworkState.WIFI: {
        NetworkState.WIFI: 0.5,
        NetworkState.CELL: 0.25,
        NetworkState.OFF: 0.25,
    },
    NetworkState.CELL: {
        NetworkState.WIFI: 0.25,
        NetworkState.CELL: 0.5,
        NetworkState.OFF: 0.25,
    },
    NetworkState.OFF: {
        NetworkState.WIFI: 0.25,
        NetworkState.CELL: 0.25,
        NetworkState.OFF: 0.5,
    },
}

#: Nominal downlink bandwidth per state (bytes per second).
DEFAULT_BANDWIDTH_BPS: dict[NetworkState, float] = {
    NetworkState.WIFI: 5_000_000 / 8,  # 5 Mbps
    NetworkState.CELL: 1_000_000 / 8,  # 1 Mbps
    NetworkState.OFF: 0.0,
}


def _validate_transitions(
    transitions: dict[NetworkState, dict[NetworkState, float]]
) -> None:
    for state in NetworkState:
        if state not in transitions:
            raise ValueError(f"missing transition row for {state}")
        row = transitions[state]
        total = sum(row.values())
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"row for {state} sums to {total}, expected 1")
        if any(p < 0 for p in row.values()):
            raise ValueError(f"negative probability in row for {state}")


@dataclass
class MarkovNetworkModel:
    """Per-user connectivity evolving as a Markov chain, one step per round.

    Parameters
    ----------
    transitions:
        Row-stochastic transition matrix; defaults to the paper's.
    bandwidth_bps:
        Bytes-per-second capacity per state.
    initial_state:
        Starting state (CELL by default, matching a mobile user on the go).
    rng:
        Dedicated random stream so connectivity is reproducible
        independently of workload randomness.
    """

    transitions: dict[NetworkState, dict[NetworkState, float]] = field(
        default_factory=lambda: DEFAULT_TRANSITIONS
    )
    bandwidth_bps: dict[NetworkState, float] = field(
        default_factory=lambda: dict(DEFAULT_BANDWIDTH_BPS)
    )
    initial_state: NetworkState = NetworkState.CELL
    rng: random.Random = field(default_factory=random.Random)
    _state: NetworkState = field(init=False)

    def __post_init__(self) -> None:
        _validate_transitions(self.transitions)
        for state in NetworkState:
            if state not in self.bandwidth_bps:
                raise ValueError(f"missing bandwidth for {state}")
            if self.bandwidth_bps[state] < 0:
                raise ValueError(
                    f"bandwidth for {state} must be >= 0, "
                    f"got {self.bandwidth_bps[state]}"
                )
        self._state = self.initial_state

    @property
    def state(self) -> NetworkState:
        return self._state

    @property
    def connected(self) -> bool:
        return self._state is not NetworkState.OFF

    @property
    def bandwidth(self) -> float:
        """Current downlink capacity in bytes/second (0 when OFF)."""
        return self.bandwidth_bps[self._state]

    def step(self) -> NetworkState:
        """Advance the chain one round and return the new state."""
        row = self.transitions[self._state]
        draw = self.rng.random()
        cumulative = 0.0
        for state, probability in row.items():
            cumulative += probability
            if draw < cumulative:
                self._state = state
                return self._state
        # Guard against floating-point shortfall in the row sum.
        self._state = list(row)[-1]
        return self._state

    def capacity_per_round(self, round_seconds: float) -> float:
        """Upper bound on bytes deliverable this round at current state."""
        if round_seconds < 0:
            raise ValueError("round duration must be >= 0")
        return self.bandwidth * round_seconds


@dataclass
class CellularOnlyNetwork:
    """Degenerate model for the cellular-only experiments (Fig. 5b).

    Always CELL: the device is sporadically connected through a budgeted
    data plan, as in the main experiment setup (Section V-C), with the data
    budget -- not connectivity -- as the binding constraint.
    """

    bandwidth_cell_bps: float = DEFAULT_BANDWIDTH_BPS[NetworkState.CELL]

    @property
    def state(self) -> NetworkState:
        return NetworkState.CELL

    @property
    def connected(self) -> bool:
        return True

    @property
    def bandwidth(self) -> float:
        return self.bandwidth_cell_bps

    def step(self) -> NetworkState:
        return NetworkState.CELL

    def capacity_per_round(self, round_seconds: float) -> float:
        if round_seconds < 0:
            raise ValueError("round duration must be >= 0")
        return self.bandwidth * round_seconds


def stationary_distribution(
    transitions: dict[NetworkState, dict[NetworkState, float]] | None = None,
    iterations: int = 200,
) -> dict[NetworkState, float]:
    """Stationary distribution of the chain by power iteration.

    Used by tests and by workload sizing heuristics (expected fraction of
    rounds with connectivity).  The default chain is doubly stochastic, so
    the answer is uniform (1/3 each).
    """
    transitions = transitions or DEFAULT_TRANSITIONS
    _validate_transitions(transitions)
    states = list(NetworkState)
    dist = {state: 1.0 / len(states) for state in states}
    for _ in range(iterations):
        nxt = {state: 0.0 for state in states}
        for src in states:
            for dst, probability in transitions[src].items():
                nxt[dst] += dist[src] * probability
        dist = nxt
    return dist


@dataclass
class SporadicCellularNetwork:
    """Two-state CELL/OFF chain: a mobile user 'sporadically connected ...
    through a cellular connection' (Section V-C) without WiFi.

    Parameterized by the stay probabilities of each state; the stationary
    connected fraction is ``(1-p_stay_off) / (2 - p_stay_connected -
    p_stay_off)``.
    """

    p_stay_connected: float = 0.75
    p_stay_off: float = 0.5
    bandwidth_cell_bps: float = DEFAULT_BANDWIDTH_BPS[NetworkState.CELL]
    initial_state: NetworkState = NetworkState.CELL
    rng: random.Random = field(default_factory=random.Random)
    _state: NetworkState = field(init=False)

    def __post_init__(self) -> None:
        for name, p in (
            ("p_stay_connected", self.p_stay_connected),
            ("p_stay_off", self.p_stay_off),
        ):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        if self.initial_state is NetworkState.WIFI:
            raise ValueError("sporadic cellular model has no WIFI state")
        self._state = self.initial_state

    @property
    def state(self) -> NetworkState:
        return self._state

    @property
    def connected(self) -> bool:
        return self._state is NetworkState.CELL

    @property
    def bandwidth(self) -> float:
        return self.bandwidth_cell_bps if self.connected else 0.0

    def step(self) -> NetworkState:
        stay = (
            self.p_stay_connected if self.connected else self.p_stay_off
        )
        if self.rng.random() >= stay:
            self._state = (
                NetworkState.OFF if self.connected else NetworkState.CELL
            )
        return self._state

    def capacity_per_round(self, round_seconds: float) -> float:
        if round_seconds < 0:
            raise ValueError("round duration must be >= 0")
        return self.bandwidth * round_seconds

    def expected_connected_fraction(self) -> float:
        """Stationary fraction of rounds spent connected."""
        denominator = 2.0 - self.p_stay_connected - self.p_stay_off
        if denominator == 0.0:
            return 1.0 if self.initial_state is NetworkState.CELL else 0.0
        return (1.0 - self.p_stay_off) / denominator


class TraceConnectivity:
    """Replays a recorded per-round connectivity trace.

    Useful for deterministic tests and for feeding measured connectivity
    logs into the simulator.  ``step()`` consumes one state per round; the
    final state persists once the trace is exhausted.
    """

    def __init__(
        self,
        states: "list[NetworkState]",
        bandwidth_bps: "dict[NetworkState, float] | None" = None,
    ) -> None:
        if not states:
            raise ValueError(
                "connectivity trace must contain at least one state "
                "(got an empty state list)"
            )
        self._states = list(states)
        for position, state in enumerate(self._states):
            if not isinstance(state, NetworkState):
                raise ValueError(
                    f"trace entry {position} must be a NetworkState, "
                    f"got {state!r}"
                )
        self._bandwidth = dict(bandwidth_bps or DEFAULT_BANDWIDTH_BPS)
        for state in NetworkState:
            if state not in self._bandwidth:
                raise ValueError(f"missing bandwidth for {state}")
            if self._bandwidth[state] < 0:
                raise ValueError(
                    f"bandwidth for {state} must be >= 0, "
                    f"got {self._bandwidth[state]}"
                )
        self._index = -1  # step() moves to 0 on the first round

    @property
    def state(self) -> NetworkState:
        return self._states[max(0, min(self._index, len(self._states) - 1))]

    @property
    def connected(self) -> bool:
        return self.state is not NetworkState.OFF

    @property
    def bandwidth(self) -> float:
        return self._bandwidth[self.state]

    def step(self) -> NetworkState:
        if self._index < len(self._states) - 1:
            self._index += 1
        return self.state

    def capacity_per_round(self, round_seconds: float) -> float:
        if round_seconds < 0:
            raise ValueError("round duration must be >= 0")
        return self.bandwidth * round_seconds
