"""Seeded fault injection for the delivery path.

The paper's evaluation assumes transfers either complete within a round or
are held for a later one; real mobile delivery fails *mid-flight*: radios
drop out halfway through a preview, transfers stall past their deadline,
downloads arrive corrupted, push channels reject messages.  This module
models those outcomes so the delivery engine
(:class:`repro.core.delivery.DeliveryEngine`) can exercise retry, refund
and dead-letter paths under a controlled, reproducible failure surface.

Composition with connectivity: faults are drawn *per transfer attempt* and
are independent of the round-level connectivity model, so any
:class:`~repro.sim.device.ConnectivityModel` (Markov, trace-driven,
cellular-only) can sit underneath.  :class:`FlakyConnectivity` additionally
wraps a connectivity model with seeded whole-round outages for chaos runs.

Reproducibility contract: every random draw flows through an explicit
``random.Random`` handed in by the caller -- nothing in this module touches
the module-level ``random`` state.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from enum import Enum
from typing import Protocol

from repro.sim.network import NetworkState


class FaultKind(str, Enum):
    """How a delivery attempt can fail."""

    #: The radio dropped mid-transfer; a prefix of the bytes was spent.
    DISCONNECT = "disconnect"
    #: The transfer stalled past its deadline; nothing usable arrived.
    TIMEOUT = "timeout"
    #: All bytes transferred but the payload failed validation.
    CORRUPT = "corrupt"
    #: The push channel refused the message before any transfer started.
    REJECT = "reject"


@dataclass(frozen=True)
class FaultOutcome:
    """One injected failure.

    ``fraction_completed`` is the fraction of the attempt's bytes actually
    spent over the air before the failure -- those bytes are charged to the
    user (wasted); the remainder is refunded to the data budget.
    """

    kind: FaultKind
    fraction_completed: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.fraction_completed <= 1.0:
            raise ValueError(
                f"fraction_completed must be in [0, 1], "
                f"got {self.fraction_completed}"
            )


@dataclass(frozen=True)
class TransferContext:
    """What a fault policy may condition on when judging an attempt."""

    item_id: int
    level: int
    size_bytes: int
    attempt: int  # 1-based attempt number for this item
    time: float
    network_state: NetworkState


class FaultPolicy(Protocol):
    """Decides whether a transfer attempt fails and how.

    Implementations must be deterministic given (context, rng state): all
    randomness must come from the ``rng`` argument.
    """

    def sample(
        self, context: TransferContext, rng: random.Random
    ) -> FaultOutcome | None: ...  # pragma: no cover - protocol


@dataclass(frozen=True)
class FaultConfig:
    """Per-attempt fault probabilities for :class:`RandomFaultPolicy`.

    Probabilities are mutually exclusive per attempt (at most one fault
    fires) and must sum to at most 1.  Disconnects spend a uniformly drawn
    fraction of the bytes in ``[disconnect_fraction_min,
    disconnect_fraction_max]``; corrupt downloads spend all bytes; timeouts
    and rejections spend none.
    """

    p_disconnect: float = 0.0
    p_timeout: float = 0.0
    p_corrupt: float = 0.0
    p_reject: float = 0.0
    disconnect_fraction_min: float = 0.1
    disconnect_fraction_max: float = 0.9
    #: Risk multiplier applied to all probabilities on a CELL radio
    #: (cellular links drop more often than WiFi); 1.0 = no difference.
    cell_multiplier: float = 1.0

    def __post_init__(self) -> None:
        for name in ("p_disconnect", "p_timeout", "p_corrupt", "p_reject"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        if self.total_probability > 1.0 + 1e-12:
            raise ValueError(
                f"fault probabilities sum to {self.total_probability:g}, "
                "expected <= 1"
            )
        if not 0.0 <= self.disconnect_fraction_min <= self.disconnect_fraction_max <= 1.0:
            raise ValueError(
                "need 0 <= disconnect_fraction_min <= "
                "disconnect_fraction_max <= 1"
            )
        if self.cell_multiplier < 0:
            raise ValueError("cell_multiplier must be >= 0")

    @property
    def total_probability(self) -> float:
        return self.p_disconnect + self.p_timeout + self.p_corrupt + self.p_reject

    @property
    def enabled(self) -> bool:
        return self.total_probability > 0.0


#: Convenience config that injects nothing (delivery reduces to the
#: fault-free fast path, byte for byte).
NO_FAULTS = FaultConfig()


class RandomFaultPolicy:
    """Bernoulli fault injection driven by a :class:`FaultConfig`."""

    def __init__(self, config: FaultConfig) -> None:
        self.config = config

    def sample(
        self, context: TransferContext, rng: random.Random
    ) -> FaultOutcome | None:
        config = self.config
        scale = (
            config.cell_multiplier
            if context.network_state is NetworkState.CELL
            else 1.0
        )
        draw = rng.random()
        cumulative = 0.0
        for kind, probability in (
            (FaultKind.DISCONNECT, config.p_disconnect),
            (FaultKind.TIMEOUT, config.p_timeout),
            (FaultKind.CORRUPT, config.p_corrupt),
            (FaultKind.REJECT, config.p_reject),
        ):
            cumulative += min(1.0, probability * scale)
            if draw < cumulative:
                if kind is FaultKind.DISCONNECT:
                    fraction = rng.uniform(
                        config.disconnect_fraction_min,
                        config.disconnect_fraction_max,
                    )
                elif kind is FaultKind.CORRUPT:
                    fraction = 1.0
                else:
                    fraction = 0.0
                return FaultOutcome(kind=kind, fraction_completed=fraction)
        return None


class ScriptedFaultPolicy:
    """Replays a fixed outcome sequence -- deterministic tests and repros.

    Each delivery attempt consumes the next entry (``None`` = success);
    once the script is exhausted every further attempt succeeds.
    """

    def __init__(self, outcomes: list[FaultOutcome | None]) -> None:
        self._outcomes = list(outcomes)
        self._cursor = 0

    def sample(
        self, context: TransferContext, rng: random.Random
    ) -> FaultOutcome | None:
        del context, rng
        if self._cursor >= len(self._outcomes):
            return None
        outcome = self._outcomes[self._cursor]
        self._cursor += 1
        return outcome


@dataclass(frozen=True)
class CellOutage:
    """One correlated outage window: a whole cell dark for some rounds.

    Rounds are 0-based indices of the connectivity model's ``step()``
    sequence (the first round of a run is round 0), so the schedule is
    deterministic and independent of wall/simulated time.
    """

    cell: int
    first_round: int
    rounds: int

    def __post_init__(self) -> None:
        if self.first_round < 0:
            raise ValueError("first_round must be >= 0")
        if self.rounds < 1:
            raise ValueError("rounds must be >= 1")

    def active(self, round_index: int) -> bool:
        return self.first_round <= round_index < self.first_round + self.rounds


@dataclass(frozen=True)
class FlashCrowd:
    """A flash-crowd window on one cell: heavy arrivals for some rounds.

    The fault layer only describes *when and where* the crowd is active;
    the experiment harness decides what "heavy" means (extra arrivals per
    crowd user per round).  Combined with
    :class:`repro.pubsub.capacity.SharedCellCapacity` this is the chaos
    scenario the per-user fault model cannot express: one cohort's burst
    degrades unrelated bystanders on the same tower.
    """

    cell: int
    first_round: int
    rounds: int
    extra_items_per_round: int = 4

    def __post_init__(self) -> None:
        if self.first_round < 0:
            raise ValueError("first_round must be >= 0")
        if self.rounds < 1:
            raise ValueError("rounds must be >= 1")
        if self.extra_items_per_round < 1:
            raise ValueError("extra_items_per_round must be >= 1")

    def active(self, round_index: int) -> bool:
        return self.first_round <= round_index < self.first_round + self.rounds


class CellOutageSchedule:
    """A shared, deterministic schedule of :class:`CellOutage` windows."""

    def __init__(self, outages: list[CellOutage]) -> None:
        self.outages = tuple(outages)

    def down(self, cell: int, round_index: int) -> bool:
        return any(
            outage.cell == cell and outage.active(round_index)
            for outage in self.outages
        )


class CellCorrelatedConnectivity:
    """Wrap a connectivity model with a *shared* per-cell outage schedule.

    Unlike :class:`FlakyConnectivity` (independent per-user coin flips),
    every user whose wrapper points at the same schedule and cell goes
    dark together -- the correlated tower-outage failure mode.  The
    wrapper counts its own ``step()`` calls, so all users must be stepped
    once per round (which the round loop guarantees).
    """

    def __init__(self, base, cell: int, schedule: CellOutageSchedule) -> None:
        self.base = base
        self.cell = cell
        self.schedule = schedule
        self._round = -1
        self._forced_off = schedule.down(cell, 0)

    @property
    def state(self) -> NetworkState:
        return NetworkState.OFF if self._forced_off else self.base.state

    @property
    def connected(self) -> bool:
        return (not self._forced_off) and self.base.connected

    @property
    def bandwidth(self) -> float:
        return 0.0 if self._forced_off else self.base.bandwidth

    def step(self) -> NetworkState:
        self.base.step()
        self._round += 1
        self._forced_off = self.schedule.down(self.cell, self._round)
        return self.state

    def capacity_per_round(self, round_seconds: float) -> float:
        if round_seconds < 0:
            raise ValueError("round duration must be >= 0")
        if self._forced_off:
            return 0.0
        return self.base.capacity_per_round(round_seconds)


class FlakyConnectivity:
    """Wrap any connectivity model with seeded whole-round outages.

    With probability ``p_outage`` a round that the base model reports as
    connected is forced OFF -- chaos at the connectivity layer, composable
    with :class:`~repro.sim.network.MarkovNetworkModel`,
    :class:`~repro.sim.network.TraceConnectivity`, or any other model
    satisfying :class:`~repro.sim.device.ConnectivityModel`.
    """

    def __init__(self, base, p_outage: float, rng: random.Random) -> None:
        if not 0.0 <= p_outage <= 1.0:
            raise ValueError(f"p_outage must be in [0, 1], got {p_outage}")
        self.base = base
        self.p_outage = p_outage
        self.rng = rng
        self._forced_off = False

    @property
    def state(self) -> NetworkState:
        return NetworkState.OFF if self._forced_off else self.base.state

    @property
    def connected(self) -> bool:
        return (not self._forced_off) and self.base.connected

    @property
    def bandwidth(self) -> float:
        return 0.0 if self._forced_off else self.base.bandwidth

    def step(self) -> NetworkState:
        self.base.step()
        self._forced_off = (
            self.base.connected and self.rng.random() < self.p_outage
        )
        return self.state

    def capacity_per_round(self, round_seconds: float) -> float:
        if round_seconds < 0:
            raise ValueError("round duration must be >= 0")
        return 0.0 if self._forced_off else self.base.capacity_per_round(
            round_seconds
        )
