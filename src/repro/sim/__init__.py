"""Discrete-event simulation, connectivity, battery and energy models."""

from repro.sim.engine import EventHandle, Simulator
from repro.sim.network import (
    CellularOnlyNetwork,
    MarkovNetworkModel,
    NetworkState,
    SporadicCellularNetwork,
    TraceConnectivity,
    stationary_distribution,
)
from repro.sim.energy import (
    GSM_PROFILE,
    THREEG_PROFILE,
    WIFI_PROFILE,
    RadioProfile,
    TransferEnergyModel,
)
from repro.sim.battery import BatterySample, BatteryTrace, DiurnalBatteryModel
from repro.sim.device import DeviceStats, MobileDevice
from repro.sim.faults import (
    NO_FAULTS,
    FaultConfig,
    FaultKind,
    FaultOutcome,
    FaultPolicy,
    FlakyConnectivity,
    RandomFaultPolicy,
    ScriptedFaultPolicy,
    TransferContext,
)
