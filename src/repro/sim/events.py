"""Typed simulation events used by the trace replay harness.

The event classes are plain records; the :class:`repro.sim.engine.Simulator`
works with callbacks, and the experiment runner wraps these records into
callbacks.  Keeping them as data makes logs and tests introspectable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.content import ContentItem


@dataclass(frozen=True)
class NotificationArrival:
    """A content item entering the broker's incoming queue."""

    time: float
    item: ContentItem


@dataclass(frozen=True)
class RoundTick:
    """Start of a scheduling round ``t``."""

    time: float
    round_index: int


@dataclass(frozen=True)
class DeliveryCompleted:
    """A presentation successfully downloaded by the device."""

    time: float
    user_id: int
    item_id: int
    level: int
    size_bytes: int
    energy_joules: float
    utility: float


@dataclass(frozen=True)
class DeliveryDropped:
    """An item expired or was evicted without delivery (diagnostics)."""

    time: float
    user_id: int
    item_id: int
    reason: str
