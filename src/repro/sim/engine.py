"""Discrete-event simulation engine.

The paper's evaluation runs on "a custom event-based simulator written in
Java" [6].  This module is the Python equivalent: a classic event-heap
simulator with a monotonically advancing clock, deterministic tie-breaking
(FIFO among simultaneous events) and support for both one-shot events and
periodic processes (used for the round-based scheduler).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

EventCallback = Callable[["Simulator"], None]


@dataclass(order=True)
class _ScheduledEvent:
    time: float
    sequence: int
    callback: EventCallback = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Opaque handle to a scheduled event, allowing cancellation."""

    __slots__ = ("_event",)

    def __init__(self, event: _ScheduledEvent):
        self._event = event

    def cancel(self) -> None:
        """Prevent the event from firing; no-op if already fired."""
        self._event.cancelled = True

    @property
    def time(self) -> float:
        return self._event.time

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled


class Simulator:
    """Event-heap simulator with a float-seconds clock starting at 0."""

    def __init__(self) -> None:
        self._heap: list[_ScheduledEvent] = []
        self._sequence = itertools.count()
        self._now = 0.0
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events that have fired so far."""
        return self._processed

    def schedule_at(self, time: float, callback: EventCallback) -> EventHandle:
        """Schedule ``callback(sim)`` at absolute time ``time``.

        Scheduling in the past raises ``ValueError`` -- the clock never
        rewinds.
        """
        if time < self._now:
            raise ValueError(
                f"cannot schedule at {time} before current time {self._now}"
            )
        event = _ScheduledEvent(time, next(self._sequence), callback)
        heapq.heappush(self._heap, event)
        return EventHandle(event)

    def schedule_after(self, delay: float, callback: EventCallback) -> EventHandle:
        """Schedule ``callback(sim)`` at ``now + delay`` (delay >= 0)."""
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        return self.schedule_at(self._now + delay, callback)

    def schedule_periodic(
        self,
        period: float,
        callback: EventCallback,
        start: float | None = None,
        until: float | None = None,
    ) -> None:
        """Fire ``callback`` every ``period`` seconds starting at ``start``.

        The next occurrence is scheduled lazily after each firing, so the
        callback may consult simulator state between rounds.  ``until`` is
        an exclusive stop time.
        """
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        first = self._now if start is None else start

        def fire(sim: Simulator) -> None:
            callback(sim)
            next_time = sim.now + period
            if until is None or next_time < until:
                sim.schedule_at(next_time, fire)

        self.schedule_at(first, fire)

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Process events in time order.

        Stops when the heap empties, when the next event is at or beyond
        ``until`` (the clock is then advanced to ``until``), or after
        ``max_events`` events (a runaway guard for tests).
        """
        fired = 0
        while self._heap:
            if max_events is not None and fired >= max_events:
                return
            event = self._heap[0]
            if until is not None and event.time >= until:
                self._now = until
                return
            heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            event.callback(self)
            self._processed += 1
            fired += 1
        if until is not None and self._now < until:
            self._now = until

    def peek_next_time(self) -> float | None:
        """Time of the earliest pending (non-cancelled) event, if any."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None
