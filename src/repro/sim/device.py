"""Mobile device model: connectivity + battery + energy accounting.

The scheduler (broker side) needs, per user and per round:

* whether the device is reachable and at what bandwidth (network model);
* the battery-aware energy replenishment ``e(t)`` (battery trace);
* an estimate of the energy a candidate download would cost
  (:class:`repro.sim.energy.TransferEnergyModel`), and the realized energy
  once a batch is delivered.

:class:`MobileDevice` bundles these and records per-device delivery
statistics used by the evaluation metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, Sequence

from repro.sim.battery import BatteryTrace
from repro.sim.energy import TransferEnergyModel
from repro.sim.network import NetworkState


class ConnectivityModel(Protocol):
    """Interface shared by Markov and cellular-only network models."""

    @property
    def state(self) -> NetworkState: ...  # pragma: no cover - protocol

    @property
    def connected(self) -> bool: ...  # pragma: no cover - protocol

    @property
    def bandwidth(self) -> float: ...  # pragma: no cover - protocol

    def step(self) -> NetworkState: ...  # pragma: no cover - protocol

    def capacity_per_round(self, round_seconds: float) -> float: ...  # pragma: no cover


@dataclass
class DeviceStats:
    """Cumulative per-device delivery accounting."""

    bytes_downloaded: float = 0.0
    energy_spent_joules: float = 0.0
    notifications_received: int = 0
    rounds_connected: int = 0
    rounds_total: int = 0


@dataclass
class MobileDevice:
    """One user's device as seen by the broker.

    Parameters
    ----------
    user_id:
        The owning user.
    network:
        Connectivity model stepped once per round.
    battery:
        Battery trace driving energy-budget replenishment.
    energy_model:
        Transfer pricing shared across devices.
    expected_batch:
        Amortization factor for selection-time energy estimates.
    """

    user_id: int
    network: ConnectivityModel
    battery: BatteryTrace
    energy_model: TransferEnergyModel = field(default_factory=TransferEnergyModel)
    expected_batch: int = 10
    stats: DeviceStats = field(default_factory=DeviceStats)

    def begin_round(self, now: float, round_seconds: float) -> None:
        """Advance connectivity one Markov step and update counters."""
        del now, round_seconds  # present for interface symmetry/logging hooks
        self.network.step()
        self.stats.rounds_total += 1
        if self.network.connected:
            self.stats.rounds_connected += 1

    @property
    def connected(self) -> bool:
        return self.network.connected

    def round_capacity_bytes(self, round_seconds: float) -> float:
        """Bytes deliverable this round given current connectivity."""
        return self.network.capacity_per_round(round_seconds)

    def replenishment(self, now: float, kappa_joules: float) -> float:
        """Battery-aware ``e(t)`` for the energy budget this round."""
        return self.battery.replenishment(now, kappa_joules)

    def estimate_energy(self, size_bytes: float) -> float:
        """Selection-time estimate of ``rho(i, j)`` at current connectivity.

        Returns ``inf`` when the device is OFF: no presentation is
        affordable, which makes the scheduler hold items in the queue.
        """
        if not self.network.connected:
            return float("inf")
        return self.energy_model.estimate_for_selection(
            self.network.state, size_bytes, expected_batch=self.expected_batch
        )

    def download_batch(self, sizes_bytes: Sequence[float]) -> float:
        """Deliver a batch; returns realized energy and updates stats.

        Raises if called while disconnected -- the scheduler must gate
        deliveries on connectivity.
        """
        if not self.network.connected:
            raise RuntimeError(
                f"device of user {self.user_id} is OFF; cannot download"
            )
        energy = self.energy_model.batch_energy(self.network.state, sizes_bytes)
        total_bytes = float(sum(sizes_bytes))
        self.stats.bytes_downloaded += total_bytes
        self.stats.energy_spent_joules += energy
        self.stats.notifications_received += len(
            [size for size in sizes_bytes if size > 0]
        )
        return energy

    def cancel_transfer(
        self,
        size_bytes: float,
        fraction_completed: float,
        energy_share_joules: float,
    ) -> None:
        """Correct stats for a transfer that failed after being accounted.

        :meth:`download_batch` charges the whole batch up front; when the
        delivery engine later learns an attempt failed at
        ``fraction_completed`` of its bytes, the un-transferred remainder
        (bytes and the proportional energy share) is backed out, and the
        notification is no longer counted as received.

        Raises
        ------
        ValueError
            If the correction would drive a stats counter negative, i.e.
            the caller is cancelling more than was ever charged.
        """
        if not 0.0 <= fraction_completed <= 1.0:
            raise ValueError(
                f"fraction_completed must be in [0, 1], got {fraction_completed}"
            )
        if size_bytes < 0 or energy_share_joules < 0:
            raise ValueError("cannot cancel a negative transfer")
        unspent_bytes = size_bytes * (1.0 - fraction_completed)
        unspent_energy = energy_share_joules * (1.0 - fraction_completed)
        if (
            self.stats.bytes_downloaded - unspent_bytes < -1e-6
            or self.stats.energy_spent_joules - unspent_energy < -1e-6
        ):
            raise ValueError("cancelling more than was charged to the device")
        self.stats.bytes_downloaded = max(
            0.0, self.stats.bytes_downloaded - unspent_bytes
        )
        self.stats.energy_spent_joules = max(
            0.0, self.stats.energy_spent_joules - unspent_energy
        )
        if size_bytes > 0 and self.stats.notifications_received > 0:
            self.stats.notifications_received -= 1
