"""Synthetic per-user battery traces.

The evaluation feeds the scheduler "a separate trace (obtained from [6]) of
timestamped battery status per user ... to mimic energy drain and battery
recharge patterns of the devices".  Those traces are not public, so this
module synthesizes them: a diurnal model in which the battery drains during
the user's active hours and recharges overnight (plus occasional daytime
top-ups), with per-user phase and rate jitter.

The scheduler consumes the trace through two views:

* :meth:`BatteryTrace.level` -- state of charge in [0, 1] at a timestamp;
* :meth:`BatteryTrace.replenishment` -- the battery-aware energy-budget
  refill rate ``e(t)`` for a round (Algorithm 2, step 2): a full, charging
  battery grants the full per-round allowance ``kappa``; a depleted battery
  grants proportionally less, modelling a user unwilling to spend scarce
  charge on notification downloads.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field


@dataclass(frozen=True)
class BatterySample:
    """One timestamped battery reading."""

    time: float
    level: float
    charging: bool

    def __post_init__(self) -> None:
        if not math.isfinite(self.time):
            raise ValueError(f"sample time must be finite, got {self.time}")
        if not 0.0 <= self.level <= 1.0:
            raise ValueError(f"level must be in [0, 1], got {self.level}")


@dataclass
class DiurnalBatteryModel:
    """Generator of synthetic battery traces.

    Parameters
    ----------
    drain_per_hour:
        Mean state-of-charge loss per active hour (default 5 %).
    charge_per_hour:
        Charging rate while plugged in (default 40 %/h, ~2.5 h full charge).
    night_start_hour / night_end_hour:
        Local hours between which the device is plugged in.
    jitter:
        Relative randomization of per-user drain rates and charge phase.
    """

    drain_per_hour: float = 0.05
    charge_per_hour: float = 0.40
    night_start_hour: float = 23.0
    night_end_hour: float = 7.0
    jitter: float = 0.3
    rng: random.Random = field(default_factory=random.Random)

    def __post_init__(self) -> None:
        if not 0 < self.drain_per_hour < 1:
            raise ValueError("drain rate must be in (0, 1)")
        if not 0 < self.charge_per_hour <= 1:
            raise ValueError("charge rate must be in (0, 1]")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    def generate(
        self,
        duration_seconds: float,
        sample_period_seconds: float = 3600.0,
        initial_level: float = 1.0,
    ) -> "BatteryTrace":
        """Produce a trace of ``duration_seconds`` sampled every period."""
        if duration_seconds <= 0:
            raise ValueError("duration must be positive")
        if sample_period_seconds <= 0:
            raise ValueError("sample period must be positive")
        if not 0.0 <= initial_level <= 1.0:
            raise ValueError("initial level must be in [0, 1]")

        scale = 1.0 + self.jitter * (2.0 * self.rng.random() - 1.0)
        drain = self.drain_per_hour * scale
        phase = self.rng.uniform(-1.0, 1.0) * self.jitter * 2.0  # hours

        samples: list[BatterySample] = []
        level = initial_level
        t = 0.0
        while t <= duration_seconds:
            hour = ((t / 3600.0) + phase) % 24.0
            charging = self._is_night(hour) or (
                level < 0.15 and self.rng.random() < 0.5
            )
            samples.append(BatterySample(time=t, level=level, charging=charging))
            hours = sample_period_seconds / 3600.0
            if charging:
                level = min(1.0, level + self.charge_per_hour * hours)
            else:
                activity = 0.5 + 0.5 * math.sin(math.pi * (hour - 7.0) / 12.0)
                level = max(0.0, level - drain * hours * max(0.2, activity))
            t += sample_period_seconds
        return BatteryTrace(samples)

    def _is_night(self, hour: float) -> bool:
        if self.night_start_hour <= self.night_end_hour:
            return self.night_start_hour <= hour < self.night_end_hour
        return hour >= self.night_start_hour or hour < self.night_end_hour

    def replenishment_column(
        self,
        n_rounds: int,
        round_seconds: float,
        duration_seconds: float,
        kappa_joules: float,
        initial_level: float = 1.0,
    ) -> list[float]:
        """``e(t)`` for every round of a fresh trace, in one pass.

        Bit-identical to ``generate(duration_seconds + round_seconds,
        sample_period_seconds=round_seconds)`` followed by
        :meth:`BatteryTrace.sample_replenishment` on sample ``k + 1`` for
        round ``k`` (clamped to the last sample) -- the exact lookup the
        round grid induces, see
        :func:`repro.runtime.columnar.build_device_columns`.  The fast
        path exists because materializing a :class:`BatteryTrace` per
        user dominates cohort setup at population scale: this method
        runs the same recurrence with the same RNG draw order and the
        same float arithmetic, but keeps plain scalars throughout.
        """
        if n_rounds < 0:
            raise ValueError("n_rounds must be >= 0")
        if round_seconds <= 0:
            raise ValueError("sample period must be positive")
        if duration_seconds <= 0:
            raise ValueError("duration must be positive")
        if not 0.0 <= initial_level <= 1.0:
            raise ValueError("initial level must be in [0, 1]")
        if kappa_joules < 0:
            raise ValueError("kappa must be >= 0")

        scale = 1.0 + self.jitter * (2.0 * self.rng.random() - 1.0)
        drain = self.drain_per_hour * scale
        phase = self.rng.uniform(-1.0, 1.0) * self.jitter * 2.0  # hours
        rng_random = self.rng.random
        charge_per_hour = self.charge_per_hour
        is_night = self._is_night
        duration = duration_seconds + round_seconds
        hours = round_seconds / 3600.0

        refills: list[float] = []
        level = initial_level
        t = 0.0
        while t <= duration:
            hour = ((t / 3600.0) + phase) % 24.0
            charging = is_night(hour) or (
                level < 0.15 and rng_random() < 0.5
            )
            if charging:
                refills.append(kappa_joules)
            elif level < 0.05:
                refills.append(0.0)
            else:
                refills.append(kappa_joules * max(0.2, level))
            if charging:
                level = min(1.0, level + charge_per_hour * hours)
            else:
                activity = 0.5 + 0.5 * math.sin(math.pi * (hour - 7.0) / 12.0)
                level = max(0.0, level - drain * hours * max(0.2, activity))
            t += round_seconds
        last = len(refills) - 1
        return [
            refills[k + 1 if k + 1 <= last else last] for k in range(n_rounds)
        ]


class BatteryTrace:
    """A timestamped battery trace with interpolation-free lookups.

    Lookups return the most recent sample at or before the query time
    (step semantics, matching how status logs are recorded).
    """

    def __init__(self, samples: list[BatterySample]):
        if not samples:
            raise ValueError(
                "battery trace must contain at least one sample "
                "(got an empty sample list)"
            )
        for sample in samples:
            if not isinstance(sample, BatterySample):
                raise ValueError(
                    f"battery trace entries must be BatterySample, "
                    f"got {type(sample).__name__}"
                )
        # Unsorted input is accepted and ordered; equal timestamps are
        # ambiguous (which reading wins?) and rejected up front rather
        # than surfacing as wrong lookups downstream.
        ordered = sorted(samples, key=lambda s: s.time)
        for lo, hi in zip(ordered, ordered[1:]):
            if hi.time == lo.time:
                raise ValueError(
                    f"duplicate sample timestamp {lo.time}: battery trace "
                    "timestamps must be distinct"
                )
        self._samples = ordered
        self._times = [s.time for s in ordered]

    def __len__(self) -> int:
        return len(self._samples)

    def __iter__(self):
        return iter(self._samples)

    def _locate(self, time: float) -> BatterySample:
        import bisect

        index = bisect.bisect_right(self._times, time) - 1
        if index < 0:
            return self._samples[0]
        return self._samples[index]

    def level(self, time: float) -> float:
        """State of charge in [0, 1] at ``time``."""
        return self._locate(time).level

    def charging(self, time: float) -> bool:
        return self._locate(time).charging

    def replenishment(self, time: float, kappa_joules: float) -> float:
        """Battery-aware energy-budget refill ``e(t)`` for the round.

        * charging, any level: full ``kappa`` (energy is effectively free);
        * discharging: ``kappa`` scaled by the state of charge, floored at
          20% so the budget never starves completely while the device is on;
        * below 5% charge: zero -- the user's device is about to die and no
          discretionary downloads should be charged against it.
        """
        return self.sample_replenishment(self._locate(time), kappa_joules)

    @staticmethod
    def sample_replenishment(
        sample: BatterySample, kappa_joules: float
    ) -> float:
        """The :meth:`replenishment` rule for an already-located sample.

        Exposed so batch evaluators (the columnar device columns) that
        know which sample each round reads can skip the per-call bisect
        while computing the exact same refill.
        """
        if kappa_joules < 0:
            raise ValueError("kappa must be >= 0")
        if sample.charging:
            return kappa_joules
        if sample.level < 0.05:
            return 0.0
        return kappa_joules * max(0.2, sample.level)
