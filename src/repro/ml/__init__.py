"""From-scratch Random Forest substrate for content-utility learning."""

from repro.ml.tree import DecisionTreeClassifier
from repro.ml.forest import RandomForestClassifier
from repro.ml.logistic import LogisticRegressionClassifier
from repro.ml.dataset import FEATURE_NAMES, FeatureExtractor, build_training_set
from repro.ml.metrics import (
    ConfusionMatrix,
    accuracy,
    confusion_matrix,
    f1_score,
    precision,
    recall,
    roc_auc,
)
from repro.ml.crossval import CrossValResult, cross_validate, kfold_indices, stratified_kfold_indices
from repro.ml.calibration import (
    CalibrationBin,
    brier_score,
    calibration_curve,
    expected_calibration_error,
    render_reliability,
)
