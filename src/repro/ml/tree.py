"""CART decision trees (binary splits, Gini impurity).

The paper trains a Random Forest [7] in Weka; this is the from-scratch
substrate it rests on.  Numeric features only (the feature extractor
one-hot-encodes categoricals), binary classification with class-probability
leaves so the forest can expose calibrated-ish ``predict_proba`` scores --
the quantity RichNote turns into content utility ``U_c``.

The implementation vectorizes split search with numpy: for each candidate
feature the samples are sorted once and all thresholds are evaluated with
prefix sums, giving ``O(f * n log n)`` per node for ``f`` candidate
features.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class _Node:
    """One tree node; leaves carry class-1 probability."""

    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None
    probability: float = 0.0  # P(class == 1) at this node
    samples: int = 0

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _gini(positive: float, total: float) -> float:
    """Gini impurity of a node with ``positive`` of ``total`` class-1."""
    if total <= 0:
        return 0.0
    p = positive / total
    return 2.0 * p * (1.0 - p)


def _best_split(
    x: np.ndarray,
    y: np.ndarray,
    feature_indices: np.ndarray,
    min_samples_leaf: int,
) -> tuple[int, float, float] | None:
    """Best (feature, threshold, weighted-impurity) over candidate features.

    Returns ``None`` when no valid split exists (pure node or too few
    samples on one side for every threshold).
    """
    n = len(y)
    total_pos = float(y.sum())
    parent = _gini(total_pos, n)
    best: tuple[int, float, float] | None = None
    best_score = parent - 1e-12  # require strict improvement

    for feature in feature_indices:
        values = x[:, feature]
        order = np.argsort(values, kind="stable")
        sorted_values = values[order]
        sorted_y = y[order]
        # Candidate split positions: between distinct consecutive values.
        distinct = np.nonzero(np.diff(sorted_values) > 0)[0]
        if distinct.size == 0:
            continue
        left_counts = distinct + 1  # samples on the left of each candidate
        pos_prefix = np.cumsum(sorted_y)
        left_pos = pos_prefix[distinct].astype(float)
        right_counts = n - left_counts
        right_pos = total_pos - left_pos

        valid = (left_counts >= min_samples_leaf) & (
            right_counts >= min_samples_leaf
        )
        if not valid.any():
            continue
        lc = left_counts[valid].astype(float)
        rc = right_counts[valid].astype(float)
        lp = left_pos[valid]
        rp = right_pos[valid]
        left_gini = 2.0 * (lp / lc) * (1.0 - lp / lc)
        right_gini = 2.0 * (rp / rc) * (1.0 - rp / rc)
        weighted = (lc * left_gini + rc * right_gini) / n
        idx = int(np.argmin(weighted))
        score = float(weighted[idx])
        if score < best_score:
            positions = distinct[valid]
            split_at = int(positions[idx])
            threshold = 0.5 * (
                float(sorted_values[split_at]) + float(sorted_values[split_at + 1])
            )
            best_score = score
            best = (int(feature), threshold, score)
    return best


class DecisionTreeClassifier:
    """Binary CART classifier with probability leaves.

    Parameters
    ----------
    max_depth:
        Maximum tree depth (root = depth 0); ``None`` for unbounded.
    min_samples_split:
        Minimum samples required to attempt a split.
    min_samples_leaf:
        Minimum samples each child must receive.
    max_features:
        Number of features examined per split; ``None`` = all, ``"sqrt"`` =
        ``ceil(sqrt(f))`` (the Random Forest default).
    random_state:
        Seed for the per-split feature subsampling.
    """

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | str | None = None,
        random_state: int | None = None,
    ) -> None:
        if max_depth is not None and max_depth < 0:
            raise ValueError("max_depth must be >= 0")
        if min_samples_split < 2:
            raise ValueError("min_samples_split must be >= 2")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state
        self._root: _Node | None = None
        self._n_features = 0

    # -- fitting --------------------------------------------------------------

    def fit(self, x, y) -> "DecisionTreeClassifier":
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=int)
        if x.ndim != 2:
            raise ValueError("x must be a 2-D matrix")
        if y.ndim != 1 or len(y) != len(x):
            raise ValueError("y must be a vector aligned with x")
        if not set(np.unique(y)) <= {0, 1}:
            raise ValueError("labels must be binary 0/1")
        if len(x) == 0:
            raise ValueError("cannot fit on an empty dataset")
        self._n_features = x.shape[1]
        rng = np.random.default_rng(self.random_state)
        self._root = self._grow(x, y, depth=0, rng=rng)
        return self

    def _candidate_features(self, rng: np.random.Generator) -> np.ndarray:
        if self.max_features is None:
            return np.arange(self._n_features)
        if self.max_features == "sqrt":
            k = max(1, int(np.ceil(np.sqrt(self._n_features))))
        else:
            k = int(self.max_features)
            if not 1 <= k <= self._n_features:
                raise ValueError(
                    f"max_features must be in [1, {self._n_features}], got {k}"
                )
        return rng.choice(self._n_features, size=k, replace=False)

    def _grow(
        self, x: np.ndarray, y: np.ndarray, depth: int, rng: np.random.Generator
    ) -> _Node:
        node = _Node(probability=float(y.mean()), samples=len(y))
        if (
            (self.max_depth is not None and depth >= self.max_depth)
            or len(y) < self.min_samples_split
            or node.probability in (0.0, 1.0)
        ):
            return node
        split = _best_split(
            x, y, self._candidate_features(rng), self.min_samples_leaf
        )
        if split is None:
            return node
        feature, threshold, _ = split
        mask = x[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(x[mask], y[mask], depth + 1, rng)
        node.right = self._grow(x[~mask], y[~mask], depth + 1, rng)
        return node

    # -- prediction -----------------------------------------------------------

    def _check_fitted(self) -> _Node:
        if self._root is None:
            raise RuntimeError("tree is not fitted; call fit() first")
        return self._root

    def predict_proba(self, x) -> np.ndarray:
        """Class probabilities, shape ``(n, 2)``; column 1 = P(clicked)."""
        root = self._check_fitted()
        x = np.asarray(x, dtype=float)
        if x.ndim != 2 or x.shape[1] != self._n_features:
            raise ValueError(
                f"expected matrix with {self._n_features} features, got {x.shape}"
            )
        p1 = np.empty(len(x))
        for row_index in range(len(x)):
            node = root
            row = x[row_index]
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            p1[row_index] = node.probability
        return np.column_stack([1.0 - p1, p1])

    def predict(self, x) -> np.ndarray:
        """Hard class predictions at the 0.5 threshold."""
        return (self.predict_proba(x)[:, 1] >= 0.5).astype(int)

    def depth(self) -> int:
        """Realized depth of the fitted tree."""

        def walk(node: _Node) -> int:
            if node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self._check_fitted())

    def node_count(self) -> int:
        def count(node: _Node) -> int:
            if node.is_leaf:
                return 1
            return 1 + count(node.left) + count(node.right)

        return count(self._check_fitted())
