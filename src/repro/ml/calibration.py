"""Probability-calibration diagnostics for the content-utility model.

RichNote does not just rank by classifier output -- it multiplies the
predicted click probability into the scheduling objective (Eq. 1), so the
*calibration* of ``U_c`` matters, not only its discrimination.  This module
provides the standard diagnostics:

* :func:`brier_score` -- mean squared error of the probabilities;
* :func:`calibration_curve` -- binned predicted-vs-observed frequencies
  (the reliability diagram's data);
* :func:`expected_calibration_error` -- the bin-weighted |gap| summary.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def _validate(y_true, probabilities) -> tuple[np.ndarray, np.ndarray]:
    y = np.asarray(y_true, dtype=float)
    p = np.asarray(probabilities, dtype=float)
    if y.shape != p.shape or y.ndim != 1:
        raise ValueError("labels and probabilities must be aligned vectors")
    if y.size == 0:
        raise ValueError("empty inputs")
    if not set(np.unique(y)) <= {0.0, 1.0}:
        raise ValueError("labels must be binary 0/1")
    if (p < 0).any() or (p > 1).any():
        raise ValueError("probabilities must be in [0, 1]")
    return y, p


def brier_score(y_true, probabilities) -> float:
    """Mean squared error of predicted probabilities (lower is better).

    0 is perfect; 0.25 is the score of a constant 0.5 prediction.
    """
    y, p = _validate(y_true, probabilities)
    return float(np.mean((p - y) ** 2))


@dataclass(frozen=True)
class CalibrationBin:
    """One reliability-diagram bin."""

    lower: float
    upper: float
    count: int
    mean_predicted: float
    observed_rate: float

    @property
    def gap(self) -> float:
        return abs(self.mean_predicted - self.observed_rate)


def calibration_curve(y_true, probabilities, n_bins: int = 10) -> list[CalibrationBin]:
    """Equal-width bins over [0, 1]; empty bins are omitted."""
    if n_bins < 1:
        raise ValueError("need at least one bin")
    y, p = _validate(y_true, probabilities)
    edges = np.linspace(0.0, 1.0, n_bins + 1)
    bins: list[CalibrationBin] = []
    for bin_index, (lower, upper) in enumerate(zip(edges, edges[1:])):
        # The last bin is closed on the right so p == 1.0 lands somewhere;
        # keyed on the index, not `upper == 1.0`, so float rounding in the
        # edge grid can never drop the closing bin.
        if bin_index == n_bins - 1:
            mask = (p >= lower) & (p <= upper)
        else:
            mask = (p >= lower) & (p < upper)
        if not mask.any():
            continue
        bins.append(
            CalibrationBin(
                lower=float(lower),
                upper=float(upper),
                count=int(mask.sum()),
                mean_predicted=float(p[mask].mean()),
                observed_rate=float(y[mask].mean()),
            )
        )
    return bins


def expected_calibration_error(y_true, probabilities, n_bins: int = 10) -> float:
    """ECE: bin-count-weighted mean |predicted - observed|."""
    y, p = _validate(y_true, probabilities)
    bins = calibration_curve(y, p, n_bins)
    total = sum(b.count for b in bins)
    return sum(b.count * b.gap for b in bins) / total


def render_reliability(bins: list[CalibrationBin]) -> str:
    """Plain-text reliability diagram data."""
    lines = [
        "bin          n   predicted  observed   gap",
    ]
    for b in bins:
        lines.append(
            f"[{b.lower:.1f},{b.upper:.1f}) {b.count:>5} "
            f"{b.mean_predicted:>10.3f} {b.observed_rate:>9.3f} {b.gap:>6.3f}"
        )
    return "\n".join(lines)
