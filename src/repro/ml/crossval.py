"""K-fold cross validation for the content-utility classifier.

"To evaluate the effectiveness of the learned classifier model and to
ensure that we are not over-fitting to the training data we performed a
five-fold cross validation.  In this process, we divide the input data into
five equal parts.  Then each part acts as test data while the rest of the
four parts are used for training."  (Section V-A)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

import numpy as np

from repro.ml.metrics import confusion_matrix


def kfold_indices(
    n_samples: int,
    n_folds: int = 5,
    shuffle: bool = True,
    random_state: int | None = None,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield ``(train_indices, test_indices)`` for each fold.

    Folds differ in size by at most one sample.
    """
    if n_folds < 2:
        raise ValueError("need at least 2 folds")
    if n_samples < n_folds:
        raise ValueError(f"cannot split {n_samples} samples into {n_folds} folds")
    indices = np.arange(n_samples)
    if shuffle:
        np.random.default_rng(random_state).shuffle(indices)
    folds = np.array_split(indices, n_folds)
    for fold_index in range(n_folds):
        test = folds[fold_index]
        train = np.concatenate(
            [folds[i] for i in range(n_folds) if i != fold_index]
        )
        yield train, test


def stratified_kfold_indices(
    labels,
    n_folds: int = 5,
    random_state: int | None = None,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Stratified variant preserving the class balance in every fold."""
    labels = np.asarray(labels, dtype=int)
    if n_folds < 2:
        raise ValueError("need at least 2 folds")
    rng = np.random.default_rng(random_state)
    per_class_folds: list[list[np.ndarray]] = []
    for value in np.unique(labels):
        members = np.nonzero(labels == value)[0]
        if len(members) < n_folds:
            raise ValueError(
                f"class {value} has {len(members)} samples, fewer than "
                f"{n_folds} folds"
            )
        rng.shuffle(members)
        per_class_folds.append(np.array_split(members, n_folds))
    for fold_index in range(n_folds):
        test = np.concatenate([folds[fold_index] for folds in per_class_folds])
        train = np.concatenate(
            [
                folds[i]
                for folds in per_class_folds
                for i in range(n_folds)
                if i != fold_index
            ]
        )
        yield np.sort(train), np.sort(test)


@dataclass(frozen=True)
class CrossValResult:
    """Per-fold and pooled metrics of a cross-validation run."""

    fold_accuracy: tuple[float, ...]
    fold_precision: tuple[float, ...]
    fold_recall: tuple[float, ...]

    @property
    def accuracy(self) -> float:
        return float(np.mean(self.fold_accuracy))

    @property
    def precision(self) -> float:
        return float(np.mean(self.fold_precision))

    @property
    def recall(self) -> float:
        return float(np.mean(self.fold_recall))

    def summary(self) -> str:
        return (
            f"accuracy={self.accuracy:.3f} precision={self.precision:.3f} "
            f"recall={self.recall:.3f} over {len(self.fold_accuracy)} folds"
        )


def cross_validate(
    model_factory: Callable[[], object],
    x,
    y,
    n_folds: int = 5,
    stratified: bool = True,
    random_state: int | None = None,
) -> CrossValResult:
    """Fit a fresh model per fold and aggregate accuracy/precision/recall.

    ``model_factory`` must return an unfitted object with ``fit(x, y)`` and
    ``predict(x)`` -- a fresh instance per fold keeps folds independent.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=int)
    if len(x) != len(y):
        raise ValueError("x and y must align")
    splits = (
        stratified_kfold_indices(y, n_folds, random_state)
        if stratified
        else kfold_indices(len(y), n_folds, random_state=random_state)
    )
    accuracies: list[float] = []
    precisions: list[float] = []
    recalls: list[float] = []
    for train, test in splits:
        model = model_factory()
        model.fit(x[train], y[train])
        predictions = model.predict(x[test])
        cm = confusion_matrix(y[test], predictions)
        accuracies.append(cm.accuracy())
        precisions.append(cm.precision())
        recalls.append(cm.recall())
    return CrossValResult(
        fold_accuracy=tuple(accuracies),
        fold_precision=tuple(precisions),
        fold_recall=tuple(recalls),
    )
