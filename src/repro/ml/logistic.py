"""Logistic-regression classifier: the linear baseline for the RF.

The paper uses a Random Forest for content utility; a logistic model is
the natural ablation -- if a linear model matched the forest, the ensemble
would be unnecessary.  (On this feature space, whose ground truth *is*
logistic in the features plus noise, the two land close; the forest wins
when interactions matter.)  Implements batch gradient descent with L2
regularization on numpy; exposes the same ``fit``/``predict``/
``predict_proba`` interface as the forest so it drops into
:class:`repro.core.utility.LearnedContentUtility`, the cross-validation
harness and the classifier benchmark unchanged.
"""

from __future__ import annotations

import numpy as np


def _sigmoid(z: np.ndarray) -> np.ndarray:
    out = np.empty_like(z)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    ez = np.exp(z[~positive])
    out[~positive] = ez / (1.0 + ez)
    return out


class LogisticRegressionClassifier:
    """Binary logistic regression trained by full-batch gradient descent.

    Parameters
    ----------
    learning_rate:
        Step size of the gradient updates.
    n_iterations:
        Number of full-batch passes.
    l2:
        L2 penalty strength (applied to weights, not the intercept).
    standardize:
        Whether to z-score features before fitting (recommended: keeps the
        fixed learning rate sane across feature scales).
    tolerance:
        Early-stop threshold on the max absolute gradient component.
    """

    def __init__(
        self,
        learning_rate: float = 0.5,
        n_iterations: int = 300,
        l2: float = 1e-3,
        standardize: bool = True,
        tolerance: float = 1e-6,
    ) -> None:
        if learning_rate <= 0:
            raise ValueError("learning rate must be positive")
        if n_iterations < 1:
            raise ValueError("need at least one iteration")
        if l2 < 0:
            raise ValueError("l2 must be >= 0")
        self.learning_rate = learning_rate
        self.n_iterations = n_iterations
        self.l2 = l2
        self.standardize = standardize
        self.tolerance = tolerance
        self._weights: np.ndarray | None = None
        self._intercept = 0.0
        self._mean: np.ndarray | None = None
        self._scale: np.ndarray | None = None

    def fit(self, x, y) -> "LogisticRegressionClassifier":
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if x.ndim != 2:
            raise ValueError("x must be a 2-D matrix")
        if len(x) != len(y):
            raise ValueError("x and y must align")
        if not set(np.unique(y)) <= {0.0, 1.0}:
            raise ValueError("labels must be binary 0/1")
        if len(x) == 0:
            raise ValueError("cannot fit on an empty dataset")

        if self.standardize:
            self._mean = x.mean(axis=0)
            scale = x.std(axis=0)
            scale[scale == 0.0] = 1.0
            self._scale = scale
            x = (x - self._mean) / self._scale

        n, f = x.shape
        weights = np.zeros(f)
        intercept = 0.0
        for _ in range(self.n_iterations):
            predictions = _sigmoid(x @ weights + intercept)
            error = predictions - y
            gradient_w = x.T @ error / n + self.l2 * weights
            gradient_b = float(error.mean())
            weights -= self.learning_rate * gradient_w
            intercept -= self.learning_rate * gradient_b
            if max(np.abs(gradient_w).max(), abs(gradient_b)) < self.tolerance:
                break
        self._weights = weights
        self._intercept = intercept
        return self

    def _transform(self, x: np.ndarray) -> np.ndarray:
        if self.standardize and self._mean is not None:
            return (x - self._mean) / self._scale
        return x

    def decision_function(self, x) -> np.ndarray:
        """Raw logits ``w.x + b``."""
        if self._weights is None:
            raise RuntimeError("model is not fitted; call fit() first")
        x = np.asarray(x, dtype=float)
        if x.ndim != 2 or x.shape[1] != len(self._weights):
            raise ValueError(
                f"expected matrix with {len(self._weights)} features, got {x.shape}"
            )
        return self._transform(x) @ self._weights + self._intercept

    def predict_proba(self, x) -> np.ndarray:
        p1 = _sigmoid(self.decision_function(x))
        return np.column_stack([1.0 - p1, p1])

    def predict(self, x) -> np.ndarray:
        return (self.decision_function(x) >= 0.0).astype(int)

    @property
    def coefficients(self) -> np.ndarray:
        """Fitted weights in standardized feature space."""
        if self._weights is None:
            raise RuntimeError("model is not fitted; call fit() first")
        return self._weights.copy()
