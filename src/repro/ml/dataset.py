"""Feature extraction: trace records -> classifier matrices.

Implements the feature space of Section V-A.  Three families:

* **social ties** between sender and recipient (tie strength, friend flag);
* **popularity** of the track, album and artist (1-100 scores normalized);
* **timestamp** features (hour of day, weekday/weekend, day/night);

plus a one-hot of the publication kind (friend feed / album release /
playlist update), which the paper's pipeline had implicitly through its
separate feeds.

The same layout is used at serving time: the scheduler's
:class:`repro.core.content.ContentItem` carries the record fields in its
``metadata`` dict, and :meth:`FeatureExtractor.features_for_item` rebuilds
the identical vector so train/serve skew is impossible by construction.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.content import ContentItem
from repro.pubsub.topics import TopicKind
from repro.runtime.kernels import feature_matrix
from repro.trace.records import NotificationRecord

#: Kind -> one-hot column code used by the batch kernel (the order of the
#: ``kind_*`` entries in :data:`FEATURE_NAMES`).
_KIND_CODES = {TopicKind.FRIEND: 0, TopicKind.ARTIST: 1, TopicKind.PLAYLIST: 2}

#: Ordered feature names; the single source of truth for the layout.
FEATURE_NAMES: tuple[str, ...] = (
    "tie_strength",
    "is_friend",
    "favorite_genre",
    "track_popularity",
    "album_popularity",
    "artist_popularity",
    "hour_of_day",
    "is_weekend",
    "is_night",
    "kind_friend",
    "kind_artist",
    "kind_playlist",
)


class FeatureExtractor:
    """Stateless mapper from records/items to fixed-width feature vectors."""

    @property
    def n_features(self) -> int:
        return len(FEATURE_NAMES)

    def features_for_record(self, record: NotificationRecord) -> list[float]:
        return self._vector(
            tie_strength=record.tie_strength,
            is_friend=record.is_friend,
            favorite_genre=record.favorite_genre,
            track_popularity=record.track_popularity,
            album_popularity=record.album_popularity,
            artist_popularity=record.artist_popularity,
            timestamp=record.timestamp,
            kind=record.kind,
        )

    def features_for_records(
        self, records: Sequence[NotificationRecord]
    ) -> np.ndarray:
        """Batch equivalent of :meth:`features_for_record`: one array pass.

        Gathers the raw record columns in a single sweep and hands them to
        :func:`repro.runtime.kernels.feature_matrix`; row ``i`` is
        bit-identical to ``features_for_record(records[i])``.  This is the
        scoring hot path -- annotating a whole workload goes through here
        instead of building one Python list per record.
        """
        if not records:
            return np.empty((0, self.n_features), dtype=np.float64)
        return feature_matrix(
            [r.tie_strength for r in records],
            [r.is_friend for r in records],
            [r.favorite_genre for r in records],
            [r.track_popularity for r in records],
            [r.album_popularity for r in records],
            [r.artist_popularity for r in records],
            [r.timestamp for r in records],
            [_KIND_CODES[r.kind] for r in records],
        )

    def features_for_item(self, item: ContentItem) -> list[float]:
        """Rebuild the vector from a scheduler item's metadata.

        Raises ``KeyError`` if the item was not built through
        :func:`repro.experiments.adapters.record_to_item` (or an equivalent
        ingest path that populates the metadata fields).
        """
        meta = item.metadata
        return self._vector(
            tie_strength=float(meta["tie_strength"]),
            is_friend=bool(meta["is_friend"]),
            favorite_genre=bool(meta["favorite_genre"]),
            track_popularity=int(meta["track_popularity"]),
            album_popularity=int(meta["album_popularity"]),
            artist_popularity=int(meta["artist_popularity"]),
            timestamp=item.created_at,
            kind=TopicKind(meta["kind"]),
        )

    def _vector(
        self,
        tie_strength: float,
        is_friend: bool,
        favorite_genre: bool,
        track_popularity: int,
        album_popularity: int,
        artist_popularity: int,
        timestamp: float,
        kind: TopicKind,
    ) -> list[float]:
        hour = (timestamp / 3600.0) % 24.0
        day = int(timestamp // 86400.0) % 7
        return [
            tie_strength,
            float(is_friend),
            float(favorite_genre),
            track_popularity / 100.0,
            album_popularity / 100.0,
            artist_popularity / 100.0,
            hour / 24.0,
            float(day >= 5),
            float(hour >= 22.0 or hour < 6.0),
            float(kind is TopicKind.FRIEND),
            float(kind is TopicKind.ARTIST),
            float(kind is TopicKind.PLAYLIST),
        ]


def build_training_set(
    records: Sequence[NotificationRecord],
    extractor: FeatureExtractor | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Attended records -> (X, y) with y = clicked.

    Applies the paper's filter: "First we filter out notifications without
    corresponding mouse activity from the dataset" -- only hovered/clicked
    records are labelled training data.
    """
    extractor = extractor or FeatureExtractor()
    attended = [record for record in records if record.attended]
    if not attended:
        raise ValueError("no attended records; cannot build a training set")
    labels = [int(record.clicked) for record in attended]
    return extractor.features_for_records(attended), np.asarray(labels, dtype=int)


def class_balance(y) -> float:
    """Fraction of positive (clicked) labels; sanity metric for synthesis."""
    y = np.asarray(y, dtype=int)
    if y.size == 0:
        raise ValueError("empty label vector")
    return float(y.mean())
