"""Feature extraction: trace records -> classifier matrices.

Implements the feature space of Section V-A.  Three families:

* **social ties** between sender and recipient (tie strength, friend flag);
* **popularity** of the track, album and artist (1-100 scores normalized);
* **timestamp** features (hour of day, weekday/weekend, day/night);

plus a one-hot of the publication kind (friend feed / album release /
playlist update), which the paper's pipeline had implicitly through its
separate feeds.

The same layout is used at serving time: the scheduler's
:class:`repro.core.content.ContentItem` carries the record fields in its
``metadata`` dict, and :meth:`FeatureExtractor.features_for_item` rebuilds
the identical vector so train/serve skew is impossible by construction.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.content import ContentItem
from repro.pubsub.topics import TopicKind
from repro.trace.records import NotificationRecord

#: Ordered feature names; the single source of truth for the layout.
FEATURE_NAMES: tuple[str, ...] = (
    "tie_strength",
    "is_friend",
    "favorite_genre",
    "track_popularity",
    "album_popularity",
    "artist_popularity",
    "hour_of_day",
    "is_weekend",
    "is_night",
    "kind_friend",
    "kind_artist",
    "kind_playlist",
)


class FeatureExtractor:
    """Stateless mapper from records/items to fixed-width feature vectors."""

    @property
    def n_features(self) -> int:
        return len(FEATURE_NAMES)

    def features_for_record(self, record: NotificationRecord) -> list[float]:
        return self._vector(
            tie_strength=record.tie_strength,
            is_friend=record.is_friend,
            favorite_genre=record.favorite_genre,
            track_popularity=record.track_popularity,
            album_popularity=record.album_popularity,
            artist_popularity=record.artist_popularity,
            timestamp=record.timestamp,
            kind=record.kind,
        )

    def features_for_item(self, item: ContentItem) -> list[float]:
        """Rebuild the vector from a scheduler item's metadata.

        Raises ``KeyError`` if the item was not built through
        :func:`repro.experiments.adapters.record_to_item` (or an equivalent
        ingest path that populates the metadata fields).
        """
        meta = item.metadata
        return self._vector(
            tie_strength=float(meta["tie_strength"]),
            is_friend=bool(meta["is_friend"]),
            favorite_genre=bool(meta["favorite_genre"]),
            track_popularity=int(meta["track_popularity"]),
            album_popularity=int(meta["album_popularity"]),
            artist_popularity=int(meta["artist_popularity"]),
            timestamp=item.created_at,
            kind=TopicKind(meta["kind"]),
        )

    def _vector(
        self,
        tie_strength: float,
        is_friend: bool,
        favorite_genre: bool,
        track_popularity: int,
        album_popularity: int,
        artist_popularity: int,
        timestamp: float,
        kind: TopicKind,
    ) -> list[float]:
        hour = (timestamp / 3600.0) % 24.0
        day = int(timestamp // 86400.0) % 7
        return [
            tie_strength,
            float(is_friend),
            float(favorite_genre),
            track_popularity / 100.0,
            album_popularity / 100.0,
            artist_popularity / 100.0,
            hour / 24.0,
            float(day >= 5),
            float(hour >= 22.0 or hour < 6.0),
            float(kind is TopicKind.FRIEND),
            float(kind is TopicKind.ARTIST),
            float(kind is TopicKind.PLAYLIST),
        ]


def build_training_set(
    records: Sequence[NotificationRecord],
    extractor: FeatureExtractor | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Attended records -> (X, y) with y = clicked.

    Applies the paper's filter: "First we filter out notifications without
    corresponding mouse activity from the dataset" -- only hovered/clicked
    records are labelled training data.
    """
    extractor = extractor or FeatureExtractor()
    rows: list[list[float]] = []
    labels: list[int] = []
    for record in records:
        if not record.attended:
            continue
        rows.append(extractor.features_for_record(record))
        labels.append(int(record.clicked))
    if not rows:
        raise ValueError("no attended records; cannot build a training set")
    return np.asarray(rows, dtype=float), np.asarray(labels, dtype=int)


def class_balance(y) -> float:
    """Fraction of positive (clicked) labels; sanity metric for synthesis."""
    y = np.asarray(y, dtype=int)
    if y.size == 0:
        raise ValueError("empty label vector")
    return float(y.mean())
