"""Random Forest classifier (Breiman 2001), built on the CART trees.

The paper: "we train a binary classifier using the well-known Random Forest
(RF) classification method [7].  RF is an ensemble of many decision trees
that determines the class of a notification along with a confidence score in
the form of probability Pr(x_i) for the predicted class."

The forest bootstraps the training set per tree, subsamples ``sqrt(f)``
features per split, and averages leaf probabilities across trees --
``predict_proba`` is the mean of tree probabilities, which is what
:class:`repro.core.utility.LearnedContentUtility` converts into ``U_c``.
Out-of-bag scoring is included as a cheap generalization check.
"""

from __future__ import annotations

import numpy as np

from repro.ml.tree import DecisionTreeClassifier


class RandomForestClassifier:
    """Bagged ensemble of probability-leaf CART trees.

    Parameters
    ----------
    n_estimators:
        Number of trees.
    max_depth / min_samples_split / min_samples_leaf:
        Passed through to each tree.
    max_features:
        Per-split feature subsample; defaults to ``"sqrt"`` per Breiman.
    bootstrap:
        Draw a bootstrap sample per tree (True, standard RF) or train every
        tree on the full set (feature-subsampling-only ensemble).
    random_state:
        Master seed; per-tree seeds are derived deterministically.
    """

    def __init__(
        self,
        n_estimators: int = 50,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | str | None = "sqrt",
        bootstrap: bool = True,
        random_state: int | None = None,
    ) -> None:
        if n_estimators < 1:
            raise ValueError("need at least one tree")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.random_state = random_state
        self._trees: list[DecisionTreeClassifier] = []
        self._oob_indices: list[np.ndarray] = []
        self._n_features = 0

    def fit(self, x, y) -> "RandomForestClassifier":
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=int)
        if x.ndim != 2:
            raise ValueError("x must be a 2-D matrix")
        if len(x) != len(y):
            raise ValueError("x and y must align")
        self._n_features = x.shape[1]
        n = len(x)
        rng = np.random.default_rng(self.random_state)
        self._trees = []
        self._oob_indices = []
        for tree_index in range(self.n_estimators):
            seed = int(rng.integers(0, 2**31 - 1))
            if self.bootstrap:
                sample = rng.integers(0, n, size=n)
                oob = np.setdiff1d(np.arange(n), np.unique(sample))
            else:
                sample = np.arange(n)
                oob = np.array([], dtype=int)
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                random_state=seed,
            )
            tree.fit(x[sample], y[sample])
            self._trees.append(tree)
            self._oob_indices.append(oob)
        self._train_x = x
        self._train_y = y
        return self

    def _check_fitted(self) -> None:
        if not self._trees:
            raise RuntimeError("forest is not fitted; call fit() first")

    def predict_proba(self, x) -> np.ndarray:
        """Mean of per-tree class probabilities, shape ``(n, 2)``."""
        self._check_fitted()
        x = np.asarray(x, dtype=float)
        total = np.zeros((len(x), 2))
        for tree in self._trees:
            total += tree.predict_proba(x)
        return total / len(self._trees)

    def predict(self, x) -> np.ndarray:
        """Majority-probability class at the 0.5 threshold."""
        return (self.predict_proba(x)[:, 1] >= 0.5).astype(int)

    def oob_score(self) -> float:
        """Out-of-bag accuracy (requires ``bootstrap=True``).

        Each sample is scored only by trees that did not see it; samples
        never out-of-bag are skipped.
        """
        self._check_fitted()
        if not self.bootstrap:
            raise RuntimeError("OOB score requires bootstrap sampling")
        n = len(self._train_x)
        votes = np.zeros(n)
        counts = np.zeros(n)
        for tree, oob in zip(self._trees, self._oob_indices):
            if oob.size == 0:
                continue
            votes[oob] += tree.predict_proba(self._train_x[oob])[:, 1]
            counts[oob] += 1
        seen = counts > 0
        if not seen.any():
            raise RuntimeError("no out-of-bag samples; add trees or data")
        predictions = (votes[seen] / counts[seen]) >= 0.5
        return float((predictions.astype(int) == self._train_y[seen]).mean())

    def feature_importances(self) -> np.ndarray:
        """Split-frequency feature importances (normalized to sum to 1).

        A lightweight proxy for impurity-decrease importances: how often
        each feature is chosen for a split across the forest, weighted by
        the number of samples at the split node.
        """
        self._check_fitted()
        importances = np.zeros(self._n_features)

        def walk(node) -> None:
            if node.is_leaf:
                return
            importances[node.feature] += node.samples
            walk(node.left)
            walk(node.right)

        for tree in self._trees:
            walk(tree._check_fitted())
        total = importances.sum()
        return importances / total if total > 0 else importances
