"""Classification metrics for the content-utility model evaluation.

The paper reports classifier quality as precision and accuracy under
five-fold cross validation ("we got a precision of 0.700 and accuracy of
0.689").  This module provides those plus the usual companions used by the
test-suite and EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ConfusionMatrix:
    """Binary confusion counts; positive class = 1 ("clicked")."""

    true_positive: int
    false_positive: int
    true_negative: int
    false_negative: int

    @property
    def total(self) -> int:
        return (
            self.true_positive
            + self.false_positive
            + self.true_negative
            + self.false_negative
        )

    def accuracy(self) -> float:
        if self.total == 0:
            raise ValueError("empty confusion matrix")
        return (self.true_positive + self.true_negative) / self.total

    def precision(self) -> float:
        denominator = self.true_positive + self.false_positive
        return self.true_positive / denominator if denominator else 0.0

    def recall(self) -> float:
        denominator = self.true_positive + self.false_negative
        return self.true_positive / denominator if denominator else 0.0

    def f1(self) -> float:
        p, r = self.precision(), self.recall()
        return 2 * p * r / (p + r) if (p + r) else 0.0


def confusion_matrix(y_true, y_pred) -> ConfusionMatrix:
    """Build the binary confusion matrix from aligned label vectors."""
    y_true = np.asarray(y_true, dtype=int)
    y_pred = np.asarray(y_pred, dtype=int)
    if y_true.shape != y_pred.shape:
        raise ValueError("label vectors must align")
    if y_true.size == 0:
        raise ValueError("cannot evaluate empty label vectors")
    bad = set(np.unique(np.concatenate([y_true, y_pred]))) - {0, 1}
    if bad:
        raise ValueError(f"labels must be binary 0/1, found {sorted(bad)}")
    return ConfusionMatrix(
        true_positive=int(((y_true == 1) & (y_pred == 1)).sum()),
        false_positive=int(((y_true == 0) & (y_pred == 1)).sum()),
        true_negative=int(((y_true == 0) & (y_pred == 0)).sum()),
        false_negative=int(((y_true == 1) & (y_pred == 0)).sum()),
    )


def accuracy(y_true, y_pred) -> float:
    return confusion_matrix(y_true, y_pred).accuracy()


def precision(y_true, y_pred) -> float:
    return confusion_matrix(y_true, y_pred).precision()


def recall(y_true, y_pred) -> float:
    return confusion_matrix(y_true, y_pred).recall()


def f1_score(y_true, y_pred) -> float:
    return confusion_matrix(y_true, y_pred).f1()


def roc_auc(y_true, scores) -> float:
    """Area under the ROC curve via the rank-sum (Mann-Whitney) identity.

    Ties in scores receive the average rank, so a constant classifier
    scores exactly 0.5.
    """
    y_true = np.asarray(y_true, dtype=int)
    scores = np.asarray(scores, dtype=float)
    if y_true.shape != scores.shape:
        raise ValueError("labels and scores must align")
    positives = int((y_true == 1).sum())
    negatives = int((y_true == 0).sum())
    if positives == 0 or negatives == 0:
        raise ValueError("AUC needs both classes present")
    order = np.argsort(scores, kind="stable")
    ranks = np.empty(len(scores))
    sorted_scores = scores[order]
    # Average ranks over tied groups.
    i = 0
    while i < len(scores):
        j = i
        while j + 1 < len(scores) and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        ranks[order[i : j + 1]] = 0.5 * (i + j) + 1.0
        i = j + 1
    positive_rank_sum = float(ranks[y_true == 1].sum())
    return (positive_rank_sum - positives * (positives + 1) / 2.0) / (
        positives * negatives
    )
