"""Content items and presentation ladders.

A *content item* is the unit of notification in RichNote: a music track a
friend streamed, an album release, a playlist update.  Each item can be
presented to the user at one of several discrete *presentation levels*
(Section III-B of the paper):

* level 0  -- no presentation at all: the notification is not sent
  (zero size, zero utility);
* level 1  -- the smallest real presentation: essential metadata only,
  no media sample;
* levels 2..k_i -- progressively richer presentations, each strictly
  larger in size and strictly higher in presentation utility than the
  previous one (monotone, with diminishing returns).

The :class:`PresentationLadder` enforces these ordering invariants at
construction time so the selection algorithms downstream may rely on them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterator, Sequence


class ContentKind(str, Enum):
    """The Spotify-style publication types that give rise to notifications."""

    FRIEND_FEED = "friend_feed"
    ALBUM_RELEASE = "album_release"
    PLAYLIST_UPDATE = "playlist_update"


@dataclass(frozen=True, slots=True)
class Presentation:
    """One concrete presentation of a content item.

    Attributes
    ----------
    level:
        Discrete presentation level, ``0 <= level <= k_i``.  Level 0 means
        "do not send"; level 1 is metadata-only.
    size_bytes:
        Total byte size of the presentation, ``s(i, j)`` in the paper.
    utility:
        Presentation utility ``U_p(i, j)`` in [0, 1] relative to the full
        content.  Level 0 has utility exactly 0.
    description:
        Human-readable label, e.g. ``"metadata+10s@160kbps"``.
    """

    level: int
    size_bytes: int
    utility: float
    description: str = ""

    def __post_init__(self) -> None:
        if self.level < 0:
            raise ValueError(f"presentation level must be >= 0, got {self.level}")
        if self.size_bytes < 0:
            raise ValueError(f"size must be >= 0, got {self.size_bytes}")
        if self.level == 0 and (self.size_bytes != 0 or self.utility != 0.0):
            raise ValueError("level 0 must have zero size and zero utility")
        if self.utility < 0:
            raise ValueError(f"utility must be >= 0, got {self.utility}")


class PresentationLadder:
    """The ordered set of presentations available for one content item.

    Invariants (Section III-B):

    * level indices are exactly ``0, 1, ..., k``;
    * sizes strictly increase with level (beyond level 0);
    * utilities strictly increase with level ("information never hurts").

    The ladder does not itself enforce diminishing returns; generators that
    build ladders from utility curves (see :mod:`repro.core.presentations`)
    produce concave utility sequences, and :meth:`is_concave` lets callers
    check.
    """

    __slots__ = ("_levels",)

    def __init__(self, presentations: Sequence[Presentation]):
        ladder = sorted(presentations, key=lambda p: p.level)
        if not ladder:
            raise ValueError("ladder must contain at least level 0")
        for expected, pres in enumerate(ladder):
            if pres.level != expected:
                raise ValueError(
                    f"ladder levels must be consecutive from 0; "
                    f"expected {expected}, got {pres.level}"
                )
        if ladder[0].level != 0:
            raise ValueError("ladder must include level 0 (not sent)")
        for lo, hi in zip(ladder, ladder[1:]):
            if hi.size_bytes <= lo.size_bytes:
                raise ValueError(
                    f"sizes must strictly increase with level: "
                    f"level {hi.level} size {hi.size_bytes} <= "
                    f"level {lo.level} size {lo.size_bytes}"
                )
            if hi.utility <= lo.utility:
                raise ValueError(
                    f"utilities must strictly increase with level: "
                    f"level {hi.level} utility {hi.utility} <= "
                    f"level {lo.level} utility {lo.utility}"
                )
        self._levels: tuple[Presentation, ...] = tuple(ladder)

    @property
    def max_level(self) -> int:
        """The richest level ``k_i``."""
        return self._levels[-1].level

    def __len__(self) -> int:
        return len(self._levels)

    def __iter__(self) -> Iterator[Presentation]:
        return iter(self._levels)

    def __getitem__(self, level: int) -> Presentation:
        if not 0 <= level <= self.max_level:
            raise IndexError(f"no presentation at level {level}")
        return self._levels[level]

    def size(self, level: int) -> int:
        """``s(i, j)`` -- byte size of the presentation at ``level``."""
        return self[level].size_bytes

    def utility(self, level: int) -> float:
        """``U_p(i, j)`` -- presentation utility at ``level``."""
        return self[level].utility

    def total_size(self) -> int:
        """``s(i) = sum_j s(i, j)`` -- the queue-backlog size of the item.

        The paper's queue update (Eq. 4) drops *all* presentations of an
        item from the scheduling queue upon delivery, so the backlog
        contribution of an item is the sum over its presentations.
        """
        return sum(p.size_bytes for p in self._levels)

    def is_concave(self) -> bool:
        """Whether marginal utility per level is non-increasing.

        This is the "diminishing returns" property of Section III-A.  It is
        checked with respect to level index; generators built from concave
        curves of size satisfy the stronger gradient-monotonicity used by
        the fractional-MCKP optimality argument.
        """
        gains = [
            hi.utility - lo.utility
            for lo, hi in zip(self._levels, self._levels[1:])
        ]
        return all(a >= b - 1e-12 for a, b in zip(gains, gains[1:]))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(
            f"L{p.level}:{p.size_bytes}B/{p.utility:.3f}" for p in self._levels
        )
        return f"PresentationLadder({inner})"


@dataclass(slots=True)
class ContentItem:
    """A single notifiable content item flowing through the system.

    Attributes
    ----------
    item_id:
        Globally unique identifier.
    user_id:
        The recipient this item is destined for (selection is per-user).
    kind:
        Publication type (friend feed / album release / playlist update).
    created_at:
        Seconds since simulation epoch at which the item became available.
    ladder:
        The presentation ladder for this item.
    content_utility:
        ``U_c(i)`` in [0, 1]: the learned probability that the user consumes
        the item.  Assigned by the utility model before scheduling.
    clicked:
        Ground-truth label from the trace (did the user click it).  Used
        only for evaluation metrics, never by the scheduler.
    click_time:
        Trace timestamp of the recorded click, if any.
    metadata:
        Free-form attributes (track/artist/album ids, popularity...), used
        for feature extraction.
    """

    item_id: int
    user_id: int
    kind: ContentKind
    created_at: float
    ladder: PresentationLadder
    content_utility: float = 0.0
    clicked: bool = False
    click_time: float | None = None
    metadata: dict = field(default_factory=dict)

    def combined_utility(self, level: int) -> float:
        """``U(i, j) = U_c(i) * U_p(i, j)`` (Eq. 1)."""
        return self.content_utility * self.ladder.utility(level)

    def __post_init__(self) -> None:
        if not 0.0 <= self.content_utility <= 1.0:
            raise ValueError(
                f"content utility must be in [0, 1], got {self.content_utility}"
            )
