"""Baseline schedulers: FIFO and UTIL at a fixed presentation level.

Section V-C: "we use two baselines: (1) FIFO that delivers notifications in
the order of their delivery timestamps in the trace, and (2) UTIL that
delivers notifications in decreasing order of utility score ... for both
baseline approaches we need to fix the presentation level to mimic
state-of-the-art techniques."  (Spotify uses FIFO in real-time mode and a
UTIL-like strategy in batch mode.)

Both baselines reuse the round machinery of
:class:`repro.core.scheduler.RoundBasedScheduler`: budgets replenish and
roll over identically; the only difference is the selection rule --
greedily take items in policy order, always at the fixed level, while the
remaining round budget affords them.  An item whose fixed presentation does
not fit is *skipped for this round but stays queued* (head-of-line items
larger than the leftover budget simply wait for rollover, which is what a
fixed-level pipeline does in practice).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.budgets import DataBudget, EnergyBudget
from repro.core.content import ContentItem
from repro.core.scheduler import RoundBasedScheduler
from repro.core.utility import CombinedUtilityModel
from repro.sim.device import MobileDevice

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.delivery import DeliveryEngine


class FixedLevelScheduler(RoundBasedScheduler):
    """Common base: deliver at ``fixed_level`` in a policy-defined order.

    Baselines run behind the same optional fault-tolerant delivery engine
    as RichNote: failed transfers are refunded, retried with backoff
    (possibly degraded below ``fixed_level``) and eventually dead-lettered,
    so a fault schedule stresses every policy identically.
    """

    def __init__(
        self,
        device: MobileDevice,
        data_budget: DataBudget,
        energy_budget: EnergyBudget,
        fixed_level: int,
        utility_model: CombinedUtilityModel | None = None,
        ttl_seconds: float | None = None,
        delivery_engine: "DeliveryEngine | None" = None,
    ) -> None:
        super().__init__(
            device, data_budget, energy_budget, utility_model, ttl_seconds,
            delivery_engine,
        )
        if fixed_level < 1:
            raise ValueError("fixed level must be >= 1 (level 0 sends nothing)")
        self.fixed_level = fixed_level

    def _ordered_queue(self, now: float) -> list[ContentItem]:
        raise NotImplementedError

    def _level_for(self, item: ContentItem) -> int:
        """Clamp the fixed level to the item's ladder."""
        return min(self.fixed_level, item.ladder.max_level)

    def _select(
        self, now: float, effective_budget: int
    ) -> list[tuple[ContentItem, int]]:
        remaining = effective_budget
        chosen: list[tuple[ContentItem, int]] = []
        for item in self._ordered_queue(now):
            level = self._level_for(item)
            size = item.ladder.size(level)
            if size <= remaining:
                chosen.append((item, level))
                remaining -= size
        return chosen


class FifoScheduler(FixedLevelScheduler):
    """FIFO: oldest arrival first, fixed presentation level."""

    def _ordered_queue(self, now: float) -> list[ContentItem]:
        return sorted(self._selectable(now), key=lambda item: item.created_at)


class UtilScheduler(FixedLevelScheduler):
    """UTIL: highest combined utility first, fixed presentation level."""

    def _ordered_queue(self, now: float) -> list[ContentItem]:
        return sorted(
            self._selectable(now),
            key=lambda item: self.utility_model.utility(
                item, self._level_for(item), now
            ),
            reverse=True,
        )
