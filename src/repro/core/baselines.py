"""Deprecated home of the FIFO/UTIL baselines (moved to ``repro.runtime``).

Section V-C: "we use two baselines: (1) FIFO that delivers notifications in
the order of their delivery timestamps in the trace, and (2) UTIL that
delivers notifications in decreasing order of utility score ... for both
baseline approaches we need to fix the presentation level to mimic
state-of-the-art techniques."  (Spotify uses FIFO in real-time mode and a
UTIL-like strategy in batch mode.)

The ordering/fill logic now lives in :class:`repro.runtime.policy.FifoPolicy`
and :class:`repro.runtime.policy.UtilPolicy`, registered as ``fifo`` and
``util``; new code binds them to a :class:`repro.runtime.loop.RoundLoop`::

    from repro.runtime import RoundLoop, registry

    loop = RoundLoop(device, data_budget, energy_budget)
    loop.bind_policy(registry.create("fifo", fixed_level=2))

This module keeps the legacy classes importable.
:class:`FixedLevelScheduler` remains the supported extension seam for
custom orderings (override :meth:`FixedLevelScheduler._ordered_queue`)
and does not warn; the concrete :class:`FifoScheduler` /
:class:`UtilScheduler` emit :class:`DeprecationWarning`.
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING

from repro.core.budgets import DataBudget, EnergyBudget
from repro.core.content import ContentItem
from repro.core.scheduler import RoundBasedScheduler
from repro.core.utility import CombinedUtilityModel
from repro.runtime.policy import FifoPolicy, FixedLevelPolicy, UtilPolicy
from repro.sim.device import MobileDevice

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.delivery import DeliveryEngine

__all__ = ["FifoScheduler", "FixedLevelScheduler", "UtilScheduler"]


class FixedLevelScheduler(RoundBasedScheduler):
    """Common base: deliver at ``fixed_level`` in a policy-defined order.

    Baselines run behind the same optional fault-tolerant delivery engine
    as RichNote: failed transfers are refunded, retried with backoff
    (possibly degraded below ``fixed_level``) and eventually dead-lettered,
    so a fault schedule stresses every policy identically.

    Subclasses define :meth:`_ordered_queue`; level clamping and greedy
    fill delegate to the bound :class:`~repro.runtime.policy.FixedLevelPolicy`.
    """

    #: Which policy class backs instances; concrete baselines override.
    _policy_cls: type[FixedLevelPolicy] = FixedLevelPolicy

    def __init__(
        self,
        device: MobileDevice,
        data_budget: DataBudget,
        energy_budget: EnergyBudget,
        fixed_level: int,
        utility_model: CombinedUtilityModel | None = None,
        ttl_seconds: float | None = None,
        delivery_engine: "DeliveryEngine | None" = None,
    ) -> None:
        super().__init__(
            device, data_budget, energy_budget, utility_model, ttl_seconds,
            delivery_engine,
        )
        self.bind_policy(self._policy_cls(fixed_level))

    @property
    def fixed_level(self) -> int:
        return self.policy.fixed_level

    def _ordered_queue(self, now: float) -> list[ContentItem]:
        raise NotImplementedError

    def _level_for(self, item: ContentItem) -> int:
        """Clamp the fixed level to the item's ladder."""
        return self.policy.level_for(item)

    def _select(
        self, now: float, effective_budget: int
    ) -> list[tuple[ContentItem, int]]:
        return self.policy.fill(self._ordered_queue(now), effective_budget)


class FifoScheduler(FixedLevelScheduler):
    """Deprecated: FIFO baseline; bind the ``fifo`` policy instead."""

    _policy_cls = FifoPolicy

    def __init__(self, *args, **kwargs) -> None:
        warnings.warn(
            "repro.core.baselines.FifoScheduler is deprecated; build a "
            "repro.runtime.RoundLoop and bind the 'fifo' policy via "
            "repro.runtime.registry.create('fifo', fixed_level=...)",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__(*args, **kwargs)

    def _ordered_queue(self, now: float) -> list[ContentItem]:
        return self.policy.order_items(
            self._selectable(now), now, self.utility_model
        )


class UtilScheduler(FixedLevelScheduler):
    """Deprecated: UTIL baseline; bind the ``util`` policy instead."""

    _policy_cls = UtilPolicy

    def __init__(self, *args, **kwargs) -> None:
        warnings.warn(
            "repro.core.baselines.UtilScheduler is deprecated; build a "
            "repro.runtime.RoundLoop and bind the 'util' policy via "
            "repro.runtime.registry.create('util', fixed_level=...)",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__(*args, **kwargs)

    def _ordered_queue(self, now: float) -> list[ContentItem]:
        return self.policy.order_items(
            self._selectable(now), now, self.utility_model
        )
