"""Fault-tolerant delivery engine: retries, refunds, dead letters.

The round loop of :class:`repro.runtime.loop.RoundLoop` treats
delivery as atomic: a selected presentation is debited and recorded in one
step.  This module inserts a failure surface between selection and
delivery.  Each attempt is judged by a :class:`repro.sim.faults.FaultPolicy`;
on failure the engine

* **refunds** the un-transferred bytes to the :class:`DataBudget` and the
  proportional energy share to the virtual ``P(t)`` queue, so Lyapunov
  state reflects what was actually spent;
* charges the bytes that *were* spent over the air as waste (a user's data
  plan does not refund a dropped preview);
* schedules a **retry** with exponential backoff and full jitter -- the
  item stays in the scheduling queue but is ineligible until its backoff
  expires, and after repeated failures its presentation is **degraded**
  (capped one level below the last failed attempt) so the retry is cheaper
  and likelier to fit the remaining round budget;
* **dead-letters** the item (a structured
  :class:`~repro.runtime.types.DroppedItem`) once attempts are exhausted
  or a retry could not land before the item's TTL.

Byte conservation invariant (checked by the chaos suite): over any run,

``debited == delivered + refunded + wasted``

where *wasted* is exactly the mid-flight bytes of failed attempts.

Determinism: backoff jitter and fault draws both flow through explicit
``random.Random`` streams supplied at construction; the engine never reads
module-level ``random`` state.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.analysis.markers import conserves
from repro.core.budgets import DataBudget, EnergyBudget
from repro.core.channels import Channel
from repro.core.content import ContentItem
from repro.runtime.types import Delivery, DroppedItem, RoundResult
from repro.core.utility import CombinedUtilityModel
from repro.sim.device import MobileDevice
from repro.sim.faults import FaultPolicy, TransferContext


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Bounded retry with exponential backoff and full jitter.

    The backoff before attempt ``n+1`` is drawn uniformly from
    ``[0, min(max_backoff, base * 2**(n-1))]`` ("full jitter", the
    decorrelating variant recommended for thundering-herd avoidance).
    """

    max_attempts: int = 4
    base_backoff_seconds: float = 900.0
    max_backoff_seconds: float = 4 * 3600.0
    #: After this many failed attempts, redelivery is capped one
    #: presentation level below the last failure (never below level 1).
    degrade_after_attempts: int = 2

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_backoff_seconds < 0 or self.max_backoff_seconds < 0:
            raise ValueError("backoff durations must be >= 0")
        if self.max_backoff_seconds < self.base_backoff_seconds:
            raise ValueError("max backoff must be >= base backoff")
        if self.degrade_after_attempts < 1:
            raise ValueError("degrade_after_attempts must be >= 1")

    def backoff_seconds(self, failed_attempts: int, rng: random.Random) -> float:
        """Full-jitter delay after the ``failed_attempts``-th failure."""
        if failed_attempts < 1:
            raise ValueError("failed_attempts must be >= 1")
        ceiling = min(
            self.max_backoff_seconds,
            self.base_backoff_seconds * (2.0 ** (failed_attempts - 1)),
        )
        return rng.uniform(0.0, ceiling)


@dataclass
class ChannelDeliveryStats:
    """Per-channel slice of the engine counters (byte figures are billed)."""

    attempts: int = 0
    delivered: int = 0
    failed_attempts: int = 0
    retries_scheduled: int = 0
    dead_letters: int = 0
    bytes_delivered: float = 0.0


@dataclass
class DeliveryStats:
    """Cumulative engine counters (mirrored per-round into RoundResult).

    Byte counters are in *billed* (data-budget) bytes; on the legacy
    single-push path billed and wire bytes coincide.  ``per_channel``
    breaks attempts/retries/dead-letters down by delivery channel.
    """

    attempts: int = 0
    delivered: int = 0
    failed_attempts: int = 0
    retries_scheduled: int = 0
    dead_letters: int = 0
    bytes_debited: float = 0.0
    bytes_delivered: float = 0.0
    bytes_refunded: float = 0.0
    bytes_wasted: float = 0.0
    energy_refunded_joules: float = 0.0
    fault_counts: dict[str, int] = field(default_factory=dict)
    per_channel: dict[str, ChannelDeliveryStats] = field(default_factory=dict)

    def channel(self, name: str) -> ChannelDeliveryStats:
        stats = self.per_channel.get(name)
        if stats is None:
            stats = ChannelDeliveryStats()
            self.per_channel[name] = stats
        return stats

    def conservation_error(self) -> float:
        """``|debited - (delivered + refunded + wasted)|`` -- 0 when sound."""
        return abs(
            self.bytes_debited
            - (self.bytes_delivered + self.bytes_refunded + self.bytes_wasted)
        )


@dataclass(slots=True)
class _RetryState:
    """Engine-private per-item retry bookkeeping."""

    attempts: int = 0
    next_eligible: float = float("-inf")
    level_cap: int | None = None
    #: Channel of the most recent attempt (dead-letter attribution).
    channel: str = "push"


class DeliveryEngine:
    """Per-item delivery attempts with retry, refund and dead-lettering.

    Parameters
    ----------
    fault_policy:
        Judge of each attempt; ``None`` means every attempt succeeds (the
        engine then reproduces the atomic fast path byte for byte).
    retry:
        Backoff/degradation/dead-letter policy.
    rng:
        Explicit seeded stream for backoff jitter *and* fault draws.
        Required so runs are reproducible from configuration alone.
    """

    def __init__(
        self,
        fault_policy: FaultPolicy | None = None,
        retry: RetryPolicy | None = None,
        rng: random.Random | None = None,
    ) -> None:
        self.fault_policy = fault_policy
        self.retry = retry or RetryPolicy()
        self.rng = rng or random.Random(0)
        self.stats = DeliveryStats()
        self._states: dict[int, _RetryState] = {}

    # -- scheduling-queue hooks ---------------------------------------------

    def eligible(self, item: ContentItem, now: float) -> bool:
        """Is the item out of backoff and allowed another attempt?"""
        state = self._states.get(item.item_id)
        return state is None or now >= state.next_eligible

    def level_cap(self, item: ContentItem) -> int | None:
        """Degraded max level for a previously failed item, if any."""
        state = self._states.get(item.item_id)
        return None if state is None else state.level_cap

    def apply_level_caps(self, selected: list) -> list:
        """Clamp selected levels to each item's degradation cap.

        Accepts ``(item, level)`` pairs or ``(item, level, channel)``
        triples; the channel element passes through untouched.
        """
        capped: list = []
        for sel in selected:
            item, level = sel[0], sel[1]
            cap = self.level_cap(item)
            if cap is not None and level > cap:
                level = cap
            capped.append((item, level, *sel[2:]))
        return capped

    # -- the delivery step ---------------------------------------------------

    @conserves("bytes_debited == bytes_delivered + bytes_refunded + bytes_wasted")
    def deliver_batch(
        self,
        now: float,
        selected: list,
        device: MobileDevice,
        data_budget: DataBudget,
        energy_budget: EnergyBudget,
        utility_model: CombinedUtilityModel,
        result: RoundResult,
        ttl_seconds: float | None,
    ) -> set[int]:
        """Attempt each selected presentation; returns item ids to drop
        from the scheduling queue (delivered or dead-lettered).

        ``selected`` entries are ``(item, level)`` pairs (legacy push
        path) or ``(item, level, channel)`` triples; with a channel the
        attempt rides that channel's ladder (*wire* bytes over the air,
        priced for energy) while the data budget is charged the
        channel's *billed* bytes, and every counter is also attributed
        to the channel in :attr:`DeliveryStats.per_channel`.

        Accounting per attempt billing ``s`` that fails at wire fraction
        ``f``: debit ``s``; refund ``(1-f)*s`` to the data budget; count
        ``f*s`` as wasted.  Energy follows the same split on the
        attempt's proportional share of the batch energy, bounded by
        what the debit actually drained (the virtual queue floors at
        zero).
        """
        removed: set[int] = set()
        if not selected:
            return removed
        channels: list[Channel | None] = [
            sel[2] if len(sel) == 3 else None for sel in selected
        ]
        pairs = [(sel[0], sel[1]) for sel in selected]
        sizes = [
            item.ladder.size(level) if channel is None
            else channel.wire_size(item, level)
            for (item, level), channel in zip(pairs, channels)
        ]
        batch_energy = device.download_batch(sizes)
        total_size = sum(sizes)
        for (item, level), channel, size in zip(pairs, channels, sizes):
            billed = (
                size if channel is None else channel.cost.billed_bytes(size)
            )
            channel_name = "push" if channel is None else channel.name
            channel_stats = self.stats.channel(channel_name)
            share = batch_energy * (size / total_size) if total_size else 0.0
            bytes_drained = data_budget.debit(billed, channel=channel_name)
            energy_drained = energy_budget.debit(share)
            self.stats.bytes_debited += billed
            result.debited_bytes += billed
            state = self._states.setdefault(item.item_id, _RetryState())
            state.attempts += 1
            state.channel = channel_name
            self.stats.attempts += 1
            channel_stats.attempts += 1
            result.attempts += 1

            outcome = None
            if self.fault_policy is not None:
                outcome = self.fault_policy.sample(
                    TransferContext(
                        item_id=item.item_id,
                        level=level,
                        size_bytes=size,
                        attempt=state.attempts,
                        time=now,
                        network_state=device.network.state,
                    ),
                    self.rng,
                )

            if outcome is None:
                self.stats.delivered += 1
                self.stats.bytes_delivered += billed
                channel_stats.delivered += 1
                channel_stats.bytes_delivered += billed
                result.deliveries.append(
                    Delivery(
                        time=now,
                        user_id=device.user_id,
                        item=item,
                        level=level,
                        size_bytes=size,
                        energy_joules=share,
                        utility=(
                            utility_model.utility(item, level, now)
                            if channel is None
                            else channel.utility(utility_model, item, level, now)
                        ),
                        channel=channel_name,
                    )
                )
                removed.add(item.item_id)
                del self._states[item.item_id]
                continue

            # Failed attempt: refund the un-transferred remainder.
            fraction = outcome.fraction_completed
            refund_bytes = min(billed * (1.0 - fraction), bytes_drained)
            wasted = billed - refund_bytes
            data_budget.credit(refund_bytes, channel=channel_name)
            energy_refund = min(share * (1.0 - fraction), energy_drained)
            energy_budget.credit(energy_refund)
            device.cancel_transfer(size, fraction, share)

            kind = outcome.kind.value
            self.stats.failed_attempts += 1
            channel_stats.failed_attempts += 1
            self.stats.bytes_refunded += refund_bytes
            self.stats.bytes_wasted += wasted
            self.stats.energy_refunded_joules += energy_refund
            self.stats.fault_counts[kind] = self.stats.fault_counts.get(kind, 0) + 1
            result.failed_attempts += 1
            result.refunded_bytes += refund_bytes
            result.wasted_bytes += wasted
            result.fault_counts[kind] = result.fault_counts.get(kind, 0) + 1

            if state.attempts >= self.retry.max_attempts:
                self._dead_letter(
                    item, now, f"delivery_failed:{kind}", state, result, removed
                )
                continue
            backoff = self.retry.backoff_seconds(state.attempts, self.rng)
            next_eligible = now + backoff
            if (
                ttl_seconds is not None
                and next_eligible - item.created_at > ttl_seconds
            ):
                self._dead_letter(
                    item, now, f"retry_would_expire:{kind}", state, result, removed
                )
                continue
            state.next_eligible = next_eligible
            if state.attempts >= self.retry.degrade_after_attempts:
                state.level_cap = max(1, level - 1)
            self.stats.retries_scheduled += 1
            channel_stats.retries_scheduled += 1
            result.retries_scheduled += 1
        return removed

    def _dead_letter(
        self,
        item: ContentItem,
        now: float,
        reason: str,
        state: _RetryState,
        result: RoundResult,
        removed: set[int],
    ) -> None:
        result.dropped.append(
            DroppedItem(
                time=now,
                item=item,
                reason=reason,
                attempts=state.attempts,
                channel=state.channel,
            )
        )
        result.dead_letters += 1
        self.stats.dead_letters += 1
        self.stats.channel(state.channel).dead_letters += 1
        removed.add(item.item_id)
        del self._states[item.item_id]
