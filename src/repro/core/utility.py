"""Utility models: content utility, presentation utility and their blend.

Section III-A defines the utility of a notification as

    U(i, j) = U_c(i) x U_p(i, j)                                   (Eq. 1)

where ``U_c`` is the *content utility* -- the probability that the user
consumes item *i* given its features -- and ``U_p`` is the *presentation
utility* of showing the item at level *j*.

Content utility is learned: the paper trains a Random Forest on Spotify
click/hover logs and maps the classifier's confidence into a probability:

    U_c(i) = Pr(x_i = 1)      if the predicted class is "clicked"
    U_c(i) = 1 - Pr(x_i = 0)  otherwise

Both branches equal the predicted probability of the "clicked" class, which
is how :class:`LearnedContentUtility` computes it.

Presentation utility comes from user surveys; this module consumes any
callable or ladder-backed model (see :mod:`repro.core.presentations` and
:mod:`repro.survey`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Protocol, Sequence

from repro.core.content import ContentItem


class ContentUtilityModel(Protocol):
    """Anything that can score ``U_c(i)`` for a content item."""

    def content_utility(self, item: ContentItem) -> float:
        """Return ``U_c(i)`` in [0, 1]."""
        ...  # pragma: no cover - protocol


@dataclass(frozen=True)
class OracleContentUtility:
    """Ground-truth-backed utility for ablation experiments.

    Scores clicked items at ``high`` and unclicked at ``low``.  Useful to
    separate scheduling effects from classifier error.
    """

    high: float = 0.9
    low: float = 0.1

    def __post_init__(self) -> None:
        if not 0.0 <= self.low <= self.high <= 1.0:
            raise ValueError("need 0 <= low <= high <= 1")

    def content_utility(self, item: ContentItem) -> float:
        return self.high if item.clicked else self.low


class LearnedContentUtility:
    """``U_c`` backed by a trained classifier with ``predict_proba``.

    Parameters
    ----------
    classifier:
        Any object exposing ``predict_proba(X) -> array of shape (n, 2)``
        with column 1 the probability of the "clicked" class (the interface
        of :class:`repro.ml.forest.RandomForestClassifier`).
    featurizer:
        Maps a :class:`ContentItem` to its feature vector, matching the
        feature layout the classifier was trained with (see
        :class:`repro.ml.dataset.FeatureExtractor`).
    """

    def __init__(self, classifier, featurizer) -> None:
        self._classifier = classifier
        self._featurizer = featurizer

    def content_utility(self, item: ContentItem) -> float:
        features = self._featurizer.features_for_item(item)
        proba = self._classifier.predict_proba([features])[0]
        clicked_probability = float(proba[1])
        if not 0.0 <= clicked_probability <= 1.0:
            raise ValueError(
                f"classifier produced probability {clicked_probability} outside [0, 1]"
            )
        return clicked_probability

    def annotate(self, items: Sequence[ContentItem]) -> None:
        """Batch-score items, writing ``item.content_utility`` in place."""
        if not items:
            return
        matrix = [self._featurizer.features_for_item(item) for item in items]
        probabilities = self._classifier.predict_proba(matrix)
        for item, row in zip(items, probabilities):
            item.content_utility = float(row[1])


@dataclass(frozen=True)
class ExponentialAging:
    """Recency decay of content utility (the paper's "aging factor").

    ``U_c`` is multiplied by ``exp(-age / tau)`` where ``age`` is the time
    since the item was created.  ``tau`` is the mean lifetime in seconds.
    Section III-A lists recency among the content-utility features; we expose
    it as an explicit post-hoc decay so schedulers can re-age queued items
    every round.
    """

    tau_seconds: float = 6 * 3600.0

    def __post_init__(self) -> None:
        if self.tau_seconds <= 0:
            raise ValueError("tau must be positive")

    def decay(self, base_utility: float, age_seconds: float) -> float:
        if age_seconds < 0:
            raise ValueError("age must be >= 0")
        return base_utility * math.exp(-age_seconds / self.tau_seconds)


class AgingPolicy(Protocol):
    """Any recency-decay rule: exponential, linear, step-deadline..."""

    def decay(self, base_utility: float, age_seconds: float) -> float:
        """Return the decayed utility of ``base_utility`` at ``age_seconds``."""
        ...  # pragma: no cover - protocol


@dataclass
class CombinedUtilityModel:
    """Blends content and presentation utility per Eq. 1, with optional aging.

    This is the object the schedulers consult.  ``utility(item, level, now)``
    returns ``U(i, j)`` -- when ``aging`` is set the content component is
    decayed by the item's age at time ``now``.
    """

    aging: AgingPolicy | None = None

    def utility(self, item: ContentItem, level: int, now: float | None = None) -> float:
        content = item.content_utility
        if self.aging is not None and now is not None:
            age = max(0.0, now - item.created_at)
            content = self.aging.decay(content, age)
        return content * item.ladder.utility(level)

    def utilities_for_ladder(
        self, item: ContentItem, now: float | None = None
    ) -> list[float]:
        """``[U(i, 0), U(i, 1), ..., U(i, k_i)]`` for MCKP construction."""
        return [
            self.utility(item, level, now)
            for level in range(item.ladder.max_level + 1)
        ]


@dataclass(frozen=True)
class LinearAging:
    """Linear recency decay: utility reaches zero at ``lifetime_seconds``.

    A harsher alternative to :class:`ExponentialAging` for content whose
    value expires outright (e.g. "friend is listening right now" feeds).
    Interchangeable with the other aging policies via ``decay()``.
    """

    lifetime_seconds: float = 24 * 3600.0

    def __post_init__(self) -> None:
        if self.lifetime_seconds <= 0:
            raise ValueError("lifetime must be positive")

    def decay(self, base_utility: float, age_seconds: float) -> float:
        if age_seconds < 0:
            raise ValueError("age must be >= 0")
        remaining = max(0.0, 1.0 - age_seconds / self.lifetime_seconds)
        return base_utility * remaining


@dataclass(frozen=True)
class StepDeadlineAging:
    """Full utility until a deadline, a residual fraction afterwards.

    Models the real-time/batch split of Section II: a friend-feed
    notification is worth full value while the friend is plausibly still
    listening, and only archival value afterwards.
    """

    deadline_seconds: float = 2 * 3600.0
    residual_fraction: float = 0.1

    def __post_init__(self) -> None:
        if self.deadline_seconds <= 0:
            raise ValueError("deadline must be positive")
        if not 0.0 <= self.residual_fraction <= 1.0:
            raise ValueError("residual fraction must be in [0, 1]")

    def decay(self, base_utility: float, age_seconds: float) -> float:
        if age_seconds < 0:
            raise ValueError("age must be >= 0")
        if age_seconds <= self.deadline_seconds:
            return base_utility
        return base_utility * self.residual_fraction
