"""The paper's primary contribution: utility-driven selection + scheduling."""

from repro.core.content import ContentItem, ContentKind, Presentation, PresentationLadder
from repro.core.presentations import AudioPresentationSpec, build_audio_ladder
from repro.core.mckp import (
    MckpInstance,
    MckpItem,
    MckpSolution,
    convex_hull_levels,
    fractional_upper_bound,
    select_presentations,
    select_presentations_general,
    solve_exact_dp,
)
from repro.core.lyapunov import LyapunovConfig, LyapunovController, LyapunovState
from repro.core.budgets import DataBudget, EnergyBudget
from repro.core.utility import (
    AgingPolicy,
    CombinedUtilityModel,
    ExponentialAging,
    LearnedContentUtility,
    LinearAging,
    OracleContentUtility,
    StepDeadlineAging,
)
from repro.core.scheduler import (
    Delivery,
    DroppedItem,
    RichNoteScheduler,
    RoundBasedScheduler,
    RoundResult,
)
from repro.core.delivery import DeliveryEngine, DeliveryStats, RetryPolicy
from repro.core.baselines import FifoScheduler, FixedLevelScheduler, UtilScheduler
from repro.core.media import (
    ImagePresentationSpec,
    LadderRegistry,
    VideoPresentationSpec,
    build_image_ladder,
    build_video_ladder,
    default_registry,
)
from repro.core.multifeed import FeedCadences, MultiFeedScheduler
