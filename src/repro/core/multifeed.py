"""Per-feed round cadences (Section II's round-based model).

"RichNote incorporates a round-based model for notification delivery where
notifications are analyzed, selected and delivered in discrete time frames
called rounds -- this provides a middle-ground between the real-time and
batch modes and allows us to tune time duration of each round proportional
to the frequency of the feed.  For example, friend feeds can be delivered
every few minutes whereas notifications related to artist and playlists can
be delivered in every few hours."

:class:`MultiFeedScheduler` composes with any round-based scheduler: items
are held in per-kind release buffers and only become schedulable when their
feed's cadence ticks.  The underlying scheduler runs at the *base* period
(the finest cadence), so friend-feed items flow through every base round
while album/playlist items batch up and enter together at their coarser
cadence -- exactly the analyze-select-deliver batching the paper describes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.content import ContentItem, ContentKind
from repro.runtime.loop import RoundLoop
from repro.runtime.types import RoundResult


@dataclass(frozen=True)
class FeedCadences:
    """Round period per publication kind, seconds.

    Defaults follow the paper's example: friend feeds every few minutes,
    artist/playlist feeds every few hours.  Every period must be an integer
    multiple of the base period.
    """

    base_period: float = 300.0  # 5 minutes
    periods: dict[ContentKind, float] = field(
        default_factory=lambda: {
            ContentKind.FRIEND_FEED: 300.0,  # few minutes
            ContentKind.ALBUM_RELEASE: 4 * 3600.0,  # few hours
            ContentKind.PLAYLIST_UPDATE: 4 * 3600.0,
        }
    )

    def __post_init__(self) -> None:
        if self.base_period <= 0:
            raise ValueError("base period must be positive")
        for kind in ContentKind:
            if kind not in self.periods:
                raise ValueError(f"missing cadence for {kind}")
        for kind, period in self.periods.items():
            ratio = period / self.base_period
            if period <= 0 or abs(ratio - round(ratio)) > 1e-9 or ratio < 1:
                raise ValueError(
                    f"cadence for {kind} ({period}s) must be a positive "
                    f"integer multiple of the base period ({self.base_period}s)"
                )

    def ticks_per_release(self, kind: ContentKind) -> int:
        return round(self.periods[kind] / self.base_period)


class MultiFeedScheduler:
    """Gates items into a round-based scheduler on per-feed cadences.

    The wrapped scheduler's own round period must equal the base cadence;
    callers drive :meth:`run_round` once per base period, and this wrapper
    releases each feed's buffered items when that feed's cadence boundary
    is crossed.
    """

    def __init__(
        self,
        scheduler: RoundLoop,
        cadences: FeedCadences | None = None,
    ) -> None:
        self.scheduler = scheduler
        self.cadences = cadences or FeedCadences()
        self._buffers: dict[ContentKind, list[ContentItem]] = {
            kind: [] for kind in ContentKind
        }
        self._ticks = 0

    def enqueue(self, item: ContentItem) -> None:
        """Buffer an item until its feed's next cadence boundary."""
        self._buffers[item.kind].append(item)

    def buffered(self, kind: ContentKind) -> int:
        return len(self._buffers[kind])

    @property
    def pending_items(self) -> int:
        held = sum(len(buffer) for buffer in self._buffers.values())
        return held + self.scheduler.pending_items

    def run_round(self, now: float, round_seconds: float | None = None) -> RoundResult:
        """One base-period round: release due feeds, then schedule.

        ``round_seconds`` defaults to the base period and must equal it --
        the wrapper owns the cadence arithmetic.
        """
        period = self.cadences.base_period
        if round_seconds is not None and not math.isclose(round_seconds, period):
            raise ValueError(
                f"multi-feed rounds run at the base period ({period}s); "
                f"got {round_seconds}s"
            )
        self._ticks += 1
        for kind, buffer in self._buffers.items():
            if not buffer:
                continue
            if self._ticks % self.cadences.ticks_per_release(kind) == 0:
                for item in buffer:
                    self.scheduler.enqueue(item)
                self._buffers[kind] = []
        return self.scheduler.run_round(now, period)
