"""Generators that build presentation ladders for media content.

Section III-B assumes a per-content-type "generator" exists that produces
presentations at different levels of detail.  This module implements the
audio generator used in the paper's evaluation (Section V-C):

* six levels: metadata-only plus previews of 5, 10, 20, 30 and 40 seconds;
* fixed bitrate of 160 kbps (Spotify default), so a *d*-second preview is
  ``d x 20`` KB (160 kbps = 20 KB/s, uncompressed as assumed in the paper);
* average metadata size of 200 bytes;
* presentation utility: ~1% of the utility comes from metadata and the rest
  follows the survey-fitted logarithmic duration curve (Eq. 8), normalized
  so the richest level has utility 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.core.content import Presentation, PresentationLadder

#: Spotify default audio bitrate used in the evaluation (bits per second).
DEFAULT_BITRATE_BPS = 160_000

#: Bytes of audio per second of preview at the default bitrate (20 KB/s).
BYTES_PER_SECOND = DEFAULT_BITRATE_BPS // 8

#: Average notification metadata size (track/artist/album names + URL),
#: per the paper's Section V-C, sourced from [2].
METADATA_SIZE_BYTES = 200

#: Preview durations (seconds) forming levels 2..6 in the evaluation.
DEFAULT_PREVIEW_DURATIONS = (5.0, 10.0, 20.0, 30.0, 40.0)

#: Fraction of total presentation utility attributed to the metadata alone.
METADATA_UTILITY_FRACTION = 0.01


def logarithmic_duration_utility(d: float, a: float = -0.397, b: float = 0.352) -> float:
    """The survey-fitted logarithmic utility of a *d*-second preview (Eq. 8).

    ``util(d) = a + b * log(1 + d)`` with the paper's fitted constants
    ``a = -0.397``, ``b = 0.352``.  Clamped below at 0 (for very short
    durations the raw fit dips negative, which the paper treats as "no
    useful preview").
    """
    import math

    if d < 0:
        raise ValueError(f"duration must be >= 0, got {d}")
    return max(0.0, a + b * math.log(1.0 + d))


def polynomial_duration_utility(
    d: float, a: float = 0.253, big_d: float = 40.0, b: float = 2.087
) -> float:
    """The alternative polynomial fit (Eq. 9): ``a * (1 - d/D)^b``.

    Note: the paper reports this as a *decreasing* function of ``d`` because
    it models the survey's stop-point density rather than its CDF; it is
    retained for the Figure 2(b) comparison and is not used as a ladder
    utility curve.
    """
    if d < 0:
        raise ValueError(f"duration must be >= 0, got {d}")
    base = 1.0 - d / big_d
    if base < 0.0:
        return 0.0
    return a * base**b


@dataclass(frozen=True)
class AudioPresentationSpec:
    """Configuration of the audio presentation ladder.

    Attributes mirror Section V-C of the paper.  ``duration_utility`` maps a
    preview duration in seconds to a raw (unnormalized) utility score; the
    ladder normalizes so that the richest level has utility 1.
    """

    preview_durations: Sequence[float] = DEFAULT_PREVIEW_DURATIONS
    bitrate_bps: int = DEFAULT_BITRATE_BPS
    metadata_size_bytes: int = METADATA_SIZE_BYTES
    metadata_utility_fraction: float = METADATA_UTILITY_FRACTION
    duration_utility: Callable[[float], float] = field(
        default=logarithmic_duration_utility
    )

    def __post_init__(self) -> None:
        durations = tuple(self.preview_durations)
        if any(d <= 0 for d in durations):
            raise ValueError("preview durations must be positive")
        if list(durations) != sorted(set(durations)):
            raise ValueError("preview durations must be strictly increasing")
        if not 0.0 < self.metadata_utility_fraction < 1.0:
            raise ValueError("metadata utility fraction must be in (0, 1)")
        if self.bitrate_bps <= 0:
            raise ValueError("bitrate must be positive")

    def preview_size_bytes(self, duration_s: float) -> int:
        """Byte size of a preview of ``duration_s`` seconds at the bitrate."""
        return int(round(duration_s * self.bitrate_bps / 8.0))


def build_audio_ladder(spec: AudioPresentationSpec | None = None) -> PresentationLadder:
    """Build the six-level audio ladder of the paper's evaluation.

    Levels:

    ====== ==============================  =====================
    level  content                         size
    ====== ==============================  =====================
    0      not sent                        0
    1      metadata only                   200 B
    2..k   metadata + d-second preview     200 B + d x 20 KB
    ====== ==============================  =====================

    Utility: level 1 receives the metadata fraction (1 %); levels 2..k
    receive metadata fraction + (1 - fraction) x normalized duration curve,
    normalized so the longest preview scores exactly 1.
    """
    spec = spec or AudioPresentationSpec()
    durations = tuple(spec.preview_durations)
    raw = [spec.duration_utility(d) for d in durations]
    top = raw[-1]
    if top <= 0:
        raise ValueError("duration utility of the richest level must be positive")
    if any(hi <= lo for lo, hi in zip(raw, raw[1:])):
        raise ValueError("duration utility curve must be strictly increasing")

    meta_frac = spec.metadata_utility_fraction
    presentations = [
        Presentation(level=0, size_bytes=0, utility=0.0, description="not sent"),
        Presentation(
            level=1,
            size_bytes=spec.metadata_size_bytes,
            utility=meta_frac,
            description="metadata only",
        ),
    ]
    for offset, (duration, score) in enumerate(zip(durations, raw)):
        presentations.append(
            Presentation(
                level=2 + offset,
                size_bytes=spec.metadata_size_bytes
                + spec.preview_size_bytes(duration),
                utility=meta_frac + (1.0 - meta_frac) * (score / top),
                description=(
                    f"metadata+{duration:g}s@{spec.bitrate_bps // 1000}kbps"
                ),
            )
        )
    return PresentationLadder(presentations)


def fixed_level_ladder(
    ladder: PresentationLadder, level: int
) -> PresentationLadder:
    """Collapse a ladder to {not sent, one fixed level}.

    The FIFO and UTIL baselines of the paper deliver at a *fixed*
    presentation level (e.g. metadata + 10 s preview).  This helper builds
    the two-rung ladder such a baseline effectively uses.
    """
    if level < 1 or level > ladder.max_level:
        raise ValueError(
            f"fixed level must be in [1, {ladder.max_level}], got {level}"
        )
    chosen = ladder[level]
    return PresentationLadder(
        [
            Presentation(level=0, size_bytes=0, utility=0.0, description="not sent"),
            Presentation(
                level=1,
                size_bytes=chosen.size_bytes,
                utility=chosen.utility,
                description=chosen.description,
            ),
        ]
    )
