"""Presentation generators for non-audio media: video and images.

The paper's framework is media-agnostic: "the pushed notifications may
include any of a multitude of media presentations that can be scaled in a
variety of well-known ways -- thumbnails of album cover images, previews of
video or audio streams ... Scalable encoding can be employed to degrade the
quality of media content" (Section I), and "video samples can also be
presented in combinations of duration and quality" (Section III-A).  The
evaluation only exercises audio; this module provides the video and image
generators a deployment would add, plus a registry mapping content kinds to
generators (the per-content-type "generator" of Section III-B).

Both generators follow the same recipe as the audio one:

1. enumerate candidate (attribute...) combinations with their sizes;
2. score each with a utility surface exhibiting monotonicity and
   diminishing returns;
3. prune dominated candidates with the skyline (Fig. 2a's rule);
4. emit a :class:`repro.core.content.PresentationLadder` topped by the
   richest surviving candidate, normalized to utility 1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.content import ContentKind, Presentation, PresentationLadder
from repro.core.presentations import (
    METADATA_SIZE_BYTES,
    METADATA_UTILITY_FRACTION,
    AudioPresentationSpec,
    build_audio_ladder,
)
from repro.survey.pareto import CandidatePresentation, pareto_frontier


@dataclass(frozen=True)
class VideoVariant:
    """One (duration, vertical resolution) video preview candidate."""

    duration_s: float
    height_px: int
    bitrate_bps: int

    def size_bytes(self) -> int:
        return int(round(self.duration_s * self.bitrate_bps / 8.0))


#: Typical ABR ladder bitrates per vertical resolution (H.264-era).
VIDEO_BITRATE_BY_HEIGHT = {
    144: 200_000,
    240: 400_000,
    360: 750_000,
    480: 1_200_000,
    720: 2_500_000,
}

#: Perceived-quality multiplier per resolution (saturating).
VIDEO_QUALITY_BY_HEIGHT = {144: 0.45, 240: 0.65, 360: 0.82, 480: 0.93, 720: 1.0}


@dataclass(frozen=True)
class VideoPresentationSpec:
    """Configuration of the video preview ladder.

    Utility surface: ``quality(height) x log-duration``, the video analogue
    of the audio survey's finding that duration dominates with diminishing
    returns, modulated by a saturating fidelity factor.
    """

    preview_durations: Sequence[float] = (3.0, 6.0, 10.0, 15.0)
    heights: Sequence[int] = (144, 240, 360, 480)
    metadata_size_bytes: int = METADATA_SIZE_BYTES
    metadata_utility_fraction: float = METADATA_UTILITY_FRACTION
    max_levels: int = 6

    def __post_init__(self) -> None:
        if not self.preview_durations or not self.heights:
            raise ValueError("need at least one duration and one height")
        if any(d <= 0 for d in self.preview_durations):
            raise ValueError("durations must be positive")
        unknown = set(self.heights) - set(VIDEO_BITRATE_BY_HEIGHT)
        if unknown:
            raise ValueError(f"unknown resolutions: {sorted(unknown)}")
        if self.max_levels < 1:
            raise ValueError("need at least one media level")

    def variants(self) -> list[VideoVariant]:
        return [
            VideoVariant(
                duration_s=duration,
                height_px=height,
                bitrate_bps=VIDEO_BITRATE_BY_HEIGHT[height],
            )
            for duration in self.preview_durations
            for height in self.heights
        ]

    def utility(self, variant: VideoVariant) -> float:
        top = math.log1p(max(self.preview_durations))
        return VIDEO_QUALITY_BY_HEIGHT[variant.height_px] * (
            math.log1p(variant.duration_s) / top
        )


def _ladder_from_candidates(
    candidates: list[CandidatePresentation],
    metadata_size_bytes: int,
    metadata_utility_fraction: float,
    max_levels: int,
    describe: Callable[[tuple], str],
) -> PresentationLadder:
    """Skyline-prune candidates and assemble a normalized ladder.

    After the skyline pass a *concave hull* pass removes LP-dominated
    candidates (those under the chord of their neighbours), so the emitted
    ladder has decreasing utility-size gradients -- the property the greedy
    MCKP selector's optimality argument relies on.
    """
    frontier = pareto_frontier(candidates)
    if not frontier:
        raise ValueError("no candidate presentations survive pruning")
    # Concave-hull pass anchored at the origin (size 0, utility 0).
    hull: list[CandidatePresentation] = []
    for candidate in frontier:
        while hull:
            prev_size = hull[-2].size_bytes if len(hull) >= 2 else 0
            prev_utility = hull[-2].utility if len(hull) >= 2 else 0.0
            gradient_prev = (hull[-1].utility - prev_utility) / (
                hull[-1].size_bytes - prev_size
            )
            gradient_new = (candidate.utility - prev_utility) / (
                candidate.size_bytes - prev_size
            )
            if gradient_new >= gradient_prev:
                hull.pop()
            else:
                break
        hull.append(candidate)
    frontier = hull
    # Thin the frontier to at most max_levels rungs, keeping the extremes
    # (cheapest and richest) and spreading the rest by size.
    if len(frontier) > max_levels:
        if max_levels == 1:
            frontier = [frontier[-1]]  # keep only the richest rung
        else:
            indices = {0, len(frontier) - 1}
            step = (len(frontier) - 1) / (max_levels - 1)
            for i in range(1, max_levels - 1):
                indices.add(round(i * step))
            frontier = [frontier[i] for i in sorted(indices)]
    top_utility = frontier[-1].utility
    meta = metadata_utility_fraction
    presentations = [
        Presentation(0, 0, 0.0, "not sent"),
        Presentation(1, metadata_size_bytes, meta, "metadata only"),
    ]
    for offset, candidate in enumerate(frontier):
        presentations.append(
            Presentation(
                level=2 + offset,
                size_bytes=metadata_size_bytes + candidate.size_bytes,
                utility=meta + (1.0 - meta) * (candidate.utility / top_utility),
                description=describe(candidate.attributes),
            )
        )
    return PresentationLadder(presentations)


def build_video_ladder(spec: VideoPresentationSpec | None = None) -> PresentationLadder:
    """Skyline-pruned video preview ladder (duration x resolution)."""
    spec = spec or VideoPresentationSpec()
    candidates = [
        CandidatePresentation(
            size_bytes=variant.size_bytes(),
            utility=spec.utility(variant),
            attributes=(variant.duration_s, variant.height_px),
        )
        for variant in spec.variants()
    ]
    return _ladder_from_candidates(
        candidates,
        spec.metadata_size_bytes,
        spec.metadata_utility_fraction,
        spec.max_levels,
        lambda attrs: f"video {attrs[0]:g}s@{attrs[1]}p",
    )


@dataclass(frozen=True)
class ImagePresentationSpec:
    """Thumbnail ladder for image content (album covers, photos).

    Candidates are square thumbnails; size grows quadratically with edge
    length (JPEG ~ ``bytes_per_pixel`` after compression) while perceived
    utility grows sub-linearly (log of pixel count), so the ladder has the
    diminishing-returns shape Section III-A requires.
    """

    edge_px: Sequence[int] = (64, 128, 256, 512, 1024)
    bytes_per_pixel: float = 0.35
    metadata_size_bytes: int = METADATA_SIZE_BYTES
    metadata_utility_fraction: float = METADATA_UTILITY_FRACTION

    def __post_init__(self) -> None:
        if not self.edge_px:
            raise ValueError("need at least one thumbnail size")
        if list(self.edge_px) != sorted(set(self.edge_px)):
            raise ValueError("edges must be strictly increasing")
        if any(e <= 0 for e in self.edge_px):
            raise ValueError("edges must be positive")
        if self.bytes_per_pixel <= 0:
            raise ValueError("bytes per pixel must be positive")

    def thumbnail_size_bytes(self, edge: int) -> int:
        return int(round(edge * edge * self.bytes_per_pixel))

    def utility(self, edge: int) -> float:
        top = math.log1p(max(self.edge_px) ** 2)
        return math.log1p(edge**2) / top


def build_image_ladder(spec: ImagePresentationSpec | None = None) -> PresentationLadder:
    """Thumbnail ladder: metadata + square previews of growing edge."""
    spec = spec or ImagePresentationSpec()
    candidates = [
        CandidatePresentation(
            size_bytes=spec.thumbnail_size_bytes(edge),
            utility=spec.utility(edge),
            attributes=(edge,),
        )
        for edge in spec.edge_px
    ]
    return _ladder_from_candidates(
        candidates,
        spec.metadata_size_bytes,
        spec.metadata_utility_fraction,
        max_levels=len(spec.edge_px),
        describe=lambda attrs: f"thumbnail {attrs[0]}x{attrs[0]}",
    )


class LadderRegistry:
    """Maps content kinds to presentation generators (Section III-B).

    "Different generators may exist for different content types, which are
    developed by the content providers."  The broker consults the registry
    at ingest time to attach the right ladder to each item.
    """

    def __init__(self) -> None:
        self._builders: dict[ContentKind, Callable[[], PresentationLadder]] = {}
        self._cache: dict[ContentKind, PresentationLadder] = {}

    def register(
        self, kind: ContentKind, builder: Callable[[], PresentationLadder]
    ) -> None:
        self._builders[kind] = builder
        self._cache.pop(kind, None)

    def ladder_for(self, kind: ContentKind) -> PresentationLadder:
        if kind not in self._builders:
            raise KeyError(f"no presentation generator registered for {kind}")
        if kind not in self._cache:
            self._cache[kind] = self._builders[kind]()
        return self._cache[kind]

    def registered_kinds(self) -> frozenset[ContentKind]:
        return frozenset(self._builders)


def default_registry(
    audio_spec: AudioPresentationSpec | None = None,
) -> LadderRegistry:
    """The Spotify-flavoured registry: audio ladders for every feed kind.

    Album releases could plausibly carry cover-art image ladders instead;
    swap with :func:`build_image_ladder` via :meth:`LadderRegistry.register`.
    """
    registry = LadderRegistry()
    for kind in ContentKind:
        registry.register(kind, lambda spec=audio_spec: build_audio_ladder(spec))
    return registry
