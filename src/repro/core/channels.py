"""Delivery channels: cost curve, latency model and presentation ladder.

The paper evaluates a single push channel whose billed bytes equal the
wire bytes of the chosen presentation.  Real notification stacks deliver
over several transports at once -- push, an in-app inbox, email digests,
messenger-style webhooks -- and each has its own *cost curve* (billed
bytes per wire byte plus envelope overhead), *latency model* and, when
the transport re-renders content, its own *presentation ladder*.

:class:`Channel` packages those three axes.  A channel with no ladder
override and an identity cost curve (:attr:`Channel.is_passthrough`)
behaves exactly like the paper's push channel; a :class:`ChannelSet`
containing only such a channel is the *single-push* configuration, and
every selection/delivery path in the runtime reduces bit-identically to
the legacy single-channel behaviour in that case (asserted by the golden
digests in ``tests/test_runtime.py``).

With several channels configured, selection becomes a joint
(channel x level) multiple-choice knapsack: each item's choice set is the
union of every channel's ladder, priced in *billed* bytes against the
data budget while energy is priced on *wire* bytes
(see :func:`repro.runtime.kernels.merge_channel_rows`).

Built-in channels are registered by name (``push`` / ``inapp`` /
``email`` / ``messenger``); custom channels plug in via
:func:`register_channel` (docs/EXTENDING.md section 12).  The raw cost
tables live in :mod:`repro.core._channel_costs`, which only this module
may import (richlint RL601).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Sequence

from repro.core import _channel_costs
from repro.core.content import ContentItem, Presentation, PresentationLadder

__all__ = [
    "Channel",
    "ChannelCostCurve",
    "ChannelLatency",
    "ChannelSet",
    "builtin_channel",
    "default_channel_set",
    "register_channel",
    "registered_channels",
]


@dataclass(frozen=True, slots=True)
class ChannelCostCurve:
    """Billed bytes as a function of wire bytes.

    ``billed = round(per_byte * wire) + overhead_bytes`` for any non-empty
    payload; a zero-byte payload (level 0, not sent) always bills zero.
    The identity curve (``per_byte=1, overhead=0``) reproduces the
    paper's accounting: billed == wire.
    """

    per_byte: float = 1.0
    overhead_bytes: int = 0

    def __post_init__(self) -> None:
        if self.per_byte < 0:
            raise ValueError(f"per_byte must be >= 0, got {self.per_byte}")
        if self.overhead_bytes < 0:
            raise ValueError(
                f"overhead_bytes must be >= 0, got {self.overhead_bytes}"
            )

    @property
    def is_identity(self) -> bool:
        # Exact on purpose: identity pricing is a configured constant
        # (the push channel's 1.0), never the result of arithmetic.
        return self.per_byte == 1.0 and self.overhead_bytes == 0  # richlint: ignore[RL301] -- config constant, not computed

    def billed_bytes(self, wire_bytes: int) -> int:
        """Data-budget cost of sending ``wire_bytes`` over this channel."""
        if wire_bytes < 0:
            raise ValueError(f"wire_bytes must be >= 0, got {wire_bytes}")
        if wire_bytes == 0:
            return 0
        if self.is_identity:
            return int(wire_bytes)
        return int(round(self.per_byte * wire_bytes)) + self.overhead_bytes


@dataclass(frozen=True, slots=True)
class ChannelLatency:
    """Expected delivery latency: fixed base plus size-proportional term."""

    base_seconds: float = 0.0
    bytes_per_second: float | None = None

    def __post_init__(self) -> None:
        if self.base_seconds < 0:
            raise ValueError(f"base_seconds must be >= 0, got {self.base_seconds}")
        if self.bytes_per_second is not None and self.bytes_per_second <= 0:
            raise ValueError(
                f"bytes_per_second must be > 0 when set, "
                f"got {self.bytes_per_second}"
            )

    def latency_seconds(self, wire_bytes: int) -> float:
        if wire_bytes < 0:
            raise ValueError(f"wire_bytes must be >= 0, got {wire_bytes}")
        if self.bytes_per_second is None:
            return self.base_seconds
        return self.base_seconds + wire_bytes / self.bytes_per_second


@dataclass(frozen=True)
class Channel:
    """One delivery transport.

    ``ladder`` overrides how content is presented on this channel; ``None``
    (push) presents each item's own ladder unchanged.  ``cell_coupled``
    marks channels whose wire bytes ride the cellular link and therefore
    draw from a shared per-cell pool
    (:class:`repro.pubsub.capacity.SharedCellCapacity`).
    """

    name: str
    cost: ChannelCostCurve = field(default_factory=ChannelCostCurve)
    latency: ChannelLatency = field(default_factory=ChannelLatency)
    ladder: PresentationLadder | None = None
    cell_coupled: bool = True

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("channel name must be non-empty")

    @property
    def is_passthrough(self) -> bool:
        """Does this channel behave exactly like the paper's push channel?

        A passthrough channel presents the item's native ladder and bills
        wire bytes one-for-one, so scheduling over it is indistinguishable
        from the legacy single-channel path.
        """
        return self.ladder is None and self.cost.is_identity

    def ladder_for(self, item: ContentItem) -> PresentationLadder:
        return self.ladder if self.ladder is not None else item.ladder

    def max_level(self, item: ContentItem) -> int:
        return self.ladder_for(item).max_level

    def wire_size(self, item: ContentItem, level: int) -> int:
        """Bytes over the air for ``item`` at ``level`` on this channel."""
        return self.ladder_for(item).size(level)

    def billed_size(self, item: ContentItem, level: int) -> int:
        """Data-budget bytes for ``item`` at ``level`` on this channel."""
        return self.cost.billed_bytes(self.wire_size(item, level))

    def utility(self, model, item: ContentItem, level: int, now=None) -> float:
        """Eq. 1 on this channel: decayed ``U_c(i)`` x this ladder's ``U_p``.

        With no ladder override this defers to ``model.utility`` and is
        bit-identical to the single-channel path.
        """
        if self.ladder is None:
            return model.utility(item, level, now)
        content = item.content_utility
        aging = getattr(model, "aging", None)
        if aging is not None and now is not None:
            age = max(0.0, now - item.created_at)
            content = aging.decay(content, age)
        return content * self.ladder.utility(level)


class ChannelSet:
    """An ordered, name-unique set of channels; the first is primary.

    The primary channel is the default route for fixed-level baseline
    policies and for selections that do not name a channel.
    """

    __slots__ = ("_channels", "_by_name")

    def __init__(self, channels: Sequence[Channel]):
        channels = tuple(channels)
        if not channels:
            raise ValueError("a ChannelSet needs at least one channel")
        by_name: dict[str, Channel] = {}
        for channel in channels:
            if channel.name in by_name:
                raise ValueError(f"duplicate channel name {channel.name!r}")
            by_name[channel.name] = channel
        self._channels = channels
        self._by_name = by_name

    @property
    def primary(self) -> Channel:
        return self._channels[0]

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(channel.name for channel in self._channels)

    @property
    def is_single_passthrough(self) -> bool:
        """One passthrough channel: the legacy single-push configuration.

        Runtime paths use this to take the bit-identical legacy branch.
        """
        return len(self._channels) == 1 and self._channels[0].is_passthrough

    def get(self, name: str) -> Channel:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(
                f"unknown channel {name!r}; configured: {list(self.names)}"
            ) from None

    def get_or_primary(self, name: str) -> Channel:
        """The named channel, or the primary when ``name`` is unknown."""
        return self._by_name.get(name, self.primary)

    def __contains__(self, name: object) -> bool:
        return name in self._by_name

    def __iter__(self) -> Iterator[Channel]:
        return iter(self._channels)

    def __len__(self) -> int:
        return len(self._channels)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ChannelSet({list(self.names)})"


def _ladder_from_shape(shape: tuple[tuple[int, float], ...]) -> PresentationLadder:
    levels = [Presentation(level=0, size_bytes=0, utility=0.0)]
    for offset, (size, utility) in enumerate(shape, start=1):
        levels.append(
            Presentation(level=offset, size_bytes=size, utility=utility)
        )
    return PresentationLadder(levels)


def _builtin_factory(name: str) -> Callable[[], Channel]:
    per_byte, overhead = _channel_costs.COST_CURVES[name]
    base_seconds, throughput = _channel_costs.LATENCY_MODELS[name]
    shape = _channel_costs.LADDER_SHAPES.get(name)

    def factory() -> Channel:
        return Channel(
            name=name,
            cost=ChannelCostCurve(per_byte=per_byte, overhead_bytes=overhead),
            latency=ChannelLatency(
                base_seconds=base_seconds, bytes_per_second=throughput
            ),
            ladder=_ladder_from_shape(shape) if shape is not None else None,
            cell_coupled=name in _channel_costs.CELL_COUPLED,
        )

    return factory


_REGISTRY: dict[str, Callable[[], Channel]] = {
    name: _builtin_factory(name) for name in _channel_costs.COST_CURVES
}


def register_channel(
    name: str, factory: Callable[[], Channel], *, replace: bool = False
) -> None:
    """Register a channel factory under ``name`` (EXTENDING.md section 12).

    The factory must build a :class:`Channel` whose ``name`` matches the
    registered name.  Built-ins can only be shadowed with ``replace=True``.
    """
    if not name:
        raise ValueError("channel name must be non-empty")
    if name in _REGISTRY and not replace:
        raise ValueError(
            f"channel {name!r} is already registered (pass replace=True)"
        )
    _REGISTRY[name] = factory


def registered_channels() -> tuple[str, ...]:
    """Names of every registered channel, built-ins first."""
    return tuple(_REGISTRY)


def builtin_channel(name: str) -> Channel:
    """Instantiate a registered channel by name."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown channel {name!r}; registered: {list(_REGISTRY)}"
        ) from None
    channel = factory()
    if channel.name != name:
        raise ValueError(
            f"factory for {name!r} built a channel named {channel.name!r}"
        )
    return channel


def default_channel_set() -> ChannelSet:
    """The paper's configuration: the push channel alone."""
    return ChannelSet([builtin_channel("push")])
