"""Round-based notification schedulers (Algorithm 2 and shared machinery).

Per Section IV, the broker runs one scheduler instance per user.  Each round:

1. items that arrived since the previous round move from the *incoming*
   queue to the *scheduling* queue (their presentation ladders and content
   utilities were assigned on ingest);
2. budgets are replenished -- ``B(t) += theta`` and ``P(t) += e(t)`` while
   ``P(t) <= kappa`` (the device's battery state determines ``e(t)``);
3. a subset of scheduling-queue items is selected, each at a presentation
   level, and moved to the *delivery* queue sorted by descending utility;
4. the delivery queue drains to the device while connectivity and the data
   budget allow; delivered items are debited from both budgets and all of
   their presentations leave the scheduling queue.

:class:`RichNoteScheduler` performs step 3 with the Lyapunov-adjusted MCKP
(Eq. 7 + Algorithm 1).  The FIFO/UTIL baselines in
:mod:`repro.core.baselines` reuse the same round machinery with fixed
presentation levels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (delivery imports us)
    from repro.core.delivery import DeliveryEngine

from repro.analysis.markers import conserves
from repro.core.budgets import DataBudget, EnergyBudget
from repro.core.content import ContentItem
from repro.core.lyapunov import LyapunovConfig, LyapunovController, LyapunovState
from repro.core.mckp import (
    MckpInstance,
    MckpItem,
    select_presentations,
    select_presentations_general,
)
from repro.core.utility import CombinedUtilityModel
from repro.sim.device import MobileDevice


@dataclass(frozen=True)
class Delivery:
    """One presentation delivered to the device."""

    time: float
    user_id: int
    item: ContentItem
    level: int
    size_bytes: int
    energy_joules: float
    utility: float


@dataclass(frozen=True)
class DroppedItem:
    """An item evicted from the scheduling queue without delivery.

    ``reason`` is structured as ``"<cause>"`` or ``"<cause>:<fault_kind>"``,
    e.g. ``"ttl_expired"``, ``"delivery_failed:timeout"``,
    ``"retry_would_expire:disconnect"``.  ``attempts`` counts delivery
    attempts made before the item was dead-lettered (0 when it never
    reached the delivery path).
    """

    time: float
    item: ContentItem
    reason: str
    attempts: int = 0


@dataclass
class RoundResult:
    """Outcome of one scheduling round for one user."""

    round_index: int
    time: float
    deliveries: list[Delivery] = field(default_factory=list)
    dropped: list[DroppedItem] = field(default_factory=list)
    queue_length_after: int = 0
    backlog_bytes_after: float = 0.0
    data_budget_after: float = 0.0
    energy_budget_after: float = 0.0
    connected: bool = True
    # Failure accounting, populated by the fault-tolerant delivery engine
    # (:class:`repro.core.delivery.DeliveryEngine`); all zero on the atomic
    # fast path.
    attempts: int = 0
    failed_attempts: int = 0
    retries_scheduled: int = 0
    dead_letters: int = 0
    debited_bytes: float = 0.0
    refunded_bytes: float = 0.0
    wasted_bytes: float = 0.0
    fault_counts: dict[str, int] = field(default_factory=dict)

    @property
    def delivered_bytes(self) -> float:
        return float(sum(d.size_bytes for d in self.deliveries))

    @property
    def delivered_utility(self) -> float:
        return sum(d.utility for d in self.deliveries)

    @property
    def delivered_energy(self) -> float:
        return sum(d.energy_joules for d in self.deliveries)


class RoundBasedScheduler:
    """Shared queue/budget/delivery machinery for all scheduling policies.

    Subclasses implement :meth:`_select`, returning the (item, level) pairs
    to move to the delivery queue for the round.
    """

    def __init__(
        self,
        device: MobileDevice,
        data_budget: DataBudget,
        energy_budget: EnergyBudget,
        utility_model: CombinedUtilityModel | None = None,
        ttl_seconds: float | None = None,
        delivery_engine: "DeliveryEngine | None" = None,
    ) -> None:
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ValueError("ttl must be positive when set")
        self.device = device
        self.data_budget = data_budget
        self.energy_budget = energy_budget
        self.utility_model = utility_model or CombinedUtilityModel()
        #: Optional fault-tolerant delivery path
        #: (:class:`repro.core.delivery.DeliveryEngine`).  ``None`` keeps
        #: the paper's atomic delivery semantics.
        self.delivery_engine = delivery_engine
        #: Optional notification expiry: items older than this are evicted
        #: at the start of a round instead of being delivered stale.  The
        #: paper keeps items queued indefinitely (None, the default); real
        #: deployments expire friend-feed notifications.
        self.ttl_seconds = ttl_seconds
        self._incoming: list[ContentItem] = []
        self._scheduling: list[ContentItem] = []
        self._round_index = 0
        self.total_dropped = 0

    # -- queue management ---------------------------------------------------

    def enqueue(self, item: ContentItem) -> None:
        """Add a newly arrived item to the incoming queue."""
        if item.user_id != self.device.user_id:
            raise ValueError(
                f"item for user {item.user_id} routed to scheduler of "
                f"user {self.device.user_id}"
            )
        self._incoming.append(item)

    @property
    def pending_items(self) -> int:
        """Items awaiting delivery across incoming + scheduling queues."""
        return len(self._incoming) + len(self._scheduling)

    def backlog_bytes(self) -> float:
        """``Q(t)``: total byte backlog of the scheduling queue.

        Per Eq. 4 an item contributes the sum of all its presentation
        sizes, since delivery drops every presentation of the item.
        """
        return float(sum(item.ladder.total_size() for item in self._scheduling))

    def scheduling_queue(self) -> Sequence[ContentItem]:
        return tuple(self._scheduling)

    def _selectable(self, now: float) -> list[ContentItem]:
        """Scheduling-queue items eligible for selection this round.

        Items in retry backoff (fault-tolerant delivery) are held back but
        still count toward ``Q(t)``/backlog -- they are queued work.
        """
        if self.delivery_engine is None:
            return self._scheduling
        return [
            item
            for item in self._scheduling
            if self.delivery_engine.eligible(item, now)
        ]

    # -- policy hook ---------------------------------------------------------

    def _select(
        self, now: float, effective_budget: int
    ) -> list[tuple[ContentItem, int]]:
        """Choose (item, level > 0) pairs within ``effective_budget`` bytes."""
        raise NotImplementedError

    # -- the round loop (Algorithm 2) -----------------------------------------

    def run_round(self, now: float, round_seconds: float) -> RoundResult:
        """Execute one round at time ``now``; returns what was delivered."""
        self._round_index += 1
        result = RoundResult(round_index=self._round_index, time=now)

        # Incoming items become schedulable this round.
        if self._incoming:
            self._scheduling.extend(self._incoming)
            self._incoming = []

        # Expire stale items before selection (when a TTL is configured).
        if self.ttl_seconds is not None:
            fresh: list[ContentItem] = []
            for item in self._scheduling:
                if now - item.created_at > self.ttl_seconds:
                    result.dropped.append(
                        DroppedItem(time=now, item=item, reason="ttl_expired")
                    )
                    self.total_dropped += 1
                else:
                    fresh.append(item)
            self._scheduling = fresh

        # Step 2: budget replenishment.
        self.data_budget.replenish()
        e_t = self.device.replenishment(now, self.energy_budget.kappa_joules)
        self.energy_budget.replenish(e_t)

        # Connectivity for this round.
        self.device.begin_round(now, round_seconds)
        result.connected = self.device.connected
        if self.device.connected and self._selectable(now):
            capacity = self.device.round_capacity_bytes(round_seconds)
            effective_budget = int(min(self.data_budget.available, capacity))
            selected = self._select(now, effective_budget)
            if self.delivery_engine is not None:
                # Previously failed items may be capped at a degraded level.
                selected = self.delivery_engine.apply_level_caps(selected)
            # Delivery queue drains in descending utility order (Alg. 2, step 1).
            selected.sort(
                key=lambda pair: self.utility_model.utility(pair[0], pair[1], now),
                reverse=True,
            )
            self._deliver(now, selected, result)

        result.queue_length_after = len(self._scheduling)
        result.backlog_bytes_after = self.backlog_bytes()
        result.data_budget_after = self.data_budget.available
        result.energy_budget_after = self.energy_budget.available
        return result

    @conserves("every debit is recorded as a delivery (atomic path: no refunds)")
    def _deliver(
        self,
        now: float,
        selected: list[tuple[ContentItem, int]],
        result: RoundResult,
    ) -> None:
        """Drain the delivery queue: debit budgets, record deliveries."""
        if not selected:
            return
        if self.delivery_engine is not None:
            removed = self.delivery_engine.deliver_batch(
                now=now,
                selected=selected,
                device=self.device,
                data_budget=self.data_budget,
                energy_budget=self.energy_budget,
                utility_model=self.utility_model,
                result=result,
                ttl_seconds=self.ttl_seconds,
            )
            self.total_dropped += result.dead_letters
            if removed:
                self._scheduling = [
                    item
                    for item in self._scheduling
                    if item.item_id not in removed
                ]
            return
        sizes = [item.ladder.size(level) for item, level in selected]
        batch_energy = self.device.download_batch(sizes)
        total_size = sum(sizes)
        delivered_ids = set()
        for (item, level), size in zip(selected, sizes):
            # Realized energy attribution: proportional share of the batch.
            share = batch_energy * (size / total_size) if total_size else 0.0
            self.data_budget.debit(size)
            self.energy_budget.debit(share)
            result.deliveries.append(
                Delivery(
                    time=now,
                    user_id=self.device.user_id,
                    item=item,
                    level=level,
                    size_bytes=size,
                    energy_joules=share,
                    utility=self.utility_model.utility(item, level, now),
                )
            )
            delivered_ids.add(item.item_id)
        # Step 3: drop all presentations of delivered items from the queue.
        self._scheduling = [
            item for item in self._scheduling if item.item_id not in delivered_ids
        ]


class RichNoteScheduler(RoundBasedScheduler):
    """The paper's scheduler: Lyapunov-adjusted MCKP selection (Eq. 7).

    Parameters beyond the base class:

    lyapunov:
        Control configuration (V, kappa, unit scales).  ``kappa`` must
        match the energy budget's target.
    use_hull_selector:
        Run Algorithm 1 behind LP-domination (convex hull) preprocessing
        (:func:`repro.core.mckp.select_presentations_general`).  Identical
        selections on the library's gradient-monotone ladders; strictly
        safer when adjusted-utility profiles dip (e.g. strongly negative
        energy pressure), at an O(n k) preprocessing cost per round.
    """

    def __init__(
        self,
        device: MobileDevice,
        data_budget: DataBudget,
        energy_budget: EnergyBudget,
        utility_model: CombinedUtilityModel | None = None,
        lyapunov: LyapunovConfig | None = None,
        use_hull_selector: bool = False,
        ttl_seconds: float | None = None,
        delivery_engine: "DeliveryEngine | None" = None,
    ) -> None:
        super().__init__(
            device, data_budget, energy_budget, utility_model, ttl_seconds,
            delivery_engine,
        )
        self._select_fn = (
            select_presentations_general
            if use_hull_selector
            else select_presentations
        )
        config = lyapunov or LyapunovConfig(kappa_joules=energy_budget.kappa_joules)
        if abs(config.kappa_joules - energy_budget.kappa_joules) > 1e-6:
            raise ValueError(
                "Lyapunov kappa must match the energy budget's kappa "
                f"({config.kappa_joules} != {energy_budget.kappa_joules})"
            )
        self.controller = LyapunovController(config)
        #: End-of-round Lyapunov function values L(t) -- the stability
        #: diagnostic (bounded L <=> bounded queues, P near kappa).
        self.lyapunov_history: list[float] = []

    def lyapunov_value(self) -> float:
        """Current ``L(t)`` over the live queue and energy state."""
        state = LyapunovState(
            q_bytes=self.backlog_bytes(),
            p_joules=self.energy_budget.available,
        )
        return self.controller.lyapunov_function(state)

    def run_round(self, now: float, round_seconds: float) -> RoundResult:
        result = super().run_round(now, round_seconds)
        self.lyapunov_history.append(self.lyapunov_value())
        return result

    def _select(
        self, now: float, effective_budget: int
    ) -> list[tuple[ContentItem, int]]:
        state = LyapunovState(
            q_bytes=self.backlog_bytes(),
            p_joules=self.energy_budget.available,
        )
        by_key: dict[int, ContentItem] = {}
        mckp_items: list[MckpItem] = []
        for item in self._selectable(now):
            ladder = item.ladder
            utilities = self.utility_model.utilities_for_ladder(item, now)
            energies = [
                self.device.estimate_energy(ladder.size(level))
                if level > 0
                else 0.0
                for level in range(ladder.max_level + 1)
            ]
            profits = self.controller.adjusted_profile(
                state, float(ladder.total_size()), energies, utilities
            )
            sizes = tuple(ladder.size(level) for level in range(ladder.max_level + 1))
            mckp_items.append(
                MckpItem(key=item.item_id, sizes=sizes, profits=tuple(profits))
            )
            by_key[item.item_id] = item

        instance = MckpInstance(items=tuple(mckp_items), budget=effective_budget)
        solution = self._select_fn(instance)
        return [
            (by_key[key], solution.levels[key]) for key in solution.selected_keys()
        ]
