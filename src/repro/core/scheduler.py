"""Deprecated home of the round-based schedulers (moved to ``repro.runtime``).

The scheduling runtime now lives in three layers under
:mod:`repro.runtime` -- array kernels (:mod:`repro.runtime.kernels`),
pluggable policies (:mod:`repro.runtime.policy`, resolvable by name via
:mod:`repro.runtime.registry`) and the composable round loop
(:mod:`repro.runtime.loop`).  New code should build a
:class:`~repro.runtime.loop.RoundLoop` and bind a registered policy::

    from repro.runtime import RoundLoop, registry

    loop = RoundLoop(device, data_budget, energy_budget, utility_model)
    loop.bind_policy(registry.create("richnote", lyapunov=config))

This module keeps the pre-runtime import surface working:

* :class:`Delivery`, :class:`DroppedItem` and :class:`RoundResult`
  re-export from :mod:`repro.runtime.types` (same classes, not copies);
* :class:`RoundBasedScheduler` is an alias base over ``RoundLoop`` --
  the supported extension seam for subclasses that override ``_select``
  directly, so it does **not** warn;
* :class:`RichNoteScheduler` still constructs the paper's scheduler but
  emits a :class:`DeprecationWarning` and delegates everything to a
  bound :class:`~repro.runtime.policy.RichNotePolicy`.
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.delivery import DeliveryEngine

from repro.core.budgets import DataBudget, EnergyBudget
from repro.core.lyapunov import LyapunovConfig, LyapunovController
from repro.core.utility import CombinedUtilityModel
from repro.runtime.loop import RoundLoop
from repro.runtime.policy import RichNotePolicy
from repro.runtime.types import Delivery, DroppedItem, RoundResult
from repro.sim.device import MobileDevice

__all__ = [
    "Delivery",
    "DroppedItem",
    "RichNoteScheduler",
    "RoundBasedScheduler",
    "RoundResult",
]


class RoundBasedScheduler(RoundLoop):
    """Legacy name for :class:`repro.runtime.loop.RoundLoop`.

    Kept as a distinct class (not a bare assignment) so subclasses that
    predate the runtime package -- overriding :meth:`_select` and reading
    ``self._scheduling`` -- keep a stable MRO and ``__name__``.  This is
    a supported extension seam and intentionally does not warn.
    """


class RichNoteScheduler(RoundBasedScheduler):
    """Deprecated: the paper's scheduler as a concrete class.

    Equivalent to a :class:`~repro.runtime.loop.RoundLoop` bound to the
    ``richnote`` policy; all selection math now runs through
    :mod:`repro.runtime.kernels`.  See the class it wraps,
    :class:`repro.runtime.policy.RichNotePolicy`, for the parameters'
    semantics.
    """

    def __init__(
        self,
        device: MobileDevice,
        data_budget: DataBudget,
        energy_budget: EnergyBudget,
        utility_model: CombinedUtilityModel | None = None,
        lyapunov: LyapunovConfig | None = None,
        use_hull_selector: bool = False,
        ttl_seconds: float | None = None,
        delivery_engine: "DeliveryEngine | None" = None,
    ) -> None:
        warnings.warn(
            "repro.core.scheduler.RichNoteScheduler is deprecated; build a "
            "repro.runtime.RoundLoop and bind the 'richnote' policy via "
            "repro.runtime.registry.create('richnote', ...)",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__(
            device, data_budget, energy_budget, utility_model, ttl_seconds,
            delivery_engine,
        )
        self.bind_policy(
            RichNotePolicy(lyapunov=lyapunov, use_hull_selector=use_hull_selector)
        )

    @property
    def controller(self) -> LyapunovController:
        return self.policy.controller

    @property
    def lyapunov_history(self) -> list[float]:
        """End-of-round Lyapunov function values L(t) (stability diagnostic)."""
        return self.policy.lyapunov_history

    def lyapunov_value(self) -> float:
        """Current ``L(t)`` over the live queue and energy state."""
        return self.policy.lyapunov_value(self)
