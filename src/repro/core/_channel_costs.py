"""Per-channel cost/latency tables (private to :mod:`repro.core.channels`).

These constants parameterize the built-in delivery channels: how billed
bytes relate to wire bytes, the fixed protocol overhead of an envelope,
and the latency envelope of each transport.  "A Mechanism for Optimizing
Media Recommender Systems" (PAPERS.md) motivates treating per-channel
cost curves as first-class inputs to the utility/cost trade-off; the
numbers here are illustrative operating points, not measurements.

Layering contract (enforced by richlint RL601): only
``repro.core.channels`` may import this module.  Everything else must go
through the :class:`~repro.core.channels.Channel` objects, so there is
exactly one place where raw cost tables turn into behaviour.
"""

from __future__ import annotations

#: name -> (per_byte multiplier, fixed overhead bytes) of the billed-cost
#: curve.  ``billed = round(per_byte * wire) + overhead`` for a non-empty
#: payload; level 0 (not sent) always bills zero.
COST_CURVES: dict[str, tuple[float, int]] = {
    # Push is the paper's channel: metered byte-for-byte, no overhead.
    "push": (1.0, 0),
    # In-app inbox rides an already-open session; cheaper per byte but a
    # small sync-envelope overhead.
    "inapp": (0.5, 256),
    # Email bodies are cheap (pull on WiFi, typically), with a MIME
    # envelope overhead.
    "email": (0.25, 2048),
    # Messenger-style channels are metered like push plus webhook framing.
    "messenger": (1.0, 512),
}

#: name -> (base latency seconds, throughput bytes/second or None for
#: instantaneous-after-base).  Used by Channel.latency_seconds.
LATENCY_MODELS: dict[str, tuple[float, float | None]] = {
    "push": (0.5, 131_072.0),
    "inapp": (5.0, 262_144.0),
    "email": (30.0, 1_048_576.0),
    "messenger": (1.0, 131_072.0),
}

#: Channels whose bytes ride the user's cellular link and therefore draw
#: from a shared cell-tower pool (``SharedCellCapacity``).  Email is
#: fetched lazily (typically on WiFi) and is exempt.
CELL_COUPLED: frozenset[str] = frozenset({"push", "inapp", "messenger"})

#: Presentation-ladder shapes for channels that re-render content instead
#: of using the item's own ladder: ``name -> ((size, utility), ...)`` for
#: levels 1..k (level 0 is implicit).  ``None``-ladder channels (push)
#: present the item's native ladder unchanged.
LADDER_SHAPES: dict[str, tuple[tuple[int, float], ...]] = {
    # In-app: metadata card and a compact preview only.
    "inapp": ((600, 0.25), (24_000, 0.55)),
    # Email digest: text-only, then inline artwork.
    "email": ((1_200, 0.18), (60_000, 0.40)),
    # Messenger: text, sticker-sized art, short clip.
    "messenger": ((800, 0.30), (30_000, 0.60), (160_000, 0.85)),
}
