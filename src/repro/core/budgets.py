"""Data and energy budgets with the paper's round-based replenishment.

Algorithm 2 (steps 2-3):

* each user specifies a per-round data allowance ``theta`` (bytes); at each
  round ``B(t)`` is incremented by ``theta`` and unused budget *rolls over*;
* the energy budget ``P(t)`` is replenished at a variable rate ``e(t)``
  that depends on the device's battery state, but only while ``P(t) <= kappa``
  (the per-round energy target);
* on delivery of item *i* at level *j*, ``B(t)`` is debited by ``s(i, j)``
  and ``P(t)`` by ``rho(i, j)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class DataBudget:
    """Rolling byte budget ``B(t)``.

    Parameters
    ----------
    theta_bytes:
        Per-round allowance added at the start of every round.
    initial_bytes:
        Budget available before the first replenishment.
    cap_bytes:
        Optional ceiling on accumulated rollover; ``None`` means unbounded
        rollover as in the paper.
    """

    theta_bytes: float
    initial_bytes: float = 0.0
    cap_bytes: float | None = None
    _available: float = field(init=False)
    #: Per-channel ledger: net bytes drawn through each delivery channel
    #: (debits minus refunds), populated when channel-aware callers
    #: attribute their debits/credits.  Single-channel legacy callers
    #: leave it empty; the budget arithmetic itself is channel-blind.
    per_channel_bytes: dict[str, float] = field(init=False, default_factory=dict)

    def __post_init__(self) -> None:
        if self.theta_bytes < 0:
            raise ValueError("theta must be >= 0")
        if self.initial_bytes < 0:
            raise ValueError("initial budget must be >= 0")
        if self.cap_bytes is not None and self.cap_bytes < 0:
            raise ValueError("cap must be >= 0 when set")
        self._available = float(self.initial_bytes)
        if self.cap_bytes is not None:
            self._available = min(self._available, self.cap_bytes)

    @property
    def available(self) -> float:
        """Current ``B(t)`` in bytes."""
        return self._available

    def replenish(self) -> None:
        """Start-of-round top-up: ``B(t) += theta`` (Algorithm 2, step 2)."""
        self._available += self.theta_bytes
        if self.cap_bytes is not None:
            self._available = min(self._available, self.cap_bytes)

    def can_afford(self, size_bytes: float) -> bool:
        return size_bytes <= self._available

    def debit(self, size_bytes: float, channel: str | None = None) -> float:
        """Deduct a delivery: ``B(t) -= s(i, j)`` (Algorithm 2, step 3).

        Returns the amount actually drained (equal to ``size_bytes`` up to
        the zero floor), which bounds any later refund via :meth:`credit`.
        ``channel`` attributes the drain to a delivery channel in
        :attr:`per_channel_bytes` without changing the arithmetic.
        """
        if size_bytes < 0:
            raise ValueError("cannot debit a negative size")
        if size_bytes > self._available + 1e-9:
            raise ValueError(
                f"debit of {size_bytes} B exceeds available budget "
                f"{self._available} B"
            )
        before = self._available
        self._available = max(0.0, self._available - size_bytes)
        drained = before - self._available
        if channel is not None:
            self.per_channel_bytes[channel] = (
                self.per_channel_bytes.get(channel, 0.0) + drained
            )
        return drained

    def credit(self, size_bytes: float, channel: str | None = None) -> float:
        """Refund bytes debited for a transfer that failed mid-flight.

        Returns the amount actually restored (the rollover cap, when set,
        still applies -- a refund can never push ``B(t)`` above the cap).
        ``channel`` reverses a channel-attributed debit in
        :attr:`per_channel_bytes`.
        """
        if size_bytes < 0:
            raise ValueError("cannot credit a negative size")
        before = self._available
        self._available += size_bytes
        if self.cap_bytes is not None:
            self._available = min(self._available, self.cap_bytes)
        restored = self._available - before
        if channel is not None:
            self.per_channel_bytes[channel] = (
                self.per_channel_bytes.get(channel, 0.0) - restored
            )
        return restored


@dataclass
class EnergyBudget:
    """Virtual energy queue ``P(t)`` with battery-aware replenishment.

    ``kappa`` is the per-round energy allowance target (3 kJ/hour in the
    evaluation).  Replenishment ``e(t)`` is variable: the device reports a
    battery-derived rate and the budget only accepts it while ``P(t) <=
    kappa`` (Algorithm 2, step 2), which keeps ``P(t)`` hovering near
    ``kappa`` -- exactly the behaviour the Lyapunov analysis assumes.
    """

    kappa_joules: float
    initial_joules: float | None = None
    _available: float = field(init=False)

    def __post_init__(self) -> None:
        if self.kappa_joules <= 0:
            raise ValueError("kappa must be positive")
        start = self.kappa_joules if self.initial_joules is None else self.initial_joules
        if start < 0:
            raise ValueError("initial energy must be >= 0")
        self._available = float(start)

    @property
    def available(self) -> float:
        """Current ``P(t)`` in joules."""
        return self._available

    def replenish(self, e_t_joules: float) -> float:
        """Add ``e(t)`` if ``P(t) <= kappa``; return the amount accepted."""
        if e_t_joules < 0:
            raise ValueError("replenishment must be >= 0")
        if self._available <= self.kappa_joules:
            self._available += e_t_joules
            return e_t_joules
        return 0.0

    def can_afford(self, joules: float) -> bool:
        return joules <= self._available

    def debit(self, joules: float) -> float:
        """Deduct a delivery's energy: ``P(t) -= rho(i, j)``.

        ``P(t)`` is floored at zero (the queue-update ``[.]^+`` in Eq. 5).
        Returns the amount actually drained, which bounds any later refund
        via :meth:`credit` -- a debit truncated by the floor must not be
        refunded in full, or the virtual queue would mint energy.
        """
        if joules < 0:
            raise ValueError("cannot debit negative energy")
        before = self._available
        self._available = max(0.0, self._available - joules)
        return before - self._available

    def credit(self, joules: float) -> float:
        """Restore energy debited for a transfer that did not complete.

        Callers must pass at most the amount the matching :meth:`debit`
        reported as drained.  Returns the amount restored.
        """
        if joules < 0:
            raise ValueError("cannot credit negative energy")
        self._available += joules
        return joules

    def deviation_from_kappa(self) -> float:
        """``P(t) - kappa``: the Lyapunov energy-pressure term of Eq. 7."""
        return self._available - self.kappa_joules
