"""Lyapunov drift-plus-penalty control for notification scheduling.

Section IV folds queue stability and the energy constraint into the MCKP
objective via Lyapunov optimization:

* the real scheduling queue ``Q(t)`` holds undelivered bytes;
* a virtual queue ``P(t)`` tracks the remaining energy allowance and should
  hover around the per-round target ``kappa``;
* the Lyapunov function is ``L(t) = 1/2 (Q^2(t) + (P(t) - kappa)^2)``;
* minimizing drift-minus-V-times-utility (Eq. 3) reduces, after bounding the
  drift, to maximizing per round (Eq. 6/7):

      sum_ij x_ij * U_a(i, j)
      U_a(i, j) = Q(t) * s(i) + (P(t) - kappa) * rho(i, j) + V * U(i, j)

  subject to the data budget, where ``s(i)`` is the *total* backlog
  contribution of item *i* (all presentation sizes summed -- delivering an
  item drops every presentation of it from the queue, Eq. 4) and
  ``rho(i, j)`` is the estimated download energy.

Unit scaling
------------
The paper reports V = 1000 with budgets in MB and energy in kJ.  Raw bytes
and joules would let the ``Q * s(i)`` term (~1e13) drown the utility term
(~1e3), so the controller normalizes sizes to megabytes and energy to
kilojoules before combining terms.  The scales are configurable; the default
calibration reproduces the paper's qualitative V-sensitivity (RichNote
uniformly good across V, larger V favouring utility over backlog).
"""

from __future__ import annotations

from dataclasses import dataclass

#: bytes -> megabytes
DEFAULT_SIZE_SCALE = 1e-6
#: joules -> kilojoules
DEFAULT_ENERGY_SCALE = 1e-3


@dataclass(frozen=True, slots=True)
class LyapunovConfig:
    """Control parameters of the drift-plus-penalty scheduler.

    Attributes
    ----------
    v:
        The control knob ``V`` of Eq. 3; larger values favour utility over
        queue backlog.  The paper uses 1000.
    kappa_joules:
        Per-round energy allowance target (3 kJ/hour in the evaluation).
    size_scale / energy_scale:
        Unit normalization applied inside the adjusted utility (see module
        docstring).
    """

    v: float = 1000.0
    kappa_joules: float = 3000.0
    size_scale: float = DEFAULT_SIZE_SCALE
    energy_scale: float = DEFAULT_ENERGY_SCALE

    def __post_init__(self) -> None:
        if self.v < 0:
            raise ValueError("V must be >= 0")
        if self.kappa_joules <= 0:
            raise ValueError("kappa must be positive")
        if self.size_scale <= 0 or self.energy_scale <= 0:
            raise ValueError("scales must be positive")


@dataclass(frozen=True, slots=True)
class LyapunovState:
    """A snapshot of the queue state entering a round.

    ``q_bytes`` is the scheduling-queue backlog ``Q(t)`` (bytes);
    ``p_joules`` is the virtual energy queue ``P(t)`` (joules).
    """

    q_bytes: float
    p_joules: float

    def __post_init__(self) -> None:
        if self.q_bytes < 0 or self.p_joules < 0:
            raise ValueError("queue values must be non-negative (the [.]+ update)")


class LyapunovController:
    """Computes adjusted utilities and drift diagnostics.

    The controller is stateless with respect to the queues: the scheduler
    owns ``Q(t)``/``P(t)`` and passes a :class:`LyapunovState` snapshot each
    round, mirroring how Eq. 7 freezes the queue values while the MCKP for
    round *t* is solved.
    """

    def __init__(self, config: LyapunovConfig | None = None) -> None:
        self.config = config or LyapunovConfig()

    def lyapunov_function(self, state: LyapunovState) -> float:
        """``L(t) = 1/2 (Q^2 + (P - kappa)^2)`` in scaled units."""
        cfg = self.config
        q = state.q_bytes * cfg.size_scale
        p_dev = (state.p_joules - cfg.kappa_joules) * cfg.energy_scale
        return 0.5 * (q * q + p_dev * p_dev)

    def drift(self, before: LyapunovState, after: LyapunovState) -> float:
        """One-step realized drift ``L(t+1) - L(t)``."""
        return self.lyapunov_function(after) - self.lyapunov_function(before)

    def adjusted_utility(
        self,
        state: LyapunovState,
        item_backlog_bytes: float,
        energy_joules: float,
        utility: float,
        delivered: bool = True,
    ) -> float:
        """``U_a(i, j)`` of Eq. 7 for one presentation.

        Parameters
        ----------
        state:
            The frozen queue snapshot for this round.
        item_backlog_bytes:
            ``s(i)``: the item's total backlog contribution (sum of all its
            presentation sizes) -- credited only when the item is actually
            delivered (``delivered`` / level > 0), since level 0 drains
            nothing.
        energy_joules:
            ``rho(i, j)``: estimated download energy for this presentation.
        utility:
            ``U(i, j)``: the combined content x presentation utility.
        delivered:
            False for level 0 ("not sent"), which drains no backlog and
            spends no energy; its adjusted utility is 0 by construction.
        """
        if not delivered:
            return 0.0
        cfg = self.config
        queue_term = (state.q_bytes * cfg.size_scale) * (
            item_backlog_bytes * cfg.size_scale
        )
        energy_term = (
            (state.p_joules - cfg.kappa_joules) * cfg.energy_scale
        ) * (energy_joules * cfg.energy_scale)
        return queue_term + energy_term + cfg.v * utility

    def adjusted_profile(
        self,
        state: LyapunovState,
        item_backlog_bytes: float,
        energies_joules: list[float],
        utilities: list[float],
    ) -> list[float]:
        """Adjusted utilities for a full ladder (index = level).

        ``energies_joules[j]`` and ``utilities[j]`` describe level ``j``;
        level 0 maps to adjusted utility 0.
        """
        if len(energies_joules) != len(utilities):
            raise ValueError("energy and utility profiles must align")
        profile = [0.0]
        for energy, utility in zip(energies_joules[1:], utilities[1:]):
            profile.append(
                self.adjusted_utility(
                    state, item_backlog_bytes, energy, utility, delivered=True
                )
            )
        return profile


def quadratic_drift_bound(
    queue_before: float, served: float, arrived: float
) -> float:
    """Analytic one-step bound for a quadratic Lyapunov term.

    For the queue update ``Q' = max(0, Q - a + b)`` (serve ``a``, admit
    ``b``), the standard inequality behind Eq. 6's derivation is::

        (Q'^2 - Q^2) / 2  <=  (a^2 + b^2) / 2  -  Q (a - b)

    The right-hand side is what this function returns (all arguments in
    the same -- already scaled -- units).  Summing the bound for ``Q`` and
    for ``P - kappa`` and taking expectations yields the paper's
    ``Delta(L) <= beta - E[Q X_s + (P - kappa) X_e]`` with
    ``beta = (a^2 + b^2 + ...) / 2`` absorbing the bounded second moments.
    """
    if queue_before < 0 or served < 0 or arrived < 0:
        raise ValueError("queue, service and arrivals must be >= 0")
    return 0.5 * (served**2 + arrived**2) - queue_before * (served - arrived)
