"""Multi-choice knapsack (MCKP) selection of presentation levels.

Section III-C casts notification selection as an MCKP: each content item is
an object *category*, its presentations are the category's objects, utilities
are *profits*, and presentation sizes are *weights*.  Exactly one
presentation per item must be chosen (level 0 = "do not send" is always
available at zero weight/profit), subject to a data-budget weight constraint.

This module provides:

* :class:`MckpInstance` / :class:`MckpItem` -- the problem description;
* :func:`select_presentations` -- the paper's Algorithm 1, the greedy
  utility-size-gradient heuristic with an ``O(n + k log n)`` max-heap
  implementation;
* :func:`solve_exact_dp` -- an exact dynamic program over byte budgets, used
  by the test-suite to bound the greedy's optimality gap on small instances;
* :func:`fractional_upper_bound` -- the optimal fractional-MCKP value, which
  upper-bounds the integral optimum (Sinha & Zoltners 1979).

Greedy optimality argument (from the paper): the fractional MCKP is solved
*optimally* by a series of gradient-maximal upgrades with the final upgrade
taken fractionally; the integral greedy is the same minus the fractional
final upgrade, so its gap to the fractional optimum -- and hence to the
integral optimum -- is at most the profit of one upgrade.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.runtime import kernels


@dataclass(frozen=True, slots=True)
class MckpItem:
    """One category: an item with its per-level sizes and profits.

    ``sizes[j]`` and ``profits[j]`` describe presentation level ``j``;
    index 0 is the mandatory zero-size, zero-profit "not sent" level.
    Sizes must strictly increase with level.  Profits are the (possibly
    *adjusted*, see :mod:`repro.core.lyapunov`) utilities and may be
    non-monotone when Lyapunov penalty terms dominate.
    """

    key: int
    sizes: tuple[int, ...]
    profits: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.sizes) != len(self.profits):
            raise ValueError("sizes and profits must have equal length")
        if len(self.sizes) < 1:
            raise ValueError("item needs at least level 0")
        if self.sizes[0] != 0:
            raise ValueError("level 0 must have zero size")
        for lo, hi in zip(self.sizes, self.sizes[1:]):
            if hi <= lo:
                raise ValueError("sizes must strictly increase with level")

    @property
    def max_level(self) -> int:
        return len(self.sizes) - 1


@dataclass(frozen=True, slots=True)
class MckpInstance:
    """An MCKP instance: a set of items and a weight budget in bytes."""

    items: tuple[MckpItem, ...]
    budget: int

    def __post_init__(self) -> None:
        if self.budget < 0:
            raise ValueError("budget must be >= 0")
        keys = [item.key for item in self.items]
        if len(keys) != len(set(keys)):
            raise ValueError("item keys must be unique")


@dataclass(slots=True)
class MckpSolution:
    """Result of a selection: chosen level per item key.

    ``levels[key]`` is the chosen presentation level (0 = not sent).
    ``total_size`` and ``total_profit`` summarize the selection.
    """

    levels: dict[int, int] = field(default_factory=dict)
    total_size: int = 0
    total_profit: float = 0.0

    def selected_keys(self) -> list[int]:
        """Keys chosen at a level above 0, i.e. actually delivered."""
        return [key for key, level in self.levels.items() if level > 0]


def _gradient(item: MckpItem, level: int) -> float:
    """Utility-size gradient for upgrading ``level -> level + 1``.

    The denominator is positive by the strict-size-increase invariant.
    """
    return kernels.gradient(item.sizes, item.profits, level)


def select_presentations(instance: MckpInstance) -> MckpSolution:
    """Algorithm 1 (SelectPresentations): greedy gradient upgrades.

    Starts with every item at level 0, repeatedly upgrades the item whose
    *next* upgrade has the largest utility-size gradient, and stops when no
    affordable upgrade with positive gradient remains.

    Deviations from a naive transliteration, both faithful to the paper:

    * the paper "moves to the next presentation level" rather than skipping
      dominated levels, because its ladder utilities are monotone -- we do
      the same;
    * upgrades with non-positive gradient are skipped: under Lyapunov
      adjustment (Eq. 7) a richer presentation can have *lower* adjusted
      utility, and selecting it would reduce the objective.  When an item's
      head gradient is non-positive the item is frozen at its current level
      (ladder concavity makes later gradients no better for plain utility;
      for adjusted utility the energy term is itself gradient-monotone for
      the ladders used here).
    * an unaffordable upgrade freezes that item but the scan continues with
      other items, so a large item cannot block cheap upgrades elsewhere.
      With concave ladders gradient order equals greedy order, so this
      matches the classical fractional-greedy behaviour of stopping at the
      first unaffordable upgrade in *gradient* order per item.

    Complexity: ``O(n)`` heapify + ``O((n k) log n)`` worst case over all
    upgrades, matching the paper's ``O(n + k log n)`` per-round bound when
    the number of performed upgrades is ``O(k)``.

    The heap loop itself lives in
    :func:`repro.runtime.kernels.greedy_select`; this wrapper adapts the
    object-based :class:`MckpInstance` to the kernel's row arrays.
    """
    keys = [item.key for item in instance.items]
    levels, total_size, total_profit = kernels.greedy_select(
        keys,
        [item.sizes for item in instance.items],
        [item.profits for item in instance.items],
        instance.budget,
    )
    return MckpSolution(
        levels=dict(zip(keys, levels)),
        total_size=total_size,
        total_profit=total_profit,
    )


def fractional_upper_bound(instance: MckpInstance) -> float:
    """Optimal value of the fractional relaxation (upper-bounds integral OPT).

    Performs the same gradient-ordered upgrades as the greedy but allows the
    final unaffordable upgrade to be taken fractionally.  For instances with
    gradient-monotone (concave) ladders this is the exact LP optimum; for
    general profits it remains a valid upper bound after per-item
    LP-domination filtering, which the gradient heap implicitly performs for
    the ladders produced by this library.
    """
    heap: list[tuple[float, int, int]] = []
    by_key = {item.key: item for item in instance.items}
    levels = {item.key: 0 for item in instance.items}
    for item in instance.items:
        if item.max_level > 0:
            heap.append((-_gradient(item, 0), item.key, 0))
    heapq.heapify(heap)

    remaining = float(instance.budget)
    value = 0.0
    while heap:
        neg_grad, key, level = heapq.heappop(heap)
        if levels[key] != level:
            continue
        grad = -neg_grad
        if grad <= 0.0:
            break
        item = by_key[key]
        size_gain = item.sizes[level + 1] - item.sizes[level]
        profit_gain = item.profits[level + 1] - item.profits[level]
        if size_gain <= remaining:
            levels[key] = level + 1
            remaining -= size_gain
            value += profit_gain
            if level + 1 < item.max_level:
                heapq.heappush(heap, (-_gradient(item, level + 1), key, level + 1))
        else:
            value += grad * remaining
            break
    return value


def solve_exact_dp(instance: MckpInstance) -> MckpSolution:
    """Exact MCKP solver by dynamic programming over byte budgets.

    ``O(n * budget * k)`` time and ``O(n * budget)`` memory -- intended for
    correctness tests on small instances only, not for production rounds.
    """
    items = instance.items
    budget = instance.budget
    n = len(items)
    neg_inf = float("-inf")
    # best[b] = best profit using a prefix of items with total size exactly <= b
    best = [0.0] * (budget + 1)
    choice: list[list[int]] = []
    for item in items:
        new_best = [neg_inf] * (budget + 1)
        new_choice = [0] * (budget + 1)
        for b in range(budget + 1):
            for level, (size, profit) in enumerate(zip(item.sizes, item.profits)):
                if size > b:
                    break  # sizes strictly increase
                cand = best[b - size] + profit
                if cand > new_best[b]:
                    new_best[b] = cand
                    new_choice[b] = level
        best = new_best
        choice.append(new_choice)

    solution = MckpSolution()
    b = max(range(budget + 1), key=lambda idx: best[idx]) if n else 0
    total_profit = best[b] if n else 0.0
    for index in range(n - 1, -1, -1):
        item = items[index]
        level = choice[index][b]
        solution.levels[item.key] = level
        solution.total_size += item.sizes[level]
        b -= item.sizes[level]
    solution.total_profit = total_profit if n else 0.0
    return solution


def convex_hull_levels(item: MckpItem) -> list[int]:
    """Levels surviving LP-domination filtering, in increasing size order.

    Classical MCKP preprocessing (Sinha & Zoltners): first drop *dominated*
    levels (some other level has no larger size and no smaller profit),
    then drop *LP-dominated* levels (below the upper-left convex hull of
    the (size, profit) cloud).  The surviving levels always include level 0
    and have strictly decreasing utility-size gradients, which is exactly
    the precondition under which the greedy of Algorithm 1 carries its
    one-upgrade optimality bound for ARBITRARY profit profiles -- e.g. the
    Lyapunov-adjusted profits of Eq. 7, which need not be monotone.
    """
    return kernels.hull_levels(item.sizes, item.profits)


def select_presentations_general(instance: MckpInstance) -> MckpSolution:
    """Algorithm 1 with LP-domination preprocessing for arbitrary profits.

    Filters each item's ladder to its convex hull (so gradients are
    strictly decreasing), runs the greedy on the reduced ladders, and maps
    chosen levels back to the original level indices.  For ladders that
    are already gradient-monotone this selects exactly what
    :func:`select_presentations` does, at the cost of an ``O(n k)``
    preprocessing pass.  Hull reduction, greedy and level back-mapping all
    live in :func:`repro.runtime.kernels.greedy_select_hull`.
    """
    keys = [item.key for item in instance.items]
    levels, total_size, total_profit = kernels.greedy_select_hull(
        keys,
        [item.sizes for item in instance.items],
        [item.profits for item in instance.items],
        instance.budget,
    )
    return MckpSolution(
        levels=dict(zip(keys, levels)),
        total_size=total_size,
        total_profit=total_profit,
    )
