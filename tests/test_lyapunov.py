"""Tests for the Lyapunov drift-plus-penalty controller (Eq. 3-7)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lyapunov import LyapunovConfig, LyapunovController, LyapunovState


class TestLyapunovConfig:
    def test_defaults_match_paper(self):
        config = LyapunovConfig()
        assert config.v == 1000.0
        assert config.kappa_joules == 3000.0  # 3 kJ per hourly round

    def test_validation(self):
        with pytest.raises(ValueError):
            LyapunovConfig(v=-1)
        with pytest.raises(ValueError):
            LyapunovConfig(kappa_joules=0)
        with pytest.raises(ValueError):
            LyapunovConfig(size_scale=0)


class TestLyapunovState:
    def test_rejects_negative_queues(self):
        with pytest.raises(ValueError):
            LyapunovState(q_bytes=-1, p_joules=0)
        with pytest.raises(ValueError):
            LyapunovState(q_bytes=0, p_joules=-1)


class TestLyapunovFunction:
    def test_minimum_at_empty_queue_and_kappa(self):
        controller = LyapunovController(LyapunovConfig(kappa_joules=100))
        at_target = controller.lyapunov_function(
            LyapunovState(q_bytes=0, p_joules=100)
        )
        assert at_target == 0.0
        off_target = controller.lyapunov_function(
            LyapunovState(q_bytes=1000, p_joules=100)
        )
        assert off_target > 0

    def test_quadratic_in_backlog(self):
        controller = LyapunovController(LyapunovConfig(kappa_joules=100))
        l1 = controller.lyapunov_function(LyapunovState(1e6, 100))
        l2 = controller.lyapunov_function(LyapunovState(2e6, 100))
        assert l2 == pytest.approx(4 * l1)

    def test_drift_sign(self):
        controller = LyapunovController(LyapunovConfig(kappa_joules=100))
        before = LyapunovState(2e6, 100)
        after = LyapunovState(1e6, 100)
        assert controller.drift(before, after) < 0  # queue drained


class TestAdjustedUtility:
    def test_level_zero_has_zero_adjusted_utility(self):
        controller = LyapunovController()
        state = LyapunovState(q_bytes=1e6, p_joules=3000)
        assert (
            controller.adjusted_utility(state, 1e6, 10.0, 0.5, delivered=False)
            == 0.0
        )

    def test_matches_eq7_by_hand(self):
        config = LyapunovConfig(
            v=10.0, kappa_joules=1000.0, size_scale=1e-6, energy_scale=1e-3
        )
        controller = LyapunovController(config)
        state = LyapunovState(q_bytes=2e6, p_joules=500.0)
        # Q*s = (2 MB)(1 MB) = 2; (P-kappa)*rho = (-0.5 kJ)(0.01 kJ) = -0.005
        # V*U = 10 * 0.3 = 3
        value = controller.adjusted_utility(
            state, item_backlog_bytes=1e6, energy_joules=10.0, utility=0.3
        )
        assert value == pytest.approx(2.0 - 0.005 + 3.0)

    def test_queue_pressure_increases_adjusted_utility(self):
        controller = LyapunovController()
        low_q = LyapunovState(q_bytes=0, p_joules=3000)
        high_q = LyapunovState(q_bytes=1e8, p_joules=3000)
        low = controller.adjusted_utility(low_q, 1e6, 1.0, 0.5)
        high = controller.adjusted_utility(high_q, 1e6, 1.0, 0.5)
        assert high > low

    def test_energy_deficit_penalizes_expensive_presentations(self):
        controller = LyapunovController(LyapunovConfig(kappa_joules=3000))
        deficit = LyapunovState(q_bytes=0, p_joules=0)  # P << kappa
        cheap = controller.adjusted_utility(deficit, 1e6, 1.0, 0.5)
        expensive = controller.adjusted_utility(deficit, 1e6, 1000.0, 0.5)
        assert expensive < cheap

    def test_profile_shapes(self):
        controller = LyapunovController()
        state = LyapunovState(q_bytes=1e6, p_joules=3000)
        profile = controller.adjusted_profile(
            state, 1e6, [0.0, 1.0, 2.0], [0.0, 0.1, 0.2]
        )
        assert len(profile) == 3
        assert profile[0] == 0.0

    def test_profile_alignment_enforced(self):
        controller = LyapunovController()
        state = LyapunovState(q_bytes=0, p_joules=3000)
        with pytest.raises(ValueError):
            controller.adjusted_profile(state, 1.0, [0.0, 1.0], [0.0])

    @given(
        q=st.floats(min_value=0, max_value=1e9),
        p=st.floats(min_value=0, max_value=1e5),
        utility=st.floats(min_value=0, max_value=1),
    )
    @settings(max_examples=80, deadline=None)
    def test_v_scales_utility_term_linearly(self, q, p, utility):
        state = LyapunovState(q_bytes=q, p_joules=p)
        lo = LyapunovController(LyapunovConfig(v=1.0)).adjusted_utility(
            state, 1e6, 1.0, utility
        )
        hi = LyapunovController(LyapunovConfig(v=101.0)).adjusted_utility(
            state, 1e6, 1.0, utility
        )
        assert hi - lo == pytest.approx(100.0 * utility, rel=1e-6, abs=1e-9)
