"""Tests for feature extraction and training-set construction."""

import numpy as np
import pytest

from repro.core.presentations import build_audio_ladder
from repro.experiments.adapters import record_to_item
from repro.ml.dataset import (
    FEATURE_NAMES,
    FeatureExtractor,
    build_training_set,
    class_balance,
)
from repro.pubsub.topics import TopicKind
from repro.trace.records import NotificationRecord


def record(**overrides):
    base = dict(
        notification_id=1,
        recipient_id=2,
        sender_id=3,
        kind=TopicKind.FRIEND,
        track_id=4,
        album_id=5,
        artist_id=6,
        track_popularity=70,
        album_popularity=65,
        artist_popularity=80,
        tie_strength=0.4,
        is_friend=True,
        favorite_genre=True,
        timestamp=45_000.0,  # Monday 12:30
        hovered=True,
        clicked=False,
        click_time=None,
    )
    base.update(overrides)
    return NotificationRecord(**base)


class TestFeatureExtractor:
    def test_vector_width_matches_names(self):
        extractor = FeatureExtractor()
        vector = extractor.features_for_record(record())
        assert len(vector) == extractor.n_features == len(FEATURE_NAMES)

    def test_values_normalized(self):
        vector = FeatureExtractor().features_for_record(record())
        named = dict(zip(FEATURE_NAMES, vector))
        assert named["tie_strength"] == 0.4
        assert named["track_popularity"] == 0.70
        assert named["hour_of_day"] == pytest.approx(12.5 / 24.0)
        assert named["is_weekend"] == 0.0
        assert named["is_night"] == 0.0
        assert named["kind_friend"] == 1.0
        assert named["kind_artist"] == 0.0

    def test_kind_one_hot_exclusive(self):
        extractor = FeatureExtractor()
        for kind in TopicKind:
            vector = extractor.features_for_record(
                record(kind=kind, tie_strength=0.0, is_friend=False)
            )
            named = dict(zip(FEATURE_NAMES, vector))
            one_hot = [named["kind_friend"], named["kind_artist"],
                       named["kind_playlist"]]
            assert sum(one_hot) == 1.0

    def test_item_vector_matches_record_vector(self):
        """Train/serve parity: item metadata rebuilds the exact vector."""
        extractor = FeatureExtractor()
        r = record()
        item = record_to_item(r, build_audio_ladder())
        assert extractor.features_for_item(item) == extractor.features_for_record(r)

    def test_batch_matrix_bit_identical_to_scalar_path(self):
        """The vectorized scoring path reproduces per-record vectors exactly."""
        extractor = FeatureExtractor()
        records = [
            record(
                notification_id=i,
                kind=list(TopicKind)[i % 3],
                tie_strength=(i % 18) / 17.0,
                is_friend=i % 2 == 0,
                favorite_genre=i % 3 == 0,
                track_popularity=(i * 7) % 101,
                album_popularity=(i * 13) % 101,
                artist_popularity=(i * 31) % 101,
                timestamp=i * 5_417.3,  # crosses hour/day/weekend boundaries
            )
            for i in range(200)
        ]
        matrix = extractor.features_for_records(records)
        assert matrix.shape == (200, extractor.n_features)
        assert matrix.dtype == np.float64
        scalar = np.asarray(
            [extractor.features_for_record(r) for r in records], dtype=float
        )
        assert (matrix == scalar).all()

    def test_batch_matrix_empty(self):
        matrix = FeatureExtractor().features_for_records([])
        assert matrix.shape == (0, len(FEATURE_NAMES))

    def test_item_missing_metadata_raises(self):
        from repro.core.content import ContentItem, ContentKind

        extractor = FeatureExtractor()
        bare = ContentItem(
            item_id=1,
            user_id=1,
            kind=ContentKind.FRIEND_FEED,
            created_at=0.0,
            ladder=build_audio_ladder(),
        )
        with pytest.raises(KeyError):
            extractor.features_for_item(bare)


class TestTrainingSet:
    def test_filters_unattended(self):
        records = [
            record(notification_id=1, hovered=True, clicked=False),
            record(notification_id=2, hovered=False, clicked=False),
            record(notification_id=3, hovered=True, clicked=True,
                   click_time=50_000.0),
        ]
        x, y = build_training_set(records)
        assert x.shape == (2, len(FEATURE_NAMES))
        assert list(y) == [0, 1]

    def test_all_unattended_raises(self):
        with pytest.raises(ValueError):
            build_training_set([record(hovered=False)])

    def test_class_balance(self):
        assert class_balance([0, 1, 1, 1]) == 0.75
        with pytest.raises(ValueError):
            class_balance(np.array([]))
