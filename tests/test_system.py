"""Tests for the whole-system live simulation."""

import pytest

from repro.experiments.config import ExperimentConfig, Method, MethodSpec
from repro.experiments.system import SystemConfig, SystemSimulation
from repro.trace.entities import CatalogConfig, generate_catalog
from repro.trace.generator import TraceConfig
from repro.trace.socialgraph import SocialGraphConfig, generate_social_graph

N_USERS = 15


@pytest.fixture(scope="module")
def world():
    catalog = generate_catalog(
        CatalogConfig(n_users=N_USERS, n_artists=12, n_playlists=5, seed=3)
    )
    graph = generate_social_graph(SocialGraphConfig(n_users=N_USERS, seed=4))
    return catalog, graph


@pytest.fixture(scope="module")
def trace_config():
    return TraceConfig(duration_hours=24.0, listen_rate_scale=0.5, seed=8)


@pytest.fixture(scope="module")
def baseline_report(world, trace_config):
    catalog, graph = world
    simulation = SystemSimulation(
        catalog,
        graph,
        trace_config,
        SystemConfig(experiment=ExperimentConfig(weekly_budget_mb=20.0, seed=8)),
    )
    return simulation.run()


class TestLiveSystem:
    def test_publications_flow_to_deliveries(self, baseline_report):
        report = baseline_report
        assert report.publications > 0
        assert report.notifications_matched > 0
        assert report.records
        assert report.deliveries
        assert report.notifications_dropped_at_broker == 0

    def test_records_match_broker_output(self, baseline_report):
        report = baseline_report
        assert len(report.records) == report.notifications_matched

    def test_online_scoring_populates_content_utility(self, baseline_report):
        utilities = [d.item.content_utility for d in baseline_report.deliveries]
        assert all(0.0 <= u <= 1.0 for u in utilities)
        assert len(set(utilities)) > 1  # a real model, not a constant

    def test_aggregate_metrics_sane(self, baseline_report):
        agg = baseline_report.aggregate
        assert 0.0 < agg.delivery_ratio <= 1.0
        assert agg.delivered_mb > 0
        assert agg.mean_queuing_delay_s >= 0.0

    def test_ground_truth_labels_present(self, baseline_report):
        assert any(r.clicked for r in baseline_report.records)
        assert any(not r.hovered for r in baseline_report.records)


class TestBrokerCapacity:
    def test_capacity_cap_drops_notifications(self, world, trace_config):
        catalog, graph = world
        simulation = SystemSimulation(
            catalog,
            graph,
            trace_config,
            SystemConfig(
                experiment=ExperimentConfig(weekly_budget_mb=20.0, seed=8),
                broker_capacity_per_round=5,
            ),
        )
        report = simulation.run()
        assert report.notifications_dropped_at_broker > 0
        assert 0.0 < report.broker_drop_rate < 1.0
        # Dropped notifications never reach users.
        assert len(report.records) < report.notifications_matched


class TestBaselinePolicy:
    def test_fifo_system_runs(self, world, trace_config):
        catalog, graph = world
        simulation = SystemSimulation(
            catalog,
            graph,
            trace_config,
            SystemConfig(
                experiment=ExperimentConfig(weekly_budget_mb=5.0, seed=8),
                method=MethodSpec(Method.FIFO, fixed_level=3),
            ),
        )
        report = simulation.run()
        assert report.deliveries
        assert all(d.level <= 3 for d in report.deliveries)
