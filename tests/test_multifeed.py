"""Tests for per-feed round cadences (Section II's round-based model)."""

import pytest

from repro.core.budgets import DataBudget, EnergyBudget
from repro.core.content import ContentItem, ContentKind
from repro.core.multifeed import FeedCadences, MultiFeedScheduler
from repro.core.presentations import build_audio_ladder
from repro.core.scheduler import RichNoteScheduler
from repro.sim.battery import BatterySample, BatteryTrace
from repro.sim.device import MobileDevice
from repro.sim.network import CellularOnlyNetwork

LADDER = build_audio_ladder()
BASE = 300.0


def make_inner(theta=10_000_000.0):
    device = MobileDevice(
        user_id=1,
        network=CellularOnlyNetwork(),
        battery=BatteryTrace([BatterySample(0.0, 1.0, True)]),
    )
    return RichNoteScheduler(
        device=device,
        data_budget=DataBudget(theta_bytes=theta),
        energy_budget=EnergyBudget(kappa_joules=3000.0),
    )


def make_item(item_id, kind, created_at=0.0):
    return ContentItem(
        item_id=item_id,
        user_id=1,
        kind=kind,
        created_at=created_at,
        ladder=LADDER,
        content_utility=0.5,
    )


def cadences(friend=BASE, album=4 * BASE, playlist=4 * BASE):
    return FeedCadences(
        base_period=BASE,
        periods={
            ContentKind.FRIEND_FEED: friend,
            ContentKind.ALBUM_RELEASE: album,
            ContentKind.PLAYLIST_UPDATE: playlist,
        },
    )


class TestFeedCadences:
    def test_defaults_follow_paper_example(self):
        config = FeedCadences()
        assert config.periods[ContentKind.FRIEND_FEED] < (
            config.periods[ContentKind.ALBUM_RELEASE]
        )

    def test_non_multiple_period_rejected(self):
        with pytest.raises(ValueError):
            cadences(album=2.5 * BASE)

    def test_period_below_base_rejected(self):
        with pytest.raises(ValueError):
            FeedCadences(
                base_period=600.0,
                periods={
                    ContentKind.FRIEND_FEED: 300.0,
                    ContentKind.ALBUM_RELEASE: 600.0,
                    ContentKind.PLAYLIST_UPDATE: 600.0,
                },
            )

    def test_missing_kind_rejected(self):
        with pytest.raises(ValueError):
            FeedCadences(base_period=300.0, periods={})

    def test_ticks_per_release(self):
        config = cadences(album=4 * BASE)
        assert config.ticks_per_release(ContentKind.FRIEND_FEED) == 1
        assert config.ticks_per_release(ContentKind.ALBUM_RELEASE) == 4


class TestMultiFeedScheduler:
    def test_friend_items_flow_every_base_round(self):
        scheduler = MultiFeedScheduler(make_inner(), cadences())
        scheduler.enqueue(make_item(1, ContentKind.FRIEND_FEED))
        result = scheduler.run_round(BASE)
        assert [d.item.item_id for d in result.deliveries] == [1]

    def test_album_items_held_until_their_cadence(self):
        scheduler = MultiFeedScheduler(make_inner(), cadences(album=4 * BASE))
        scheduler.enqueue(make_item(1, ContentKind.ALBUM_RELEASE))
        delivered_at = None
        for tick in range(1, 6):
            result = scheduler.run_round(tick * BASE)
            if result.deliveries:
                delivered_at = tick
                break
        assert delivered_at == 4
        assert scheduler.buffered(ContentKind.ALBUM_RELEASE) == 0

    def test_batching_releases_all_buffered_items_together(self):
        scheduler = MultiFeedScheduler(make_inner(), cadences(album=2 * BASE))
        scheduler.enqueue(make_item(1, ContentKind.ALBUM_RELEASE))
        scheduler.run_round(BASE)
        scheduler.enqueue(make_item(2, ContentKind.ALBUM_RELEASE))
        result = scheduler.run_round(2 * BASE)
        assert sorted(d.item.item_id for d in result.deliveries) == [1, 2]

    def test_pending_counts_buffers_and_queues(self):
        scheduler = MultiFeedScheduler(make_inner(theta=0.0), cadences())
        scheduler.enqueue(make_item(1, ContentKind.FRIEND_FEED))
        scheduler.enqueue(make_item(2, ContentKind.ALBUM_RELEASE))
        assert scheduler.pending_items == 2
        scheduler.run_round(BASE)  # friend released (not delivered: theta=0)
        assert scheduler.pending_items == 2
        assert scheduler.buffered(ContentKind.ALBUM_RELEASE) == 1

    def test_wrong_round_length_rejected(self):
        scheduler = MultiFeedScheduler(make_inner(), cadences())
        with pytest.raises(ValueError):
            scheduler.run_round(BASE, round_seconds=3600.0)

    def test_mixed_feeds_interleave(self):
        scheduler = MultiFeedScheduler(make_inner(), cadences(album=2 * BASE))
        scheduler.enqueue(make_item(1, ContentKind.FRIEND_FEED))
        scheduler.enqueue(make_item(2, ContentKind.ALBUM_RELEASE))
        first = scheduler.run_round(BASE)
        second = scheduler.run_round(2 * BASE)
        assert [d.item.item_id for d in first.deliveries] == [1]
        assert [d.item.item_id for d in second.deliveries] == [2]
