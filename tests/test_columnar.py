"""The columnar simulation core: parity, shards, streaming, edges.

The contract under test is ISSUE 8's: struct-of-arrays execution must be
*bit-identical* to the scalar per-user object loop -- identical delivery
digests, identical metrics, identical queue statistics -- across seeds,
policies, network modes and budget regimes, including the awkward
populations (empty queues, budget-exhausted users, ragged queue
lengths).  The scalar path is the oracle throughout; nothing here
re-derives expected values by hand.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.presentations import build_audio_ladder
from repro.core.utility import CombinedUtilityModel
from repro.experiments.columnar import (
    build_cohort,
    run_cohort,
    run_experiment_columnar,
    run_users_columnar,
    supports,
)
from repro.experiments.config import (
    ExperimentConfig,
    Method,
    MethodSpec,
    NetworkMode,
)
from repro.experiments.runner import (
    UtilityAnnotations,
    run_experiment,
    run_user,
)
from repro.experiments.workloads import workload_spec
from repro.runtime import registry
from repro.runtime.columnar import (
    ColumnarCohort,
    ColumnarEngine,
    build_device_columns,
    needs_item_objects,
    round_times,
)
from repro.runtime.policy import FifoPolicy, RichNotePolicy, UtilPolicy
from repro.sim.engine import Simulator
from repro.trace.generator import TraceConfig, build_workload, iter_users
from repro.trace.io import TraceShardStore, write_shard_store

SPECS = (
    MethodSpec(Method.RICHNOTE),
    MethodSpec(Method.FIFO, 2),
    MethodSpec(Method.UTIL, 3),
)
SEEDS = (5, 7, 11)


@pytest.fixture(scope="module", params=SEEDS)
def world(request):
    """One seeded small workload: (pairs, annotations, duration, seed)."""
    seed = request.param
    workload = build_workload(workload_spec("small", seed=seed))
    annotations = UtilityAnnotations.train(workload, seed=seed)
    users = workload.top_users(5)
    by_user = {user_id: [] for user_id in users}
    for record in workload.records:
        if record.recipient_id in by_user:
            by_user[record.recipient_id].append(record)
    pairs = [(u, by_user[u]) for u in users if by_user[u]]
    duration = workload.config.duration_hours * 3600.0
    return workload, pairs, annotations, duration, seed


class TestScalarParity:
    """Columnar == scalar, digest for digest, across the property grid."""

    @pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.label)
    @pytest.mark.parametrize("budget_mb", [0.05, 5.0])
    @pytest.mark.parametrize(
        "mode", [NetworkMode.CELL_ONLY, NetworkMode.MARKOV]
    )
    def test_digests_and_metrics_bit_identical(
        self, world, spec, budget_mb, mode
    ):
        """Every user's deliveries and metrics match the per-user loop.

        ``budget_mb=0.05`` keeps queues perpetually backlogged (ragged
        lengths, budget-exhausted rounds); MARKOV adds OFF rounds where
        whole users sit out selection with items still queued.
        """
        _, pairs, annotations, duration, seed = world
        config = ExperimentConfig(
            weekly_budget_mb=budget_mb, seed=seed, network_mode=mode
        )
        outcomes = run_users_columnar(
            pairs, spec, config, annotations, duration,
            digest_deliveries=True,
        )
        assert len(outcomes) == len(pairs)
        for (user_id, records), outcome in zip(pairs, outcomes):
            twin = run_user(
                user_id, records, spec, config, annotations, duration,
                digest_deliveries=True,
            )
            assert outcome.delivery_digest == twin.delivery_digest, user_id
            assert outcome.metrics == twin.metrics, user_id
            assert outcome.mean_backlog_bytes == twin.mean_backlog_bytes
            assert outcome.max_queue_length == twin.max_queue_length
            assert outcome.final_queue_length == twin.final_queue_length

    def test_run_experiment_columnar_matches_scalar_aggregate(self, world):
        workload, _, annotations, _, seed = world
        config = ExperimentConfig(weekly_budget_mb=5.0, seed=seed)
        users = workload.top_users(5)
        spec = MethodSpec(Method.RICHNOTE)
        scalar = run_experiment(workload, spec, config, annotations, users)
        columnar = run_experiment_columnar(
            workload, spec, config, annotations, users
        )
        assert columnar.aggregate.row() == scalar.aggregate.row()
        assert columnar.aggregate == scalar.aggregate


class TestCompatPath:
    """Generic policies run through the RoundContext adapter, unchanged."""

    def _engines(self, world, materialize):
        _, pairs, annotations, duration, seed = world
        config = ExperimentConfig(weekly_budget_mb=5.0, seed=seed)
        ladder = build_audio_ladder(config.presentation_spec)
        columns = build_cohort(
            pairs, annotations, ladder, materialize_items=materialize
        )
        return columns, config, duration

    def _run(self, columns, config, duration, policy, model):
        from repro.experiments.runner import _device_stream_seed

        times = round_times(config.round_seconds, duration)
        device = build_device_columns(
            [_device_stream_seed(config.seed, u) for u in columns.user_ids],
            times,
            config.round_seconds,
            duration,
            config.kappa_joules_per_round,
        )
        engine = ColumnarEngine(
            columns.cohort,
            device,
            policy,
            model,
            theta_bytes=config.theta_bytes_per_round,
            kappa_joules=config.kappa_joules_per_round,
            round_seconds=config.round_seconds,
            duration_seconds=duration,
            expected_batch=config.expected_batch,
        )
        return engine.run()

    @pytest.mark.parametrize("name", ["richnote", "fifo", "util"])
    def test_adapter_path_equals_kernel_path(self, world, name):
        """A no-op CombinedUtilityModel subclass forces the adapter path;

        its deliveries must be bit-identical to the kernel fast path for
        the same policy -- the adapter is a second implementation of the
        same round, and this pins them together.
        """

        class SameModel(CombinedUtilityModel):
            pass

        params = {} if name == "richnote" else {"fixed_level": 2}
        columns, config, duration = self._engines(world, materialize=True)
        fast = self._run(
            columns, config, duration,
            registry.create(name, **params), CombinedUtilityModel(),
        )
        compat = self._run(
            columns, config, duration,
            registry.create(name, **params), SameModel(),
        )
        assert fast.deliveries == compat.deliveries
        assert np.array_equal(
            fast.mean_backlog_bytes, compat.mean_backlog_bytes
        )

    def test_adapter_without_items_rejected(self, world):
        class SameModel(CombinedUtilityModel):
            pass

        columns, config, duration = self._engines(world, materialize=False)
        with pytest.raises(ValueError, match="cohort.items"):
            self._run(
                columns, config, duration,
                registry.create("fifo", fixed_level=2), SameModel(),
            )

    def test_needs_item_objects_dispatch(self):
        class SameModel(CombinedUtilityModel):
            pass

        class SubFifo(FifoPolicy):
            pass

        stock = CombinedUtilityModel()
        assert not needs_item_objects(RichNotePolicy(), stock)
        assert not needs_item_objects(FifoPolicy(fixed_level=2), stock)
        assert not needs_item_objects(UtilPolicy(fixed_level=2), stock)
        assert needs_item_objects(SubFifo(fixed_level=2), stock)
        assert needs_item_objects(FifoPolicy(fixed_level=2), SameModel())


class TestRoundGrid:
    """round_times replicates the event-driven simulator's tick sequence."""

    @pytest.mark.parametrize(
        "period,duration",
        [(3600.0, 168 * 3600.0), (3600.0, 1800.0), (0.1, 10.0), (7.0, 7.0)],
    )
    def test_matches_simulator_schedule(self, period, duration):
        simulator = Simulator()
        ticks: list[float] = []
        simulator.schedule_periodic(
            start=period,
            period=period,
            callback=lambda sim: ticks.append(sim.now),
            until=duration + 1.0,
        )
        simulator.run(until=duration + 2.0)
        assert round_times(period, duration) == ticks

    def test_rejects_bad_period(self):
        with pytest.raises(ValueError, match="period"):
            round_times(0.0, 100.0)


class TestEngineEdges:
    def test_resumable_single_stepping(self, world):
        _, pairs, annotations, duration, seed = world
        config = ExperimentConfig(weekly_budget_mb=5.0, seed=seed)
        spec = MethodSpec(Method.RICHNOTE)
        ladder = build_audio_ladder(config.presentation_spec)
        columns = build_cohort(pairs, annotations, ladder)

        from repro.experiments.runner import _device_stream_seed

        times = round_times(config.round_seconds, duration)

        def make_engine():
            device = build_device_columns(
                [
                    _device_stream_seed(config.seed, u)
                    for u in columns.user_ids
                ],
                times, config.round_seconds, duration,
                config.kappa_joules_per_round,
            )
            return ColumnarEngine(
                columns.cohort, device,
                registry.create(
                    spec.policy_name, **spec.policy_params(config)
                ),
                theta_bytes=config.theta_bytes_per_round,
                kappa_joules=config.kappa_joules_per_round,
                round_seconds=config.round_seconds,
                duration_seconds=duration,
                expected_batch=config.expected_batch,
            )

        whole = make_engine().run()
        assert whole.rounds == len(times)

        stepper = make_engine()
        first = stepper.run(limit_rounds=1)
        assert first.rounds == 1
        stepped = stepper.run()  # the rest
        assert stepped.rounds == len(times)
        assert stepped.deliveries == whole.deliveries
        assert np.array_equal(
            stepped.mean_backlog_bytes, whole.mean_backlog_bytes
        )
        assert np.array_equal(stepped.max_queue_length, whole.max_queue_length)

        with pytest.raises(ValueError, match="limit_rounds"):
            make_engine().run(limit_rounds=-1)

    def test_unsupported_config_falls_back_and_run_cohort_rejects(
        self, world
    ):
        from repro.sim.faults import FaultConfig

        workload, pairs, annotations, duration, seed = world
        config = ExperimentConfig(
            weekly_budget_mb=5.0, seed=seed,
            faults=FaultConfig(p_disconnect=0.2),
        )
        assert not supports(config)
        ladder = build_audio_ladder(config.presentation_spec)
        columns = build_cohort(pairs, annotations, ladder)
        with pytest.raises(ValueError, match="paper-default"):
            run_cohort(columns, MethodSpec(Method.RICHNOTE), config, duration)
        users = [u for u, _ in pairs]
        scalar = run_experiment(
            workload, MethodSpec(Method.RICHNOTE), config, annotations, users
        )
        fallback = run_experiment_columnar(
            workload, MethodSpec(Method.RICHNOTE), config, annotations, users
        )
        assert fallback.aggregate == scalar.aggregate

    def test_cohort_validation(self):
        ladder = build_audio_ladder()
        with pytest.raises(ValueError, match="offsets"):
            ColumnarCohort(
                user_ids=[1, 2],
                offsets=np.asarray([0, 1]),  # length must be n_users + 1
                item_ids=[10],
                created_at=np.asarray([0.0]),
                contents=np.asarray([0.5]),
                ladder=ladder,
            )
        with pytest.raises(ValueError, match="non-decreasing"):
            ColumnarCohort(
                user_ids=[1],
                offsets=np.asarray([0, -1]),
                item_ids=[],
                created_at=np.asarray([]),
                contents=np.asarray([]),
                ladder=ladder,
            )
        with pytest.raises(ValueError, match="entries"):
            ColumnarCohort(
                user_ids=[1],
                offsets=np.asarray([0, 2]),
                item_ids=[10],
                created_at=np.asarray([0.0]),
                contents=np.asarray([0.5]),
                ladder=ladder,
            )


class TestStreamedUsers:
    """iter_users: per-user independent lanes, ragged volumes, bounded memory."""

    def test_prefix_stable_across_population_sizes(self):
        config = TraceConfig(seed=31)
        ten = list(iter_users(10, config))
        thousand_prefix = []
        for user_id, records in iter_users(1000, config):
            thousand_prefix.append((user_id, records))
            if len(thousand_prefix) == 10:
                break
        assert [u for u, _ in ten] == [u for u, _ in thousand_prefix]
        for (_, a), (_, b) in zip(ten, thousand_prefix):
            assert a == b

    def test_deterministic_and_ragged(self):
        config = TraceConfig(seed=31)
        first = {u: r for u, r in iter_users(40, config)}
        second = {u: r for u, r in iter_users(40, config)}
        assert first == second
        lengths = {len(r) for r in first.values()}
        assert len(lengths) > 3, "queue lengths should be ragged"
        for records in first.values():
            times = [r.timestamp for r in records]
            assert times == sorted(times)

    def test_streamed_cohort_runs_columnar(self):
        config = TraceConfig(seed=31)
        pairs = [(u, r) for u, r in iter_users(30, config) if r]
        scores = {
            r.notification_id: (0.9 if r.clicked else 0.1)
            for _, rs in pairs for r in rs
        }
        annotations = UtilityAnnotations(scores=scores)
        exp_config = ExperimentConfig(seed=31)
        outcomes = run_users_columnar(
            pairs, MethodSpec(Method.RICHNOTE), exp_config, annotations,
            config.duration_hours * 3600.0, digest_deliveries=True,
        )
        assert len(outcomes) == len(pairs)
        for (user_id, records), outcome in zip(pairs[:5], outcomes[:5]):
            twin = run_user(
                user_id, records, MethodSpec(Method.RICHNOTE), exp_config,
                annotations, config.duration_hours * 3600.0,
                digest_deliveries=True,
            )
            assert outcome.delivery_digest == twin.delivery_digest


class TestShardStore:
    """The packed columnar trace format round-trips records exactly."""

    def test_roundtrip_exact(self, tmp_path):
        config = TraceConfig(seed=13)
        pairs = list(iter_users(12, config))
        # A zero-record user in the middle: offsets must carry it through.
        pairs.insert(2, (999, []))
        count = write_shard_store(tmp_path / "store", pairs)
        assert count == sum(len(r) for _, r in pairs)
        with TraceShardStore(tmp_path / "store") as store:
            assert store.n_users == len(pairs)
            assert store.n_records == count
            for user_id, records in pairs:
                assert store.records_for_user(user_id) == records
            streamed = list(store.iter_users())
            assert streamed == [(u, r) for u, r in pairs]

    def test_rejects_foreign_directory(self, tmp_path):
        with pytest.raises((FileNotFoundError, ValueError)):
            TraceShardStore(tmp_path / "nope")
