"""Tests for synthetic catalog generation."""

import pytest

from repro.trace.entities import (
    GENRES,
    Album,
    Artist,
    Catalog,
    CatalogConfig,
    Playlist,
    Track,
    User,
    generate_catalog,
)


class TestEntityValidation:
    def test_popularity_bounds(self):
        with pytest.raises(ValueError):
            Artist(1, "a", "pop", popularity=0)
        with pytest.raises(ValueError):
            Artist(1, "a", "pop", popularity=101)

    def test_track_duration_positive(self):
        with pytest.raises(ValueError):
            Track(1, 1, 1, "t", 50, duration_seconds=0)

    def test_album_needs_tracks(self):
        with pytest.raises(ValueError):
            Album(1, 1, "a", 50, track_count=0)

    def test_playlist_needs_tracks(self):
        with pytest.raises(ValueError):
            Playlist(1, 1, "p", [], "pop")

    def test_user_needs_genres_and_activity(self):
        with pytest.raises(ValueError):
            User(1, (), 1.0)
        with pytest.raises(ValueError):
            User(1, ("pop",), 0.0)


class TestCatalogIntegrity:
    def test_referential_integrity_enforced(self):
        artist = Artist(0, "a", "pop", 50)
        orphan_album = Album(0, 99, "al", 50, 1)
        with pytest.raises(ValueError):
            Catalog([], [artist], [orphan_album], [], [])


class TestGeneration:
    def test_counts_match_config(self):
        config = CatalogConfig(n_users=20, n_artists=10, n_playlists=5)
        catalog = generate_catalog(config)
        assert len(catalog.users) == 20
        assert len(catalog.artists) == 10
        assert len(catalog.playlists) == 5
        assert len(catalog.albums) >= 10  # at least one album per artist
        assert len(catalog.tracks) >= len(catalog.albums)

    def test_deterministic_under_seed(self):
        a = generate_catalog(CatalogConfig(seed=5))
        b = generate_catalog(CatalogConfig(seed=5))
        assert [t.popularity for t in a.tracks.values()] == [
            t.popularity for t in b.tracks.values()
        ]

    def test_popularity_is_heavy_tailed(self):
        """Rank-0 artist should vastly out-popular the median artist."""
        catalog = generate_catalog(CatalogConfig(n_artists=50))
        popularity = [a.popularity for a in catalog.artists.values()]
        assert popularity[0] == max(popularity)
        assert popularity[0] >= 3 * sorted(popularity)[len(popularity) // 2]

    def test_all_genres_from_vocabulary(self):
        catalog = generate_catalog(CatalogConfig())
        assert all(a.genre in GENRES for a in catalog.artists.values())

    def test_track_lookup_helpers(self):
        catalog = generate_catalog(CatalogConfig(n_artists=5))
        tracks = catalog.tracks_of_artist(0)
        assert tracks
        assert all(t.artist_id == 0 for t in tracks)
        genre = catalog.genre_of_track(tracks[0].track_id)
        assert genre == catalog.artists[0].genre

    def test_user_activity_positive_and_skewed(self):
        catalog = generate_catalog(CatalogConfig(n_users=100))
        activities = sorted(u.activity_level for u in catalog.users.values())
        assert activities[0] > 0
        # Pareto-ish: the top user is several times the median.
        assert activities[-1] > 3 * activities[50]

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CatalogConfig(n_users=0)
        with pytest.raises(ValueError):
            CatalogConfig(zipf_exponent=0)
        with pytest.raises(ValueError):
            CatalogConfig(favorite_genres_per_user=0)
