"""Tests for broker-side capacity management (satisfied subscribers)."""

import pytest

from repro.pubsub.broker import Broker, DeliveryMode, Notification
from repro.pubsub.capacity import (
    CapacityConfig,
    CapacityLimitedBroker,
    select_satisfied_subscribers,
)
from repro.pubsub.subscriptions import SubscriptionStore
from repro.pubsub.topics import Publication, Topic, TopicKind


def notif(notification_id, recipient):
    return Notification(
        notification_id=notification_id,
        recipient_id=recipient,
        publication=Publication(
            topic=Topic(TopicKind.FRIEND, 0), publisher_id=0, timestamp=1.0
        ),
    )


def demands(spec: dict[int, int]) -> list[Notification]:
    """spec: user -> how many notifications they are matched to."""
    notifications = []
    next_id = 0
    for user, count in spec.items():
        for _ in range(count):
            notifications.append(notif(next_id, user))
            next_id += 1
    return notifications


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            CapacityConfig(broker_capacity=-1)
        with pytest.raises(ValueError):
            CapacityConfig(broker_capacity=1, default_user_capacity=-1)
        with pytest.raises(ValueError):
            CapacityConfig(broker_capacity=1, user_capacity_overrides={1: -1})

    def test_overrides(self):
        config = CapacityConfig(
            broker_capacity=10, default_user_capacity=5,
            user_capacity_overrides={7: 1},
        )
        assert config.user_capacity(7) == 1
        assert config.user_capacity(8) == 5


class TestGreedySelection:
    def test_all_fit_all_satisfied(self):
        selection = select_satisfied_subscribers(
            demands({1: 2, 2: 3}), CapacityConfig(broker_capacity=10)
        )
        assert selection.satisfied_users == {1, 2}
        assert len(selection.delivered) == 5
        assert selection.dropped == []

    def test_smallest_demands_satisfied_first(self):
        """Greedy maximizes the satisfied COUNT, not delivered volume."""
        selection = select_satisfied_subscribers(
            demands({1: 5, 2: 1, 3: 2}), CapacityConfig(broker_capacity=4)
        )
        assert selection.satisfied_users == {2, 3}
        assert selection.satisfied_count == 2

    def test_leftover_capacity_partially_serves(self):
        selection = select_satisfied_subscribers(
            demands({1: 1, 2: 5}), CapacityConfig(broker_capacity=3)
        )
        assert selection.satisfied_users == {1}
        delivered_to_2 = [n for n in selection.delivered if n.recipient_id == 2]
        assert len(delivered_to_2) == 2  # the leftover 2 of capacity 3
        assert len(selection.dropped) == 3

    def test_user_capacity_blocks_satisfaction(self):
        config = CapacityConfig(
            broker_capacity=100, default_user_capacity=50,
            user_capacity_overrides={1: 2},
        )
        selection = select_satisfied_subscribers(demands({1: 4}), config)
        assert selection.satisfied_users == frozenset()
        assert len(selection.delivered) == 2  # partial, capped by the user
        assert len(selection.dropped) == 2

    def test_zero_capacity_drops_everything(self):
        selection = select_satisfied_subscribers(
            demands({1: 2}), CapacityConfig(broker_capacity=0)
        )
        assert selection.delivered == []
        assert len(selection.dropped) == 2

    def test_greedy_count_is_optimal_on_small_cases(self):
        """Compare against brute force over subscriber subsets."""
        import itertools

        spec = {1: 3, 2: 2, 3: 2, 4: 4}
        config = CapacityConfig(broker_capacity=7)
        selection = select_satisfied_subscribers(demands(spec), config)
        best = 0
        for r in range(len(spec) + 1):
            for subset in itertools.combinations(spec, r):
                if sum(spec[u] for u in subset) <= config.broker_capacity:
                    best = max(best, len(subset))
        assert selection.satisfied_count == best


class TestCapacityLimitedBroker:
    def build(self, capacity):
        store = SubscriptionStore()
        topic = Topic(TopicKind.ARTIST, 1)
        for user in (1, 2, 3):
            store.subscribe(user, topic)
        inner = Broker(store, default_mode=DeliveryMode.ROUND)
        wrapper = CapacityLimitedBroker(
            inner, CapacityConfig(broker_capacity=capacity)
        )
        received = []
        wrapper.add_sink(received.append)
        return wrapper, topic, received

    def test_flush_respects_capacity(self):
        wrapper, topic, received = self.build(capacity=2)
        wrapper.publish(
            Publication(topic=topic, publisher_id=99, timestamp=1.0)
        )
        selection = wrapper.flush_round()
        assert len(received) == 2
        assert wrapper.total_delivered == 2
        assert wrapper.total_dropped == 1
        assert selection.satisfied_count == 2

    def test_rejects_inner_broker_with_sinks(self):
        inner = Broker()
        inner.add_sink(lambda n: None)
        with pytest.raises(ValueError):
            CapacityLimitedBroker(inner, CapacityConfig(broker_capacity=1))


class TestExhaustionAndRefund:
    """Boundary paths: broker capacity running dry mid-queue, and budget a
    blocked user cannot use flowing back to the partial queue."""

    def test_conservation_under_exhaustion(self):
        batch = demands({1: 3, 2: 4, 3: 5})
        selection = select_satisfied_subscribers(
            batch, CapacityConfig(broker_capacity=6)
        )
        # Every matched notification is either delivered or dropped.
        assert len(selection.delivered) + len(selection.dropped) == len(batch)
        assert len(selection.delivered) == 6  # user 1 fully + 3 partial
        assert selection.satisfied_users == frozenset({1})

    def test_exhausted_capacity_starves_later_partials(self):
        batch = demands({1: 3, 2: 4, 3: 5})
        selection = select_satisfied_subscribers(
            batch, CapacityConfig(broker_capacity=6)
        )
        # Partial service drains ascending by demand: user 2 absorbs the
        # leftover, user 3 (largest demand) gets nothing.
        delivered_users = {n.recipient_id for n in selection.delivered}
        assert delivered_users == {1, 2}
        assert sum(1 for n in selection.dropped if n.recipient_id == 3) == 5

    def test_blocked_user_refunds_capacity_to_others(self):
        # User 1's personal capacity is 0: they can never be satisfied,
        # so the broker budget their demand would have consumed serves
        # user 2 instead of being wasted.
        batch = demands({1: 2, 2: 2})
        config = CapacityConfig(
            broker_capacity=2, user_capacity_overrides={1: 0}
        )
        selection = select_satisfied_subscribers(batch, config)
        assert selection.satisfied_users == frozenset({2})
        assert [n.recipient_id for n in selection.delivered] == [2, 2]
        assert sum(1 for n in selection.dropped if n.recipient_id == 1) == 2

    def test_partial_service_capped_by_user_attention(self):
        # Leftover broker capacity cannot overfill one user's capacity.
        batch = demands({1: 5})
        config = CapacityConfig(broker_capacity=10, default_user_capacity=2)
        selection = select_satisfied_subscribers(batch, config)
        assert selection.satisfied_users == frozenset()
        assert len(selection.delivered) == 2
        assert len(selection.dropped) == 3

    def test_exactly_exhausted_boundary(self):
        # Demand == capacity: satisfied with zero leftover, nothing dropped.
        batch = demands({1: 2, 2: 3})
        selection = select_satisfied_subscribers(
            batch, CapacityConfig(broker_capacity=5)
        )
        assert selection.satisfied_users == frozenset({1, 2})
        assert selection.dropped == []

    def test_totals_accumulate_across_rounds_and_drops_never_hit_sinks(self):
        store = SubscriptionStore()
        topic = Topic(TopicKind.ARTIST, 1)
        for user in (1, 2, 3):
            store.subscribe(user, topic)
        inner = Broker(store, default_mode=DeliveryMode.ROUND)
        wrapper = CapacityLimitedBroker(
            inner, CapacityConfig(broker_capacity=2)
        )
        received = []
        wrapper.add_sink(received.append)
        for timestamp in (1.0, 2.0):
            wrapper.publish(
                Publication(topic=topic, publisher_id=99, timestamp=timestamp)
            )
            wrapper.flush_round()
        assert wrapper.total_delivered == 4
        assert wrapper.total_dropped == 2
        assert len(received) == 4
        # Dropped notifications were filtered before the sink layer.
        assert wrapper.total_delivered + wrapper.total_dropped == 6
