"""Tests for broker-side capacity management (satisfied subscribers)."""

import asyncio
import random

import pytest

from repro.core.content import ContentItem, ContentKind
from repro.core.presentations import build_audio_ladder
from repro.pubsub.broker import (
    Broker,
    BreakerState,
    CircuitBreakerConfig,
    DeliveryMode,
    Notification,
)
from repro.runtime.types import Delivery
from repro.service import GuardedSink, SimulatedClock, SinkPolicy
from repro.pubsub.capacity import (
    CapacityConfig,
    CapacityLimitedBroker,
    select_satisfied_subscribers,
)
from repro.pubsub.subscriptions import SubscriptionStore
from repro.pubsub.topics import Publication, Topic, TopicKind


def notif(notification_id, recipient):
    return Notification(
        notification_id=notification_id,
        recipient_id=recipient,
        publication=Publication(
            topic=Topic(TopicKind.FRIEND, 0), publisher_id=0, timestamp=1.0
        ),
    )


def demands(spec: dict[int, int]) -> list[Notification]:
    """spec: user -> how many notifications they are matched to."""
    notifications = []
    next_id = 0
    for user, count in spec.items():
        for _ in range(count):
            notifications.append(notif(next_id, user))
            next_id += 1
    return notifications


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            CapacityConfig(broker_capacity=-1)
        with pytest.raises(ValueError):
            CapacityConfig(broker_capacity=1, default_user_capacity=-1)
        with pytest.raises(ValueError):
            CapacityConfig(broker_capacity=1, user_capacity_overrides={1: -1})

    def test_overrides(self):
        config = CapacityConfig(
            broker_capacity=10, default_user_capacity=5,
            user_capacity_overrides={7: 1},
        )
        assert config.user_capacity(7) == 1
        assert config.user_capacity(8) == 5


class TestGreedySelection:
    def test_all_fit_all_satisfied(self):
        selection = select_satisfied_subscribers(
            demands({1: 2, 2: 3}), CapacityConfig(broker_capacity=10)
        )
        assert selection.satisfied_users == {1, 2}
        assert len(selection.delivered) == 5
        assert selection.dropped == []

    def test_smallest_demands_satisfied_first(self):
        """Greedy maximizes the satisfied COUNT, not delivered volume."""
        selection = select_satisfied_subscribers(
            demands({1: 5, 2: 1, 3: 2}), CapacityConfig(broker_capacity=4)
        )
        assert selection.satisfied_users == {2, 3}
        assert selection.satisfied_count == 2

    def test_leftover_capacity_partially_serves(self):
        selection = select_satisfied_subscribers(
            demands({1: 1, 2: 5}), CapacityConfig(broker_capacity=3)
        )
        assert selection.satisfied_users == {1}
        delivered_to_2 = [n for n in selection.delivered if n.recipient_id == 2]
        assert len(delivered_to_2) == 2  # the leftover 2 of capacity 3
        assert len(selection.dropped) == 3

    def test_user_capacity_blocks_satisfaction(self):
        config = CapacityConfig(
            broker_capacity=100, default_user_capacity=50,
            user_capacity_overrides={1: 2},
        )
        selection = select_satisfied_subscribers(demands({1: 4}), config)
        assert selection.satisfied_users == frozenset()
        assert len(selection.delivered) == 2  # partial, capped by the user
        assert len(selection.dropped) == 2

    def test_zero_capacity_drops_everything(self):
        selection = select_satisfied_subscribers(
            demands({1: 2}), CapacityConfig(broker_capacity=0)
        )
        assert selection.delivered == []
        assert len(selection.dropped) == 2

    def test_greedy_count_is_optimal_on_small_cases(self):
        """Compare against brute force over subscriber subsets."""
        import itertools

        spec = {1: 3, 2: 2, 3: 2, 4: 4}
        config = CapacityConfig(broker_capacity=7)
        selection = select_satisfied_subscribers(demands(spec), config)
        best = 0
        for r in range(len(spec) + 1):
            for subset in itertools.combinations(spec, r):
                if sum(spec[u] for u in subset) <= config.broker_capacity:
                    best = max(best, len(subset))
        assert selection.satisfied_count == best


class TestCapacityLimitedBroker:
    def build(self, capacity):
        store = SubscriptionStore()
        topic = Topic(TopicKind.ARTIST, 1)
        for user in (1, 2, 3):
            store.subscribe(user, topic)
        inner = Broker(store, default_mode=DeliveryMode.ROUND)
        wrapper = CapacityLimitedBroker(
            inner, CapacityConfig(broker_capacity=capacity)
        )
        received = []
        wrapper.add_sink(received.append)
        return wrapper, topic, received

    def test_flush_respects_capacity(self):
        wrapper, topic, received = self.build(capacity=2)
        wrapper.publish(
            Publication(topic=topic, publisher_id=99, timestamp=1.0)
        )
        selection = wrapper.flush_round()
        assert len(received) == 2
        assert wrapper.total_delivered == 2
        assert wrapper.total_dropped == 1
        assert selection.satisfied_count == 2

    def test_rejects_inner_broker_with_sinks(self):
        inner = Broker()
        inner.add_sink(lambda n: None)
        with pytest.raises(ValueError):
            CapacityLimitedBroker(inner, CapacityConfig(broker_capacity=1))


class TestExhaustionAndRefund:
    """Boundary paths: broker capacity running dry mid-queue, and budget a
    blocked user cannot use flowing back to the partial queue."""

    def test_conservation_under_exhaustion(self):
        batch = demands({1: 3, 2: 4, 3: 5})
        selection = select_satisfied_subscribers(
            batch, CapacityConfig(broker_capacity=6)
        )
        # Every matched notification is either delivered or dropped.
        assert len(selection.delivered) + len(selection.dropped) == len(batch)
        assert len(selection.delivered) == 6  # user 1 fully + 3 partial
        assert selection.satisfied_users == frozenset({1})

    def test_exhausted_capacity_starves_later_partials(self):
        batch = demands({1: 3, 2: 4, 3: 5})
        selection = select_satisfied_subscribers(
            batch, CapacityConfig(broker_capacity=6)
        )
        # Partial service drains ascending by demand: user 2 absorbs the
        # leftover, user 3 (largest demand) gets nothing.
        delivered_users = {n.recipient_id for n in selection.delivered}
        assert delivered_users == {1, 2}
        assert sum(1 for n in selection.dropped if n.recipient_id == 3) == 5

    def test_blocked_user_refunds_capacity_to_others(self):
        # User 1's personal capacity is 0: they can never be satisfied,
        # so the broker budget their demand would have consumed serves
        # user 2 instead of being wasted.
        batch = demands({1: 2, 2: 2})
        config = CapacityConfig(
            broker_capacity=2, user_capacity_overrides={1: 0}
        )
        selection = select_satisfied_subscribers(batch, config)
        assert selection.satisfied_users == frozenset({2})
        assert [n.recipient_id for n in selection.delivered] == [2, 2]
        assert sum(1 for n in selection.dropped if n.recipient_id == 1) == 2

    def test_partial_service_capped_by_user_attention(self):
        # Leftover broker capacity cannot overfill one user's capacity.
        batch = demands({1: 5})
        config = CapacityConfig(broker_capacity=10, default_user_capacity=2)
        selection = select_satisfied_subscribers(batch, config)
        assert selection.satisfied_users == frozenset()
        assert len(selection.delivered) == 2
        assert len(selection.dropped) == 3

    def test_exactly_exhausted_boundary(self):
        # Demand == capacity: satisfied with zero leftover, nothing dropped.
        batch = demands({1: 2, 2: 3})
        selection = select_satisfied_subscribers(
            batch, CapacityConfig(broker_capacity=5)
        )
        assert selection.satisfied_users == frozenset({1, 2})
        assert selection.dropped == []

    def test_totals_accumulate_across_rounds_and_drops_never_hit_sinks(self):
        store = SubscriptionStore()
        topic = Topic(TopicKind.ARTIST, 1)
        for user in (1, 2, 3):
            store.subscribe(user, topic)
        inner = Broker(store, default_mode=DeliveryMode.ROUND)
        wrapper = CapacityLimitedBroker(
            inner, CapacityConfig(broker_capacity=2)
        )
        received = []
        wrapper.add_sink(received.append)
        for timestamp in (1.0, 2.0):
            wrapper.publish(
                Publication(topic=topic, publisher_id=99, timestamp=timestamp)
            )
            wrapper.flush_round()
        assert wrapper.total_delivered == 4
        assert wrapper.total_dropped == 2
        assert len(received) == 4
        # Dropped notifications were filtered before the sink layer.
        assert wrapper.total_delivered + wrapper.total_dropped == 6


def _as_delivery(notification: Notification) -> Delivery:
    """Adapt a pubsub notification to the egress sinks' Delivery shape."""
    return Delivery(
        time=notification.timestamp,
        user_id=notification.recipient_id,
        item=ContentItem(
            item_id=notification.notification_id,
            user_id=notification.recipient_id,
            kind=ContentKind.FRIEND_FEED,
            created_at=notification.timestamp,
            ladder=_LADDER,
        ),
        level=1,
        size_bytes=1_000,
        energy_joules=1.0,
        utility=0.5,
    )


_LADDER = build_audio_ladder()


class TestCapacityAcrossOpenBreaker:
    """Capacity-filtered rounds feeding a guarded sink whose breaker
    opens (ISSUE 9 satellite).

    The conservation ledger must stay exact end to end: every matched
    notification is accounted exactly once as capacity-dropped,
    sink-delivered, sink-exhausted, or breaker-refused -- the capacity
    layer and the egress layer never double-count or lose one.
    """

    def _stack(self, sink, *, failure_threshold=2, cooldown_skips=100):
        store = SubscriptionStore()
        topic = Topic(TopicKind.ARTIST, 1)
        for user in (1, 2, 3):
            store.subscribe(user, topic)
        inner = Broker(store, default_mode=DeliveryMode.ROUND)
        wrapper = CapacityLimitedBroker(
            inner, CapacityConfig(broker_capacity=2)
        )
        clock = SimulatedClock()
        guarded = GuardedSink(
            sink,
            clock=clock,
            rng=random.Random(7),
            policy=SinkPolicy(max_attempts=1),
            breaker=CircuitBreakerConfig(
                failure_threshold=failure_threshold,
                cooldown_skips=cooldown_skips,
            ),
        )
        selected: list[Notification] = []
        wrapper.add_sink(selected.append)
        return topic, inner, wrapper, clock, guarded, selected

    def _run_rounds(self, topic, wrapper, clock, guarded, selected, rounds):
        async def scenario():
            for timestamp in range(1, rounds + 1):
                wrapper.publish(
                    Publication(
                        topic=topic,
                        publisher_id=99,
                        timestamp=float(timestamp),
                    )
                )
                selected.clear()
                wrapper.flush_round()
                for notification in selected:
                    await guarded.deliver(_as_delivery(notification))

        asyncio.run(clock.drive(scenario()))

    def test_open_breaker_rounds_keep_ledger_exact(self):
        def down(_delivery):
            raise RuntimeError("egress down")

        topic, inner, wrapper, clock, guarded, selected = self._stack(down)
        self._run_rounds(topic, wrapper, clock, guarded, selected, rounds=4)

        # Two failures trip the breaker; every later selected
        # notification is refused fast without an attempt.
        assert guarded.breaker_state is BreakerState.OPEN
        assert guarded.stats.attempts == 2
        assert guarded.stats.delivered == 0
        assert guarded.stats.exhausted == 2
        assert guarded.stats.breaker_skips == 6

        # Capacity layer: 3 matched per round, 2 selected, 1 dropped.
        matched = inner.stats.notifications
        assert matched == 12
        assert wrapper.total_delivered + wrapper.total_dropped == matched
        assert inner.pending_count == 0

        # The cross-layer ledger closes exactly: capacity drops plus the
        # guarded sink's three outcomes account for every notification.
        assert matched == (
            wrapper.total_dropped
            + guarded.stats.delivered
            + guarded.stats.exhausted
            + guarded.stats.breaker_skips
        )
        # Within the sink, attempts split exactly into outcomes.
        assert guarded.stats.attempts == (
            guarded.stats.delivered + guarded.stats.failures
        )

    def test_breaker_recovery_keeps_ledger_exact(self):
        calls = {"n": 0}

        def flaky(_delivery):
            calls["n"] += 1
            if calls["n"] <= 2:
                raise RuntimeError("warming up")

        topic, inner, wrapper, clock, guarded, selected = self._stack(
            flaky, cooldown_skips=2
        )
        self._run_rounds(topic, wrapper, clock, guarded, selected, rounds=4)

        # Round 1 opens the breaker (2 failures); round 2's deliveries
        # burn the cooldown; round 3's first delivery is the half-open
        # probe, succeeds, and re-closes -- everything after delivers.
        assert guarded.breaker_state is BreakerState.CLOSED
        assert guarded.stats.delivered == 4
        assert guarded.stats.exhausted == 2
        assert guarded.stats.breaker_skips == 2

        matched = inner.stats.notifications
        assert matched == 12
        assert matched == (
            wrapper.total_dropped
            + guarded.stats.delivered
            + guarded.stats.exhausted
            + guarded.stats.breaker_skips
        )

    def test_per_round_selection_ledger_is_exact_while_open(self):
        def down(_delivery):
            raise RuntimeError("egress down")

        topic, inner, wrapper, clock, guarded, selected = self._stack(down)

        async def scenario():
            ledgers = []
            for timestamp in (1.0, 2.0, 3.0):
                wrapper.publish(
                    Publication(
                        topic=topic, publisher_id=99, timestamp=timestamp
                    )
                )
                pending = inner.pending_count
                selected.clear()
                selection = wrapper.flush_round()
                ledgers.append(
                    (
                        pending,
                        len(selection.delivered),
                        len(selection.dropped),
                    )
                )
                for notification in selected:
                    await guarded.deliver(_as_delivery(notification))
            return ledgers

        ledgers = asyncio.run(clock.drive(scenario()))
        for pending, delivered, dropped in ledgers:
            assert pending == delivered + dropped
        assert guarded.breaker_state is BreakerState.OPEN
