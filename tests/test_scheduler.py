"""Tests for the round-based schedulers (Algorithm 2)."""

import pytest

from repro.core.budgets import DataBudget, EnergyBudget
from repro.core.content import ContentItem, ContentKind
from repro.core.lyapunov import LyapunovConfig
from repro.core.presentations import build_audio_ladder
from repro.core.scheduler import RichNoteScheduler
from repro.sim.battery import BatterySample, BatteryTrace
from repro.sim.device import MobileDevice
from repro.sim.network import CellularOnlyNetwork

LADDER = build_audio_ladder()
ROUND = 3600.0


def make_device(user_id=1):
    battery = BatteryTrace(
        [BatterySample(time=0.0, level=1.0, charging=True)]
    )
    return MobileDevice(user_id=user_id, network=CellularOnlyNetwork(), battery=battery)


def make_item(item_id, utility=0.5, user_id=1, created_at=0.0, clicked=False):
    return ContentItem(
        item_id=item_id,
        user_id=user_id,
        kind=ContentKind.FRIEND_FEED,
        created_at=created_at,
        ladder=LADDER,
        content_utility=utility,
        clicked=clicked,
    )


def make_richnote(user_id=1, theta=1_000_000.0, kappa=3000.0, v=1000.0):
    return RichNoteScheduler(
        device=make_device(user_id),
        data_budget=DataBudget(theta_bytes=theta),
        energy_budget=EnergyBudget(kappa_joules=kappa),
        lyapunov=LyapunovConfig(v=v, kappa_joules=kappa),
    )


class TestQueueMechanics:
    def test_enqueue_routes_by_user(self):
        scheduler = make_richnote(user_id=1)
        with pytest.raises(ValueError):
            scheduler.enqueue(make_item(1, user_id=2))

    def test_incoming_moves_to_scheduling_on_round(self):
        scheduler = make_richnote(theta=0.0)  # no budget: nothing delivered
        scheduler.enqueue(make_item(1))
        assert scheduler.pending_items == 1
        result = scheduler.run_round(ROUND, ROUND)
        assert result.deliveries == []
        assert result.queue_length_after == 1

    def test_backlog_counts_all_presentations(self):
        scheduler = make_richnote(theta=0.0)
        scheduler.enqueue(make_item(1))
        scheduler.run_round(ROUND, ROUND)
        assert scheduler.backlog_bytes() == LADDER.total_size()

    def test_delivered_items_leave_queue(self):
        scheduler = make_richnote(theta=10_000_000.0)
        scheduler.enqueue(make_item(1))
        result = scheduler.run_round(ROUND, ROUND)
        assert len(result.deliveries) == 1
        assert result.queue_length_after == 0
        assert scheduler.backlog_bytes() == 0.0


class TestRichNoteSelection:
    def test_ample_budget_delivers_richest_level(self):
        scheduler = make_richnote(theta=10_000_000.0)
        scheduler.enqueue(make_item(1, utility=0.9))
        result = scheduler.run_round(ROUND, ROUND)
        assert result.deliveries[0].level == LADDER.max_level

    def test_tight_budget_degrades_to_metadata(self):
        # Budget affords metadata but not any preview.
        scheduler = make_richnote(theta=1000.0)
        scheduler.enqueue(make_item(1, utility=0.9))
        result = scheduler.run_round(ROUND, ROUND)
        assert len(result.deliveries) == 1
        assert result.deliveries[0].level == 1

    def test_adapts_levels_across_items(self):
        # Budget for all three at metadata plus one 5 s upgrade.
        scheduler = make_richnote(theta=101_000.0)
        scheduler.enqueue(make_item(1, utility=0.9))
        scheduler.enqueue(make_item(2, utility=0.2))
        scheduler.enqueue(make_item(3, utility=0.1))
        result = scheduler.run_round(ROUND, ROUND)
        levels = {d.item.item_id: d.level for d in result.deliveries}
        assert len(levels) == 3
        # The highest-utility item gets the preview.
        assert levels[1] == 2
        assert levels[2] == 1
        assert levels[3] == 1

    def test_budget_rolls_over_when_disconnected(self):
        class OffNetwork(CellularOnlyNetwork):
            @property
            def connected(self):
                return False

            @property
            def bandwidth(self):
                return 0.0

        battery = BatteryTrace([BatterySample(0.0, 1.0, True)])
        device = MobileDevice(user_id=1, network=OffNetwork(), battery=battery)
        scheduler = RichNoteScheduler(
            device=device,
            data_budget=DataBudget(theta_bytes=1000.0),
            energy_budget=EnergyBudget(kappa_joules=3000.0),
        )
        scheduler.enqueue(make_item(1))
        result = scheduler.run_round(ROUND, ROUND)
        assert not result.connected
        assert result.deliveries == []
        assert result.data_budget_after == 1000.0
        result = scheduler.run_round(2 * ROUND, ROUND)
        assert result.data_budget_after == 2000.0

    def test_data_budget_debited_on_delivery(self):
        scheduler = make_richnote(theta=1000.0)
        scheduler.enqueue(make_item(1))
        result = scheduler.run_round(ROUND, ROUND)
        spent = sum(d.size_bytes for d in result.deliveries)
        assert result.data_budget_after == pytest.approx(1000.0 - spent)

    def test_energy_budget_debited_on_delivery(self):
        scheduler = make_richnote(theta=10_000_000.0)
        scheduler.enqueue(make_item(1))
        result = scheduler.run_round(ROUND, ROUND)
        assert result.deliveries[0].energy_joules > 0
        assert result.energy_budget_after < 3000.0 + 3000.0  # kappa + e(t)

    def test_kappa_mismatch_rejected(self):
        with pytest.raises(ValueError, match="kappa"):
            RichNoteScheduler(
                device=make_device(),
                data_budget=DataBudget(theta_bytes=0.0),
                energy_budget=EnergyBudget(kappa_joules=3000.0),
                lyapunov=LyapunovConfig(kappa_joules=999.0),
            )

    def test_delivery_queue_ordered_by_utility(self):
        scheduler = make_richnote(theta=10_000_000.0)
        scheduler.enqueue(make_item(1, utility=0.2))
        scheduler.enqueue(make_item(2, utility=0.9))
        result = scheduler.run_round(ROUND, ROUND)
        utilities = [d.utility for d in result.deliveries]
        assert utilities == sorted(utilities, reverse=True)

    def test_round_index_increments(self):
        scheduler = make_richnote()
        first = scheduler.run_round(ROUND, ROUND)
        second = scheduler.run_round(2 * ROUND, ROUND)
        assert (first.round_index, second.round_index) == (1, 2)


class TestQueueStability:
    def test_bounded_queue_under_sustained_arrivals(self):
        """Arrivals each round; metadata-affordable budget keeps Q bounded."""
        scheduler = make_richnote(theta=50_000.0)
        queue_lengths = []
        for round_index in range(1, 60):
            now = round_index * ROUND
            for offset in range(5):
                scheduler.enqueue(
                    make_item(round_index * 100 + offset, created_at=now - 1)
                )
            result = scheduler.run_round(now, ROUND)
            queue_lengths.append(result.queue_length_after)
        # 5 items/round at 200 B metadata each is far below 50 kB/round.
        assert max(queue_lengths[10:]) <= max(queue_lengths[:10]) + 5
        assert queue_lengths[-1] < 20
