"""Smoke tests: every example script must run end to end.

Examples are a deliverable; these tests execute each one in a subprocess
(with scaled-down arguments where supported) and check for the expected
headline output.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str, timeout: float = 240.0) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "RichNote" in out
        assert "FIFO-L3" in out
        assert "5-fold CV" in out

    def test_spotify_week_scaled_down(self):
        out = run_example(
            "spotify_week.py", "--budgets", "2,20", "--users", "4"
        )
        assert "Fig 3(a)" in out
        assert "Fig 5(b)" in out
        assert "RichNote" in out

    def test_presentation_survey(self):
        out = run_example("presentation_survey.py")
        assert "useful after skyline pruning" in out
        assert "logarithmic" in out
        assert "metadata+40s@160kbps" in out

    def test_pubsub_broker(self):
        out = run_example("pubsub_broker.py")
        assert "realtime friend feeds" in out
        assert "round 1:" in out

    def test_multimedia_feeds(self):
        out = run_example("multimedia_feeds.py")
        assert "video 15s@480p" in out
        assert "album_release" in out

    def test_live_system(self):
        out = run_example("live_system.py")
        assert "unlimited" in out
        assert "20/round" in out
