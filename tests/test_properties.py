"""Cross-module property-based tests: scheduler-level invariants.

These drive whole schedulers through randomized arrival/round sequences and
assert the conservation and budget laws that must hold regardless of
policy, workload or connectivity:

* items are conserved: enqueued = delivered + still queued;
* no item is delivered twice;
* the data budget never goes negative and deliveries never exceed the
  cumulative allowance;
* deliveries only happen while connected;
* delivered presentation levels are valid rungs of the item's ladder.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.baselines import FifoScheduler, UtilScheduler
from repro.core.budgets import DataBudget, EnergyBudget
from repro.core.content import ContentItem, ContentKind
from repro.core.presentations import build_audio_ladder
from repro.core.scheduler import RichNoteScheduler
from repro.sim.battery import BatterySample, BatteryTrace
from repro.sim.device import MobileDevice
from repro.sim.network import SporadicCellularNetwork

LADDER = build_audio_ladder()
ROUND = 3600.0


def build_scheduler(policy: str, theta: float, network_seed: int):
    network = SporadicCellularNetwork(
        p_stay_connected=0.7, p_stay_off=0.4, rng=random.Random(network_seed)
    )
    device = MobileDevice(
        user_id=1,
        network=network,
        battery=BatteryTrace([BatterySample(0.0, 0.8, charging=False)]),
    )
    data = DataBudget(theta_bytes=theta)
    energy = EnergyBudget(kappa_joules=3000.0)
    if policy == "richnote":
        return RichNoteScheduler(device, data, energy)
    if policy == "fifo":
        return FifoScheduler(device, data, energy, fixed_level=3)
    return UtilScheduler(device, data, energy, fixed_level=2)


@st.composite
def schedules(draw):
    """A random policy, budget and per-round arrival counts."""
    policy = draw(st.sampled_from(["richnote", "fifo", "util"]))
    theta = draw(st.sampled_from([0.0, 500.0, 50_000.0, 2_000_000.0]))
    arrivals = draw(
        st.lists(st.integers(min_value=0, max_value=6), min_size=1, max_size=25)
    )
    seed = draw(st.integers(min_value=0, max_value=10_000))
    return policy, theta, arrivals, seed


class TestSchedulerInvariants:
    @given(schedules())
    @settings(max_examples=60, deadline=None)
    def test_conservation_budget_and_validity(self, schedule):
        policy, theta, arrivals, seed = schedule
        scheduler = build_scheduler(policy, theta, seed)
        utility_rng = random.Random(seed + 1)

        enqueued = 0
        delivered_ids: list[int] = []
        delivered_bytes = 0.0
        rounds = 0
        for round_index, count in enumerate(arrivals, start=1):
            now = round_index * ROUND
            for offset in range(count):
                item_id = round_index * 1000 + offset
                scheduler.enqueue(
                    ContentItem(
                        item_id=item_id,
                        user_id=1,
                        kind=ContentKind.FRIEND_FEED,
                        created_at=now - utility_rng.uniform(0.0, ROUND),
                        ladder=LADDER,
                        content_utility=utility_rng.random(),
                    )
                )
                enqueued += 1
            result = scheduler.run_round(now, ROUND)
            rounds += 1

            # Deliveries only when connected.
            if not result.connected:
                assert result.deliveries == []
            for delivery in result.deliveries:
                delivered_ids.append(delivery.item.item_id)
                delivered_bytes += delivery.size_bytes
                assert 1 <= delivery.level <= LADDER.max_level
                assert delivery.size_bytes == LADDER.size(delivery.level)
                assert delivery.utility >= 0.0

            # Budget law: never negative; total spend within allowance.
            assert result.data_budget_after >= 0.0
            assert result.energy_budget_after >= 0.0
            assert delivered_bytes <= theta * rounds + 1e-6

        # Conservation: every enqueued item is delivered or still pending.
        assert len(delivered_ids) == len(set(delivered_ids))
        assert len(delivered_ids) + scheduler.pending_items == enqueued

    @given(schedules())
    @settings(max_examples=30, deadline=None)
    def test_backlog_matches_queue_contents(self, schedule):
        policy, theta, arrivals, seed = schedule
        scheduler = build_scheduler(policy, theta, seed)
        for round_index, count in enumerate(arrivals, start=1):
            now = round_index * ROUND
            for offset in range(count):
                scheduler.enqueue(
                    ContentItem(
                        item_id=round_index * 1000 + offset,
                        user_id=1,
                        kind=ContentKind.FRIEND_FEED,
                        created_at=now - 1.0,
                        ladder=LADDER,
                        content_utility=0.5,
                    )
                )
            result = scheduler.run_round(now, ROUND)
            expected = result.queue_length_after * LADDER.total_size()
            assert result.backlog_bytes_after == expected
