"""Tests for the CART decision tree."""

import numpy as np
import pytest

from repro.ml.tree import DecisionTreeClassifier


def separable_data(n=200, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.uniform(0, 1, size=(n, 3))
    y = (x[:, 0] > 0.5).astype(int)
    return x, y


class TestFitValidation:
    def test_rejects_1d_x(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit([1, 2, 3], [0, 1, 0])

    def test_rejects_misaligned_y(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit([[1], [2]], [0])

    def test_rejects_non_binary_labels(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit([[1], [2]], [0, 2])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(np.empty((0, 2)), np.empty(0, dtype=int))

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            DecisionTreeClassifier().predict([[1.0]])

    def test_predict_wrong_width_raises(self):
        tree = DecisionTreeClassifier().fit([[1.0], [2.0]], [0, 1])
        with pytest.raises(ValueError):
            tree.predict([[1.0, 2.0]])

    def test_hyperparameter_validation(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier(max_depth=-1)
        with pytest.raises(ValueError):
            DecisionTreeClassifier(min_samples_split=1)
        with pytest.raises(ValueError):
            DecisionTreeClassifier(min_samples_leaf=0)


class TestLearning:
    def test_fits_separable_data_perfectly(self):
        x, y = separable_data()
        tree = DecisionTreeClassifier().fit(x, y)
        assert (tree.predict(x) == y).all()

    def test_pure_node_is_leaf(self):
        tree = DecisionTreeClassifier().fit([[1.0], [2.0], [3.0]], [1, 1, 1])
        assert tree.depth() == 0
        assert tree.predict_proba([[9.0]])[0, 1] == 1.0

    def test_max_depth_zero_predicts_prior(self):
        x, y = separable_data()
        tree = DecisionTreeClassifier(max_depth=0).fit(x, y)
        assert tree.depth() == 0
        assert tree.predict_proba(x[:1])[0, 1] == pytest.approx(y.mean())

    def test_max_depth_respected(self):
        x, y = separable_data(n=400)
        for depth in (1, 2, 3):
            tree = DecisionTreeClassifier(max_depth=depth).fit(x, y)
            assert tree.depth() <= depth

    def test_min_samples_leaf_respected(self):
        x, y = separable_data(n=100)
        tree = DecisionTreeClassifier(min_samples_leaf=20).fit(x, y)

        def leaf_sizes(node):
            if node.is_leaf:
                return [node.samples]
            return leaf_sizes(node.left) + leaf_sizes(node.right)

        assert min(leaf_sizes(tree._check_fitted())) >= 20

    def test_probabilities_sum_to_one(self):
        x, y = separable_data()
        proba = DecisionTreeClassifier(max_depth=3).fit(x, y).predict_proba(x)
        assert np.allclose(proba.sum(axis=1), 1.0)
        assert (proba >= 0).all()

    def test_constant_features_yield_stump(self):
        x = np.ones((50, 2))
        y = np.array([0, 1] * 25)
        tree = DecisionTreeClassifier().fit(x, y)
        assert tree.depth() == 0
        assert tree.predict_proba(x[:1])[0, 1] == pytest.approx(0.5)

    def test_deterministic_given_seed_with_feature_subsample(self):
        x, y = separable_data(n=300, seed=3)
        p1 = (
            DecisionTreeClassifier(max_features=2, random_state=7)
            .fit(x, y)
            .predict_proba(x)
        )
        p2 = (
            DecisionTreeClassifier(max_features=2, random_state=7)
            .fit(x, y)
            .predict_proba(x)
        )
        assert np.array_equal(p1, p2)

    def test_max_features_out_of_range(self):
        x, y = separable_data()
        with pytest.raises(ValueError):
            DecisionTreeClassifier(max_features=10).fit(x, y)

    def test_xor_needs_depth_two(self):
        """Depth-1 stump cannot learn XOR; depth-2 tree can."""
        rng = np.random.default_rng(0)
        x = rng.uniform(-1, 1, size=(400, 2))
        y = ((x[:, 0] > 0) ^ (x[:, 1] > 0)).astype(int)
        stump = DecisionTreeClassifier(max_depth=1).fit(x, y)
        deep = DecisionTreeClassifier(max_depth=2).fit(x, y)
        assert (stump.predict(x) == y).mean() < 0.75
        assert (deep.predict(x) == y).mean() > 0.95

    def test_node_count_consistent_with_depth(self):
        x, y = separable_data()
        tree = DecisionTreeClassifier(max_depth=1).fit(x, y)
        assert tree.node_count() == 3  # root + two leaves
