"""Tests for the aging-policy family."""

import pytest

from repro.core.content import ContentItem, ContentKind
from repro.core.presentations import build_audio_ladder
from repro.core.utility import (
    CombinedUtilityModel,
    ExponentialAging,
    LinearAging,
    StepDeadlineAging,
)


def make_item(created_at=0.0):
    return ContentItem(
        item_id=1,
        user_id=1,
        kind=ContentKind.FRIEND_FEED,
        created_at=created_at,
        ladder=build_audio_ladder(),
        content_utility=0.8,
    )


class TestLinearAging:
    def test_decays_to_zero_at_lifetime(self):
        aging = LinearAging(lifetime_seconds=100.0)
        assert aging.decay(1.0, 0.0) == 1.0
        assert aging.decay(1.0, 50.0) == pytest.approx(0.5)
        assert aging.decay(1.0, 100.0) == 0.0
        assert aging.decay(1.0, 500.0) == 0.0  # clamped, never negative

    def test_validation(self):
        with pytest.raises(ValueError):
            LinearAging(lifetime_seconds=0)
        with pytest.raises(ValueError):
            LinearAging(100.0).decay(1.0, -1.0)


class TestStepDeadlineAging:
    def test_full_value_inside_deadline(self):
        aging = StepDeadlineAging(deadline_seconds=100.0, residual_fraction=0.2)
        assert aging.decay(0.5, 99.0) == 0.5
        assert aging.decay(0.5, 100.0) == 0.5  # inclusive boundary

    def test_residual_after_deadline(self):
        aging = StepDeadlineAging(deadline_seconds=100.0, residual_fraction=0.2)
        assert aging.decay(0.5, 101.0) == pytest.approx(0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            StepDeadlineAging(deadline_seconds=0)
        with pytest.raises(ValueError):
            StepDeadlineAging(residual_fraction=1.5)
        with pytest.raises(ValueError):
            StepDeadlineAging().decay(1.0, -1.0)


class TestPolicyInterchangeability:
    @pytest.mark.parametrize(
        "policy",
        [
            ExponentialAging(tau_seconds=3600.0),
            LinearAging(lifetime_seconds=7200.0),
            StepDeadlineAging(deadline_seconds=1800.0),
        ],
    )
    def test_all_policies_plug_into_combined_model(self, policy):
        model = CombinedUtilityModel(aging=policy)
        item = make_item(created_at=0.0)
        fresh = model.utility(item, 6, now=0.0)
        stale = model.utility(item, 6, now=4 * 3600.0)
        assert fresh == pytest.approx(0.8)
        assert 0.0 <= stale <= fresh

    @pytest.mark.parametrize(
        "policy",
        [
            ExponentialAging(tau_seconds=3600.0),
            LinearAging(lifetime_seconds=7200.0),
            StepDeadlineAging(deadline_seconds=1800.0, residual_fraction=0.1),
        ],
    )
    def test_decay_monotone_in_age(self, policy):
        ages = [0.0, 600.0, 3600.0, 7200.0, 36000.0]
        values = [policy.decay(1.0, age) for age in ages]
        assert all(a >= b for a, b in zip(values, values[1:]))
        assert all(0.0 <= v <= 1.0 for v in values)
